"""Scalar metrics reported by the paper's evaluation section.

* coverage ratio ``r_C = |E(SPG_k)| / |E|`` (Figure 12(a)),
* redundant ratio ``r_D = (|E(SPGu_k)| - |E(SPG_k)|) / |E(SPG_k)|``
  (Table 3),
* speedups of an algorithm given an alternative search space (Tables 4/5),
* simple aggregation helpers (averages, max/median/min space).
"""

from __future__ import annotations

from statistics import median
from typing import Dict, Iterable, List, Sequence

__all__ = ["average", "coverage_ratio", "redundant_ratio", "speedup", "aggregate_space"]


def average(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    collected = list(values)
    if not collected:
        return 0.0
    return sum(collected) / len(collected)


def coverage_ratio(num_spg_edges: int, num_graph_edges: int) -> float:
    """``r_C = |E(SPG_k)| / |E|`` (0.0 for an empty graph)."""
    if num_graph_edges <= 0:
        return 0.0
    return num_spg_edges / num_graph_edges


def redundant_ratio(num_upper_bound_edges: int, num_spg_edges: int) -> float:
    """``r_D = (|E(SPGu_k)| - |E(SPG_k)|) / |E(SPG_k)|`` (0.0 when empty)."""
    if num_spg_edges <= 0:
        return 0.0
    return (num_upper_bound_edges - num_spg_edges) / num_spg_edges


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """Return ``baseline / accelerated`` (``inf`` when the latter is 0)."""
    if accelerated_seconds <= 0:
        return float("inf")
    return baseline_seconds / accelerated_seconds


def aggregate_space(peaks: Sequence[int]) -> Dict[str, float]:
    """Return max / median / min of per-query space peaks (Figure 9)."""
    if not peaks:
        return {"max": 0.0, "median": 0.0, "min": 0.0}
    values: List[int] = sorted(peaks)
    return {
        "max": float(values[-1]),
        "median": float(median(values)),
        "min": float(values[0]),
    }
