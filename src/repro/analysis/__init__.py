"""Metrics and validation helpers used by tests and the experiment harness."""

from repro.analysis.metrics import (
    aggregate_space,
    average,
    coverage_ratio,
    redundant_ratio,
    speedup,
)
from repro.analysis.validate import (
    brute_force_spg,
    check_path,
    is_simple_path,
    spg_equal,
)

__all__ = [
    "average",
    "coverage_ratio",
    "redundant_ratio",
    "speedup",
    "aggregate_space",
    "brute_force_spg",
    "check_path",
    "is_simple_path",
    "spg_equal",
]
