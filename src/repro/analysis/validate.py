"""Reference implementations and validity checks used by the test suite.

``brute_force_spg`` computes ``SPG_k(s, t)`` straight from Definition 2.1 by
enumerating every simple path with a plain DFS and unioning edges.  It is
deliberately simple (and slow) so it can serve as ground truth in unit and
property-based tests of EVE and of every enumeration baseline.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro._types import Edge, Vertex
from repro.graph.digraph import DiGraph

__all__ = ["is_simple_path", "check_path", "brute_force_spg", "brute_force_paths", "spg_equal"]


def is_simple_path(path: Sequence[Vertex]) -> bool:
    """True when the vertex sequence has no repeated vertices."""
    return len(set(path)) == len(path)


def check_path(
    graph: DiGraph, path: Sequence[Vertex], source: Vertex, target: Vertex, k: int
) -> bool:
    """True when ``path`` is a valid k-hop-constrained s-t simple path in ``graph``."""
    if len(path) < 2:
        return False
    if path[0] != source or path[-1] != target:
        return False
    if len(path) - 1 > k:
        return False
    if not is_simple_path(path):
        return False
    for u, v in zip(path, path[1:]):
        if not graph.has_edge(u, v):
            return False
    return True


def brute_force_paths(
    graph: DiGraph, source: Vertex, target: Vertex, k: int
) -> List[Tuple[Vertex, ...]]:
    """Enumerate all k-hop-constrained s-t simple paths by plain DFS."""
    paths: List[Tuple[Vertex, ...]] = []
    stack: List[Vertex] = [source]
    on_stack: Set[Vertex] = {source}

    def explore(vertex: Vertex) -> None:
        if vertex == target:
            paths.append(tuple(stack))
            return
        if len(stack) - 1 >= k:
            return
        for neighbor in graph.out_neighbors(vertex):
            if neighbor in on_stack:
                continue
            stack.append(neighbor)
            on_stack.add(neighbor)
            explore(neighbor)
            stack.pop()
            on_stack.discard(neighbor)

    if source != target:
        explore(source)
    return paths


def brute_force_spg(graph: DiGraph, source: Vertex, target: Vertex, k: int) -> Set[Edge]:
    """Ground-truth ``SPG_k(s, t)`` edge set straight from Definition 2.1."""
    edges: Set[Edge] = set()
    for path in brute_force_paths(graph, source, target, k):
        for u, v in zip(path, path[1:]):
            edges.add((u, v))
    return edges


def spg_equal(edges_a: Set[Edge], edges_b: Set[Edge]) -> bool:
    """True when two SPG edge sets are identical."""
    return set(edges_a) == set(edges_b)
