"""Persisted performance trajectory: schema-versioned ``BENCH_<pr>.json``.

ROADMAP's standing complaint is that every PR's performance claims lived in
transient benchmark output — nothing comparable was ever persisted, so the
repo has no answer to "did PR N+1 regress what PR N measured?".  This
module fixes the persistence half: one small, schema-versioned JSON
snapshot per PR, committed at the repo root as ``BENCH_<pr>.json`` and
validated by CI, holding

* **kernel** entries — best-of-``repeats`` wall time of the hot kernels
  the benchmark suite tracks (the CSR distance-index build, the halo-free
  whole-graph backward BFS, and the flat explicit-stack verification
  search);
* **phase** entries — per-EVE-phase latency aggregates (p50 and cumulative
  seconds per :data:`repro.core.result.PHASE_NAMES` entry) from a served
  workload, read straight out of :class:`repro.service.stats.EngineStats`;
* **serving** entries — end-to-end throughput and latency quantiles of the
  same workload.

``python -m repro.bench snapshot --pr N`` collects and writes one;
``python -m repro.bench check --pr N`` validates the committed file (CI
fails when the snapshot is missing or schema-invalid).  Snapshots are
measurements of *this machine at this commit* — the trajectory is for
eyeballing trends and catching absent/broken snapshots, not a
pass/fail latency gate (CI runners are too noisy for that).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "ENTRY_KINDS",
    "snapshot_filename",
    "collect_snapshot",
    "validate_snapshot",
    "write_snapshot",
    "load_snapshot",
]

SCHEMA_VERSION = 1

#: Every entry names which layer it measures.
ENTRY_KINDS = ("kernel", "phase", "serving")

_REQUIRED_ENTRY_FIELDS = ("name", "kind", "value", "unit")


def snapshot_filename(pr: int) -> str:
    """The canonical repo-root filename for PR ``pr``'s snapshot."""
    return f"BENCH_{int(pr)}.json"


def _entry(name: str, kind: str, value: float, unit: str) -> Dict[str, object]:
    return {"name": name, "kind": kind, "value": float(value), "unit": unit}


def collect_snapshot(
    pr: int,
    *,
    scale: str = "tiny",
    num_vertices: Optional[int] = None,
    num_queries: Optional[int] = None,
    seed: int = 20230901,
    repeats: int = 3,
) -> Dict[str, object]:
    """Measure one performance snapshot on this machine.

    ``scale`` picks the workload size (``tiny`` for CI, ``small`` for a
    workstation); ``num_vertices`` / ``num_queries`` override it.  The
    graph, queries and kernels are seeded, so two runs on one machine
    measure the same work.
    """
    import random

    from repro.core.distances import backward_distance_map, compute_distance_index
    from repro.core.eve import QueryScratch
    from repro.graph.generators import erdos_renyi
    from repro.service.engine import SPGEngine

    sizes = {"tiny": (1_500, 120), "small": (12_000, 400)}
    if scale not in sizes:
        raise ValueError(f"unknown snapshot scale {scale!r}; expected one of {sorted(sizes)}")
    default_vertices, default_queries = sizes[scale]
    n = num_vertices or default_vertices
    q = num_queries or default_queries

    graph = erdos_renyi(n, 4.0, seed=seed)
    rng = random.Random(seed)
    queries = []
    while len(queries) < q:
        source, target = rng.randrange(n), rng.randrange(n)
        if source != target:
            queries.append((source, target, rng.choice((4, 6, 8))))

    entries: List[Dict[str, object]] = []

    # Kernel micro-measurements: best-of-``repeats`` total wall time over
    # the workload, mirroring benchmarks/bench_fig10b_distance.py.
    scratch = QueryScratch()
    kernel_queries = queries[: max(1, min(len(queries), 50))]
    best_distance = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for source, target, k in kernel_queries:
            compute_distance_index(
                graph, source, target, k, strategy="adaptive", scratch=scratch
            )
        best_distance = min(best_distance, time.perf_counter() - started)
    entries.append(
        _entry(
            "kernel.distance_index.best_ms_per_query",
            "kernel",
            best_distance * 1000.0 / len(kernel_queries),
            "ms",
        )
    )
    backward_targets = sorted({(target, k) for _, target, k in kernel_queries})[:20]
    best_backward = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for target, k in backward_targets:
            backward_distance_map(graph, target, k)
        best_backward = min(best_backward, time.perf_counter() - started)
    entries.append(
        _entry(
            "kernel.backward_bfs.best_ms_per_pass",
            "kernel",
            best_backward * 1000.0 / len(backward_targets),
            "ms",
        )
    )

    # Verification kernel: prepare + Section 5.3 ordering + explicit-stack
    # search per upper-bound graph, mirroring
    # benchmarks/bench_fig13b_verification.py (the k >= 6 ordering gate is
    # the production policy in repro.core.eve).
    from repro.core.essential import propagate_backward, propagate_forward
    from repro.core.labeling import compute_upper_bound
    from repro.core.verification import prepare_verification

    verification_uppers = []
    for source, target, k in kernel_queries:
        if k < 5:
            continue
        index = compute_distance_index(
            graph, source, target, k, strategy="adaptive", scratch=scratch
        )
        forward = propagate_forward(
            graph, source, target, k, distances=index, scratch=scratch.essential
        )
        backward = propagate_backward(
            graph, source, target, k, distances=index, scratch=scratch.essential
        )
        upper = compute_upper_bound(
            graph, source, target, k, index, forward, backward
        )
        if upper.undetermined_edges:
            verification_uppers.append(upper)
        if len(verification_uppers) >= 20:
            break
    if verification_uppers:
        best_verification = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for upper in verification_uppers:
                prepared = prepare_verification(
                    upper, scratch=scratch.verification
                )
                if upper.k >= 6:
                    prepared.apply_search_ordering()
                prepared.verify()
            best_verification = min(
                best_verification, time.perf_counter() - started
            )
        entries.append(
            _entry(
                "kernel.verification.best_ms_per_query",
                "kernel",
                best_verification * 1000.0 / len(verification_uppers),
                "ms",
            )
        )

    # Served workload: phase and serving aggregates from EngineStats.
    with SPGEngine(graph, cache_size=0, executor_backend="serial") as engine:
        batch_started = time.perf_counter()
        report = engine.run_batch(queries)
        batch_seconds = time.perf_counter() - batch_started
        snapshot = engine.stats.snapshot()

    for phase, aggregates in sorted(snapshot["phases"].items()):
        entries.append(
            _entry(f"phase.{phase}.p50_ms", "phase", aggregates["p50_ms"], "ms")
        )
        entries.append(
            _entry(
                f"phase.{phase}.total_seconds",
                "phase",
                aggregates["total_seconds"],
                "s",
            )
        )
    entries.append(
        _entry("serving.throughput_qps", "serving", len(report) / batch_seconds, "qps")
    )
    entries.append(_entry("serving.p50_ms", "serving", snapshot["p50_ms"], "ms"))
    entries.append(_entry("serving.p95_ms", "serving", snapshot["p95_ms"], "ms"))

    # HTTP serving: the same workload through the asyncio front end
    # (admission + coalescer + hand-rolled HTTP/1.1 on loopback), so the
    # trajectory tracks end-to-end serving overhead, not just engine time.
    entries.extend(_measure_http_serving(graph, queries[: min(len(queries), 100)]))

    # Dynamic graphs: overlay apply cost, its advantage over a full CSR
    # rebuild, and the scoped cache-invalidation retention on the same
    # served workload.
    entries.extend(
        _measure_dynamic_serving(graph, queries, seed=seed, repeats=repeats)
    )

    data = {
        "schema_version": SCHEMA_VERSION,
        "pr": int(pr),
        "scale": scale,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": {
            "num_vertices": n,
            "num_queries": len(queries),
            "seed": seed,
            "repeats": repeats,
        },
        "entries": entries,
    }
    validate_snapshot(data)
    return data


def _measure_http_serving(graph, queries) -> List[Dict[str, object]]:
    """Measure the HTTP front end on loopback: one burst of single queries.

    Boots an ephemeral-port :class:`~repro.service.http.server.HTTPFrontend`
    over a serial engine, fires every query concurrently through
    ``POST /query`` (own connection each, like independent clients), and
    reports end-to-end throughput, p99 latency and shed rate.  The queue
    bound is sized to the burst so the healthy-path numbers are not
    polluted by shedding — overload behaviour is the load generator's job
    (``benchmarks/loadgen.py``), not the trajectory's.
    """
    import asyncio
    import json as json_module

    from repro.service.engine import SPGEngine
    from repro.service.http import HTTPConfig, HTTPFrontend
    from repro.service.http.client import request

    async def measure() -> Dict[str, float]:
        engine = SPGEngine(graph, cache_size=0, executor_backend="serial")
        frontend = HTTPFrontend(
            engine, config=HTTPConfig(port=0, max_queue_depth=max(len(queries), 1))
        )
        address = await frontend.start()
        latencies: List[float] = []
        shed = 0

        async def one(query) -> None:
            nonlocal shed
            body = json_module.dumps(
                {"source": query[0], "target": query[1], "k": query[2]}
            ).encode("utf-8")
            fired = time.perf_counter()
            response = await request(address, None, "POST", "/query", body=body)
            if response.status == 429:
                shed += 1
            else:
                latencies.append((time.perf_counter() - fired) * 1000.0)

        try:
            started = time.perf_counter()
            await asyncio.gather(*(one(query) for query in queries))
            wall = time.perf_counter() - started
        finally:
            await frontend.shutdown(10.0)
            engine.close()
        latencies.sort()
        p99 = (
            latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
            if latencies
            else 0.0
        )
        return {
            "throughput_qps": len(latencies) / wall if wall > 0 else 0.0,
            "p99_ms": p99,
            "shed_rate": shed / len(queries) if queries else 0.0,
        }

    measured = asyncio.run(measure())
    return [
        _entry("serving.http.throughput_qps", "serving", measured["throughput_qps"], "qps"),
        _entry("serving.http.p99_ms", "serving", measured["p99_ms"], "ms"),
        _entry("serving.http.shed_rate", "serving", measured["shed_rate"], "ratio"),
    ]


def _measure_dynamic_serving(graph, queries, *, seed: int, repeats: int) -> List[Dict[str, object]]:
    """Measure the dynamic-graph path: delta apply, rebuild speedup, retention.

    Warms an engine cache with the snapshot workload, applies one small
    seeded :class:`~repro.graph.delta.GraphDelta` through
    :meth:`SPGEngine.apply_delta` (epoch swap + spliced CSR + scoped
    invalidation), and reports the apply latency, how much faster the raw
    overlay apply is than rebuilding the :class:`DiGraph` from its mutated
    edge list, and the fraction of cache entries the k-ball scoped
    invalidation kept alive across the swap.
    """
    import random

    from repro.graph.delta import GraphDelta, apply_delta
    from repro.graph.digraph import DiGraph
    from repro.service.engine import SPGEngine

    rng = random.Random(seed + 7)
    n = graph.num_vertices
    inserts = []
    while len(inserts) < 8:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            inserts.append((u, v))
    deletes = rng.sample(sorted(graph.edge_set()), 8)
    deletes = [edge for edge in deletes if edge not in set(inserts)]
    delta = GraphDelta(inserts=inserts, deletes=deletes)

    # Raw overlay apply vs full rebuild (best of ``repeats``), CSR included.
    best_overlay = best_rebuild = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        view = apply_delta(graph, delta)
        view.csr()
        view.csr_reverse()
        best_overlay = min(best_overlay, time.perf_counter() - started)
        started = time.perf_counter()
        edges = graph.edge_set()
        edges.difference_update(delta.deletes)
        edges.update(delta.inserts)
        rebuilt = DiGraph(n, sorted(edges))
        rebuilt.csr()
        rebuilt.csr_reverse()
        best_rebuild = min(best_rebuild, time.perf_counter() - started)

    # Engine-level swap under a warm cache: apply latency + retention.
    with SPGEngine(graph, executor_backend="serial") as engine:
        engine.run_batch(queries)
        started = time.perf_counter()
        report = engine.apply_delta(delta)
        apply_seconds = time.perf_counter() - started
    total = report.cache_invalidated + report.cache_retained
    retention = report.cache_retained / total if total else 0.0

    return [
        _entry("serving.dynamic.apply_ms", "serving", apply_seconds * 1000.0, "ms"),
        _entry(
            "serving.dynamic.overlay_vs_rebuild_speedup",
            "serving",
            best_rebuild / max(best_overlay, 1e-9),
            "x",
        ),
        _entry(
            "serving.dynamic.cache_retention_ratio", "serving", retention, "ratio"
        ),
    ]


def validate_snapshot(data: object) -> None:
    """Raise :class:`ValueError` unless ``data`` is a valid v1 snapshot.

    Checked: the schema version, required top-level fields and their types,
    a non-empty entry list with well-formed entries, unique entry names,
    and — the acceptance bar for a *useful* trajectory point — at least one
    ``kernel`` and one ``phase`` entry.
    """
    if not isinstance(data, dict):
        raise ValueError(f"snapshot must be a JSON object, got {type(data).__name__}")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema_version {version!r}; "
            f"this reader understands {SCHEMA_VERSION}"
        )
    for field, kind in (("pr", int), ("scale", str), ("created", str)):
        value = data.get(field)
        if not isinstance(value, kind) or isinstance(value, bool):
            raise ValueError(
                f"snapshot field {field!r} must be {kind.__name__}, got {value!r}"
            )
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError("snapshot needs a non-empty 'entries' list")
    seen = set()
    kinds = set()
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"entry {position} must be an object, got {entry!r}")
        missing = [field for field in _REQUIRED_ENTRY_FIELDS if field not in entry]
        if missing:
            raise ValueError(f"entry {position} is missing fields {missing}")
        name, kind, value, unit = (
            entry["name"],
            entry["kind"],
            entry["value"],
            entry["unit"],
        )
        if not isinstance(name, str) or not name:
            raise ValueError(f"entry {position}: name must be a non-empty string")
        if kind not in ENTRY_KINDS:
            raise ValueError(
                f"entry {name!r}: kind {kind!r} not in {ENTRY_KINDS}"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"entry {name!r}: value must be a number, got {value!r}")
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"entry {name!r}: value must be finite, got {value!r}")
        if not isinstance(unit, str):
            raise ValueError(f"entry {name!r}: unit must be a string")
        if name in seen:
            raise ValueError(f"duplicate entry name {name!r}")
        seen.add(name)
        kinds.add(kind)
    for required_kind in ("kernel", "phase"):
        if required_kind not in kinds:
            raise ValueError(
                f"snapshot has no {required_kind!r} entries; a trajectory point "
                f"must cover kernels and phases"
            )


def write_snapshot(data: Dict[str, object], path: str) -> None:
    """Validate and write one snapshot (stable key order, trailing newline)."""
    validate_snapshot(data)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_snapshot(path: str) -> Dict[str, object]:
    """Read and validate one snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    validate_snapshot(data)
    return data
