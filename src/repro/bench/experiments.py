"""Experiment drivers: one function per table/figure of the paper.

Every driver takes an :class:`~repro.bench.harness.ExperimentScale` and
returns a list of row dictionaries; ``print(render_table(rows))`` shows the
same rows/series the paper reports.  Absolute numbers differ from the paper
(pure-Python on synthetic proxies instead of C++ on real billion-edge
graphs); EXPERIMENTS.md records which qualitative shapes are expected to
hold and what we measured.

Driver index (see DESIGN.md section 4):

=================  =====================================================
``fig2b``          #edges in SPG_k vs #simple paths as k grows
``fig8``           total query time: EVE vs JOIN vs PathEnum
``fig9``           max/median/min space per algorithm (k=6)
``fig10a``         max space vs k
``fig10b``         average time vs dist(s, t)
``fig10c``         EVE per-phase time breakdown
``fig11``          ablation of EVE pruning strategies (k=7)
``fig12a``         average coverage ratio vs k
``fig12b``         EVE vs KHSQ+-assisted baselines
``table3``         redundant ratio of the upper-bound graph
``table4``         PathEnum speedups using SPG_k / G^k_st as search space
``table5``         JOIN/PathEnum speedups for SPG generation on G^k_st
``fig13``          fraud-detection case study on a transaction network
=================  =====================================================
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import aggregate_space, average, coverage_ratio, redundant_ratio, speedup
from repro.bench.harness import AlgorithmRegistry, ExperimentScale, QueryRunner
from repro.core.eve import EVE, EVEConfig
from repro.datasets.registry import load_dataset
from repro.datasets.transaction import generate_transaction_network
from repro.enumeration.join import JoinEnumerator
from repro.enumeration.pathenum import PathEnum
from repro.enumeration.spg_via_enumeration import EnumerationSPGBuilder
from repro.exceptions import ExperimentError
from repro.graph.subgraph import edge_induced_subgraph
from repro.khsq.khsq import KHSQ, KHSQPlus
from repro.queries.workload import distance_stratified_queries

__all__ = [
    "experiment_fig2b",
    "experiment_fig8",
    "experiment_fig9",
    "experiment_fig10a",
    "experiment_fig10b",
    "experiment_fig10c",
    "experiment_fig11",
    "experiment_fig12a",
    "experiment_fig12b",
    "experiment_table3",
    "experiment_table4",
    "experiment_table5",
    "experiment_fig13",
    "EXPERIMENTS",
    "run_experiment",
]

_BASELINES = ("JOIN", "PathEnum")


# ----------------------------------------------------------------------
# Figure 2(b): growth of |E(SPG_k)| vs the number of simple paths
# ----------------------------------------------------------------------
def experiment_fig2b(scale: ExperimentScale, datasets: Optional[Sequence[str]] = None) -> List[Dict]:
    """Average #edges in SPG_k and #k-hop s-t simple paths as k grows."""
    rows: List[Dict] = []
    for code in datasets or scale.datasets[:2]:
        graph = scale.load_graph(code)
        eve = EVE(graph)
        enumerator = PathEnum(graph)
        for k in scale.hop_values:
            workload = scale.workload(graph, k)
            edge_counts: List[int] = []
            path_counts: List[int] = []
            for query in workload:
                result = eve.query(query.source, query.target, k)
                edge_counts.append(result.num_edges)
                path_counts.append(
                    enumerator.count_paths(
                        query.source, query.target, k, time_budget=scale.per_query_budget
                    )
                )
            rows.append(
                {
                    "graph": code,
                    "k": k,
                    "avg_spg_edges": average(edge_counts),
                    "avg_simple_paths": average(path_counts),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 8: total query time, EVE vs enumeration baselines
# ----------------------------------------------------------------------
def experiment_fig8(scale: ExperimentScale, algorithms: Sequence[str] = ("EVE",) + _BASELINES) -> List[Dict]:
    """Total time to answer the workload, per graph / k / algorithm."""
    runner = QueryRunner()
    rows: List[Dict] = []
    for code in scale.datasets:
        graph = scale.load_graph(code)
        registry = AlgorithmRegistry(graph, scale.per_query_budget)
        for k in scale.hop_values:
            workload = scale.workload(graph, k)
            for name in algorithms:
                measurements = runner.run(
                    name, registry.build(name), workload, scale.timeout_seconds
                )
                completed = len(measurements)
                rows.append(
                    {
                        "graph": code,
                        "k": k,
                        "algorithm": name,
                        "total_ms": runner.total_seconds(measurements) * 1000.0,
                        "avg_ms": runner.average_seconds(measurements) * 1000.0,
                        "queries": completed,
                        "timed_out": completed < len(workload),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Figure 9: space cost distribution at k = 6
# ----------------------------------------------------------------------
def experiment_fig9(scale: ExperimentScale, k: int = 6, algorithms: Sequence[str] = ("EVE",) + _BASELINES) -> List[Dict]:
    """Max / median / min peak retained items per algorithm (k fixed)."""
    runner = QueryRunner()
    rows: List[Dict] = []
    for code in scale.datasets:
        graph = scale.load_graph(code)
        registry = AlgorithmRegistry(graph, scale.per_query_budget)
        workload = scale.workload(graph, k)
        for name in algorithms:
            measurements = runner.run(
                name, registry.build(name), workload, scale.timeout_seconds
            )
            stats = aggregate_space([m.space_peak for m in measurements])
            rows.append(
                {
                    "graph": code,
                    "k": k,
                    "algorithm": name,
                    "space_max": stats["max"],
                    "space_median": stats["median"],
                    "space_min": stats["min"],
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 10(a): max space vs k
# ----------------------------------------------------------------------
def experiment_fig10a(scale: ExperimentScale, datasets: Optional[Sequence[str]] = None,
                      algorithms: Sequence[str] = ("EVE",) + _BASELINES) -> List[Dict]:
    """Maximum peak space as a function of k for two graphs (paper: wn, bs)."""
    runner = QueryRunner()
    rows: List[Dict] = []
    for code in datasets or scale.datasets[:2]:
        graph = scale.load_graph(code)
        registry = AlgorithmRegistry(graph, scale.per_query_budget)
        for k in scale.hop_values:
            workload = scale.workload(graph, k)
            for name in algorithms:
                measurements = runner.run(
                    name, registry.build(name), workload, scale.timeout_seconds
                )
                stats = aggregate_space([m.space_peak for m in measurements])
                rows.append(
                    {
                        "graph": code,
                        "k": k,
                        "algorithm": name,
                        "space_max": stats["max"],
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Figure 10(b): query time vs shortest distance between s and t
# ----------------------------------------------------------------------
def experiment_fig10b(scale: ExperimentScale, k: int = 6, datasets: Optional[Sequence[str]] = None,
                      algorithms: Sequence[str] = ("EVE",) + _BASELINES) -> List[Dict]:
    """Average query time for queries grouped by exact dist(s, t)."""
    runner = QueryRunner()
    rows: List[Dict] = []
    for code in datasets or scale.datasets[:2]:
        graph = scale.load_graph(code)
        registry = AlgorithmRegistry(graph, scale.per_query_budget)
        stratified = distance_stratified_queries(
            graph, k, per_distance=scale.num_queries, seed=scale.seed
        )
        for distance, workload in sorted(stratified.items()):
            if not workload.queries:
                continue
            for name in algorithms:
                measurements = runner.run(
                    name, registry.build(name), workload, scale.timeout_seconds
                )
                rows.append(
                    {
                        "graph": code,
                        "distance": distance,
                        "algorithm": name,
                        "avg_ms": runner.average_seconds(measurements) * 1000.0,
                        "queries": len(measurements),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Figure 10(c): per-phase time breakdown of EVE
# ----------------------------------------------------------------------
def experiment_fig10c(scale: ExperimentScale, datasets: Optional[Sequence[str]] = None) -> List[Dict]:
    """Per-phase time of EVE for k >= 5 (paper: dense ye vs sparse bs)."""
    rows: List[Dict] = []
    for code in datasets or scale.datasets[:2]:
        graph = scale.load_graph(code)
        eve = EVE(graph)
        for k in [k for k in scale.hop_values if k >= 5] or [5]:
            workload = scale.workload(graph, k)
            totals = {"propagation": 0.0, "upper_bound": 0.0, "verification": 0.0}
            for query in workload:
                result = eve.query(query.source, query.target, k)
                phases = result.phases
                totals["propagation"] += phases.distance_seconds + phases.propagation_seconds
                totals["upper_bound"] += phases.upper_bound_seconds
                totals["verification"] += phases.ordering_seconds + phases.verification_seconds
            for phase, seconds in totals.items():
                rows.append(
                    {
                        "graph": code,
                        "k": k,
                        "phase": phase,
                        "total_ms": seconds * 1000.0,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Figure 11: ablation of EVE's pruning strategies (k = 7 in the paper)
# ----------------------------------------------------------------------
def experiment_fig11(scale: ExperimentScale, k: int = 7) -> List[Dict]:
    """Total time of EVE variants with individual techniques disabled."""
    variants: Dict[str, EVEConfig] = {
        "Naive EVE": EVEConfig.naive(),
        "+forward-looking": EVEConfig(
            distance_strategy="single", forward_looking=True, search_ordering=False
        ),
        "+bi-directional": EVEConfig(
            distance_strategy="bidirectional", forward_looking=True, search_ordering=False
        ),
        "+adaptive": EVEConfig(
            distance_strategy="adaptive", forward_looking=True, search_ordering=False
        ),
        "EVE (full)": EVEConfig(),
    }
    runner = QueryRunner()
    rows: List[Dict] = []
    for code in scale.datasets:
        graph = scale.load_graph(code)
        workload = scale.workload(graph, k)
        for variant_name, config in variants.items():
            engine = EVE(graph, config)
            measurements = runner.run(
                variant_name, engine.query, workload, scale.timeout_seconds
            )
            rows.append(
                {
                    "graph": code,
                    "k": k,
                    "variant": variant_name,
                    "total_ms": runner.total_seconds(measurements) * 1000.0,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 12(a): average coverage ratio vs k
# ----------------------------------------------------------------------
def experiment_fig12a(scale: ExperimentScale) -> List[Dict]:
    """Average coverage ratio r_C = |E(SPG_k)| / |E| per graph and k."""
    rows: List[Dict] = []
    for code in scale.datasets:
        graph = scale.load_graph(code)
        eve = EVE(graph)
        for k in scale.hop_values:
            workload = scale.workload(graph, k)
            ratios = [
                coverage_ratio(
                    eve.query(query.source, query.target, k).num_edges, graph.num_edges
                )
                for query in workload
            ]
            rows.append(
                {
                    "graph": code,
                    "k": k,
                    "avg_coverage_ratio": average(ratios),
                    "d_avg": round(graph.average_degree(), 2),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 12(b): EVE vs KHSQ+-assisted JOIN / PathEnum
# ----------------------------------------------------------------------
def experiment_fig12b(scale: ExperimentScale, datasets: Optional[Sequence[str]] = None) -> List[Dict]:
    """Total time of EVE against baselines enhanced with the G^k_st search space."""
    algorithms = ("EVE", "KHSQ+JOIN", "KHSQ+PathEnum")
    runner = QueryRunner()
    rows: List[Dict] = []
    for code in datasets or scale.datasets[:3]:
        graph = scale.load_graph(code)
        registry = AlgorithmRegistry(graph, scale.per_query_budget)
        for k in scale.hop_values:
            workload = scale.workload(graph, k)
            for name in algorithms:
                measurements = runner.run(
                    name, registry.build(name), workload, scale.timeout_seconds
                )
                rows.append(
                    {
                        "graph": code,
                        "k": k,
                        "algorithm": name,
                        "total_ms": runner.total_seconds(measurements) * 1000.0,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Table 3: redundant ratio of the upper-bound graph
# ----------------------------------------------------------------------
def experiment_table3(scale: ExperimentScale) -> List[Dict]:
    """Average redundant ratio r_D per graph and k (k >= 5 is the hard case)."""
    rows: List[Dict] = []
    hop_values = [k for k in scale.hop_values if k >= 5] or [5, 6]
    for code in scale.datasets:
        graph = scale.load_graph(code)
        eve = EVE(graph)
        for k in hop_values:
            workload = scale.workload(graph, k)
            ratios = []
            for query in workload:
                result = eve.query(query.source, query.target, k)
                ratios.append(
                    redundant_ratio(result.num_upper_bound_edges, result.num_edges)
                )
            rows.append(
                {
                    "graph": code,
                    "k": k,
                    "avg_redundant_ratio": average(ratios),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table 4: speedups of PathEnum given SPG_k / G^k_st as search space
# ----------------------------------------------------------------------
def experiment_table4(scale: ExperimentScale) -> List[Dict]:
    """Speedups of PathEnum when run on KHSQ, KHSQ+ or EVE search spaces.

    Two speedups are reported per (graph, k, search space):

    * ``time_speedup`` — (PathEnum on ``G``) / (search-space generation +
      PathEnum on it), the paper's Table 4 metric;
    * ``work_speedup`` — PathEnum neighbour expansions on ``G`` divided by
      its expansions on the restricted search space.  This is the
      machine-independent view of the same effect and is the quantity that
      survives the pure-Python constant factors at laptop scale (see
      EXPERIMENTS.md).
    """
    rows: List[Dict] = []
    for code in scale.datasets:
        graph = scale.load_graph(code)
        eve = EVE(graph)
        khsq_plus = KHSQPlus(graph)
        khsq_single = KHSQ(graph)
        for k in scale.hop_values:
            workload = scale.workload(graph, k)
            baseline_total = 0.0
            baseline_work = 0
            assisted_totals = {"KHSQ": 0.0, "KHSQ+": 0.0, "EVE": 0.0}
            assisted_work = {"KHSQ": 0, "KHSQ+": 0, "EVE": 0}
            for query in workload:
                source, target = query.source, query.target
                baseline_enum = PathEnum(graph)
                started = time.perf_counter()
                baseline_enum.enumerate(
                    source, target, k, time_budget=scale.per_query_budget
                )
                baseline_total += time.perf_counter() - started
                baseline_work += baseline_enum.expansions

                for name, provider in (
                    ("KHSQ", khsq_single),
                    ("KHSQ+", khsq_plus),
                ):
                    started = time.perf_counter()
                    subgraph_result = provider.query(source, target, k)
                    search_space = subgraph_result.to_graph(graph)
                    assisted_enum = PathEnum(search_space)
                    assisted_enum.enumerate(
                        source, target, k, time_budget=scale.per_query_budget
                    )
                    assisted_totals[name] += time.perf_counter() - started
                    assisted_work[name] += assisted_enum.expansions

                started = time.perf_counter()
                spg_result = eve.query(source, target, k)
                search_space = spg_result.to_graph(graph)
                assisted_enum = PathEnum(search_space)
                assisted_enum.enumerate(
                    source, target, k, time_budget=scale.per_query_budget
                )
                assisted_totals["EVE"] += time.perf_counter() - started
                assisted_work["EVE"] += assisted_enum.expansions
            for name, assisted_total in assisted_totals.items():
                rows.append(
                    {
                        "graph": code,
                        "k": k,
                        "search_space": name,
                        "time_speedup": speedup(baseline_total, assisted_total),
                        "work_speedup": speedup(float(baseline_work), float(assisted_work[name])),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Table 5: speedups for SPG generation on G^k_st (k = 6 in the paper)
# ----------------------------------------------------------------------
def experiment_table5(scale: ExperimentScale, k: int = 6) -> List[Dict]:
    """Speedups of JOIN / PathEnum when generating SPG_k on G^k_st instead of G."""
    rows: List[Dict] = []
    for code in scale.datasets:
        graph = scale.load_graph(code)
        khsq_plus = KHSQPlus(graph)
        workload = scale.workload(graph, k)
        for enumerator_class in (JoinEnumerator, PathEnum):
            plain_total = 0.0
            assisted_total = 0.0
            space_reductions: List[float] = []
            for query in workload:
                source, target = query.source, query.target
                started = time.perf_counter()
                EnumerationSPGBuilder(
                    graph, enumerator_class, scale.per_query_budget
                ).query(source, target, k)
                plain_total += time.perf_counter() - started

                started = time.perf_counter()
                subgraph_result = khsq_plus.query(source, target, k)
                search_space = subgraph_result.to_graph(graph)
                EnumerationSPGBuilder(
                    search_space, enumerator_class, scale.per_query_budget
                ).query(source, target, k)
                assisted_total += time.perf_counter() - started
                if subgraph_result.num_edges:
                    space_reductions.append(graph.num_edges / subgraph_result.num_edges)
            rows.append(
                {
                    "graph": code,
                    "k": k,
                    "algorithm": enumerator_class(graph).name,
                    "speedup_on_Gkst": speedup(plain_total, assisted_total),
                    "avg_edge_reduction": average(space_reductions),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 13: fraud-detection case study on a temporal transaction network
# ----------------------------------------------------------------------
def experiment_fig13(
    scale: ExperimentScale,
    k: int = 5,
    window_days: float = 7.0,
    num_accounts: int = 400,
    num_transactions: int = 3000,
) -> List[Dict]:
    """Extract the accounts involved in short cycles through a flagged edge.

    For the flagged transaction ``e(t, s)`` the driver computes
    ``SPG_k(s, t)`` on the transaction snapshot of the last ``window_days``
    days and compares the recovered accounts with the planted fraud ring.
    """
    network = generate_transaction_network(
        num_accounts=num_accounts,
        num_transactions=num_transactions,
        seed=scale.seed,
    )
    if network.flagged_edge is None:
        raise ExperimentError("transaction network generator produced no flagged edge")
    payer, payee, _ = network.flagged_edge  # flagged edge is e(t, s)
    source, target = payee, payer
    snapshot = network.window_around_flag(window_days)
    eve = EVE(snapshot)
    result = eve.query(source, target, k)
    recovered = set(result.vertices)
    planted_ring = set(network.fraud_rings[0])
    true_positives = len(recovered & planted_ring)
    return [
        {
            "query": f"SPG_{k}({source},{target})",
            "window_days": window_days,
            "snapshot_edges": snapshot.num_edges,
            "suspicious_accounts": len(recovered),
            "suspicious_transactions": result.num_edges,
            "planted_ring_size": len(planted_ring),
            "ring_recovered": true_positives,
            "recall": true_positives / len(planted_ring) if planted_ring else 0.0,
            "query_ms": result.phases.total_seconds * 1000.0,
        }
    ]


# ----------------------------------------------------------------------
# Registry + CLI entry point used by ``python -m repro.bench``
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[[ExperimentScale], List[Dict]]] = {
    "fig2b": experiment_fig2b,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "fig10a": experiment_fig10a,
    "fig10b": experiment_fig10b,
    "fig10c": experiment_fig10c,
    "fig11": experiment_fig11,
    "fig12a": experiment_fig12a,
    "fig12b": experiment_fig12b,
    "table3": experiment_table3,
    "table4": experiment_table4,
    "table5": experiment_table5,
    "fig13": experiment_fig13,
}


def run_experiment(name: str, scale: Optional[ExperimentScale] = None) -> List[Dict]:
    """Run one named experiment and return its rows."""
    if name not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[name](scale or ExperimentScale.small())
