"""Command-line entry point: ``python -m repro.bench <experiment> [options]``.

Runs one (or all) of the experiment drivers and prints the resulting table.
Two additional subcommands maintain the persisted performance trajectory
(see :mod:`repro.bench.trajectory`):

* ``python -m repro.bench snapshot --pr N [--out PATH]`` — measure and
  write ``BENCH_N.json``;
* ``python -m repro.bench check --pr N [--path PATH]`` — validate the
  committed snapshot (non-zero exit when missing or schema-invalid; this
  is the CI trajectory gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import ExperimentScale
from repro.bench.report import render_table
from repro.bench.trajectory import (
    collect_snapshot,
    load_snapshot,
    snapshot_filename,
    write_snapshot,
)

__all__ = ["main"]

#: Subcommands that maintain the BENCH_<pr>.json trajectory rather than
#: running a paper experiment.
_TRAJECTORY_COMMANDS = ("snapshot", "check")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the paper's tables and figures at a chosen scale, "
            "or maintain the BENCH_<pr>.json performance trajectory."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"] + list(_TRAJECTORY_COMMANDS),
        help=(
            "experiment to run (paper table/figure id), 'all', or a "
            "trajectory command ('snapshot' / 'check')"
        ),
    )
    parser.add_argument(
        "--pr",
        type=int,
        default=None,
        help="PR number for the trajectory snapshot (snapshot/check only)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path for 'snapshot' (default: BENCH_<pr>.json)",
    )
    parser.add_argument(
        "--path",
        default=None,
        metavar="PATH",
        help="snapshot path for 'check' (default: BENCH_<pr>.json)",
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "paper"],
        default="small",
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--queries", type=int, default=None, help="override the number of queries per workload"
    )
    parser.add_argument(
        "--datasets", type=str, default=None,
        help="comma-separated dataset codes to use (default: preset's datasets)",
    )
    return parser


def _resolve_scale(args: argparse.Namespace) -> ExperimentScale:
    presets = {
        "tiny": ExperimentScale.tiny,
        "small": ExperimentScale.small,
        "paper": ExperimentScale.paper,
    }
    scale = presets[args.scale]()
    overrides = {}
    if args.queries is not None:
        overrides["num_queries"] = args.queries
    if args.datasets:
        overrides["datasets"] = tuple(code.strip() for code in args.datasets.split(","))
    if overrides:
        from dataclasses import replace

        scale = replace(scale, **overrides)
    return scale


def _run_trajectory_command(args: argparse.Namespace) -> int:
    """Handle the ``snapshot`` / ``check`` trajectory subcommands."""
    if args.pr is None:
        print(f"error: '{args.experiment}' requires --pr", file=sys.stderr)
        return 2
    if args.experiment == "snapshot":
        path = args.out or snapshot_filename(args.pr)
        data = collect_snapshot(args.pr, scale=args.scale if args.scale != "paper" else "small")
        write_snapshot(data, path)
        print(f"wrote {path} ({len(data['entries'])} entries)")
        return 0
    path = args.path or snapshot_filename(args.pr)
    try:
        data = load_snapshot(path)
    except FileNotFoundError:
        print(
            f"error: trajectory snapshot {path} is missing — run "
            f"'python -m repro.bench snapshot --pr {args.pr}' and commit it",
            file=sys.stderr,
        )
        return 1
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: trajectory snapshot {path} is invalid: {exc}", file=sys.stderr)
        return 1
    kinds = sorted({entry["kind"] for entry in data["entries"]})
    print(
        f"{path} OK: pr={data['pr']} scale={data['scale']} "
        f"entries={len(data['entries'])} kinds={','.join(kinds)}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiment(s) and print their tables."""
    args = _build_parser().parse_args(argv)
    if args.experiment in _TRAJECTORY_COMMANDS:
        return _run_trajectory_command(args)
    scale = _resolve_scale(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        rows = run_experiment(name, scale)
        print(render_table(rows, title=f"== {name} =="))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
