"""Command-line entry point: ``python -m repro.bench <experiment> [options]``.

Runs one (or all) of the experiment drivers and prints the resulting table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import ExperimentScale
from repro.bench.report import render_table

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures at a chosen scale.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment to run (paper table/figure id), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "paper"],
        default="small",
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--queries", type=int, default=None, help="override the number of queries per workload"
    )
    parser.add_argument(
        "--datasets", type=str, default=None,
        help="comma-separated dataset codes to use (default: preset's datasets)",
    )
    return parser


def _resolve_scale(args: argparse.Namespace) -> ExperimentScale:
    presets = {
        "tiny": ExperimentScale.tiny,
        "small": ExperimentScale.small,
        "paper": ExperimentScale.paper,
    }
    scale = presets[args.scale]()
    overrides = {}
    if args.queries is not None:
        overrides["num_queries"] = args.queries
    if args.datasets:
        overrides["datasets"] = tuple(code.strip() for code in args.datasets.split(","))
    if overrides:
        from dataclasses import replace

        scale = replace(scale, **overrides)
    return scale


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiment(s) and print their tables."""
    args = _build_parser().parse_args(argv)
    scale = _resolve_scale(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        rows = run_experiment(name, scale)
        print(render_table(rows, title=f"== {name} =="))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
