"""Experiment harness regenerating every table and figure of the paper.

:mod:`repro.bench.experiments` contains one driver per experiment (Figure
2(b), Figures 8-13, Tables 3-5); each driver returns plain row dictionaries
which :mod:`repro.bench.report` renders as aligned text tables — the same
rows/series the paper reports.  :mod:`repro.bench.harness` provides the
shared machinery (algorithm registry, per-query timing, aggregation), and
``python -m repro.bench <experiment>`` runs any driver from the command
line.  The pytest-benchmark files under ``benchmarks/`` call the same
drivers.
"""

from repro.bench.harness import AlgorithmRegistry, ExperimentScale, QueryRunner
from repro.bench.report import render_series, render_table
from repro.bench.trajectory import (
    SCHEMA_VERSION,
    collect_snapshot,
    load_snapshot,
    snapshot_filename,
    validate_snapshot,
    write_snapshot,
)

__all__ = [
    "AlgorithmRegistry",
    "ExperimentScale",
    "QueryRunner",
    "render_table",
    "render_series",
    "SCHEMA_VERSION",
    "collect_snapshot",
    "load_snapshot",
    "snapshot_filename",
    "validate_snapshot",
    "write_snapshot",
]
