"""Shared experiment machinery: scales, algorithm registry, query runner.

Every experiment driver in :mod:`repro.bench.experiments` is parameterised
by an :class:`ExperimentScale` so the same code can run at three sizes:

* ``tiny()``   — seconds; used by the unit tests of the harness itself;
* ``small()``  — the default for ``pytest benchmarks/`` (laptop friendly);
* ``paper()``  — the closest feasible approximation of the paper's setup
  (all 15 proxy datasets, more queries, larger proxies).

The :class:`QueryRunner` times one SPG algorithm over a query workload and
returns per-query measurements; :class:`AlgorithmRegistry` builds the
standard competitors (EVE, JOIN, PathEnum, and the KHSQ+-assisted variants)
for a given graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro._types import Vertex
from repro.core.eve import EVE, EVEConfig
from repro.core.result import SimplePathGraphResult
from repro.datasets.registry import load_dataset
from repro.enumeration.bcdfs import BCDFS
from repro.enumeration.join import JoinEnumerator
from repro.enumeration.pathenum import PathEnum
from repro.enumeration.spg_via_enumeration import EnumerationSPGBuilder
from repro.exceptions import ExperimentError
from repro.graph.digraph import DiGraph
from repro.khsq.khsq import KHSQ, KHSQPlus
from repro.queries.workload import QueryWorkload, random_reachable_queries

__all__ = ["ExperimentScale", "QueryMeasurement", "QueryRunner", "AlgorithmRegistry"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiment drivers."""

    dataset_scale: float = 0.25
    num_queries: int = 5
    hop_values: Sequence[int] = (3, 4, 5, 6)
    datasets: Sequence[str] = ("ps", "ye", "tw", "bs")
    seed: int = 7
    timeout_seconds: float = 30.0
    per_query_budget: float = 2.0

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Smallest useful scale — used by unit tests of the harness."""
        return cls(
            dataset_scale=0.08,
            num_queries=2,
            hop_values=(3, 4),
            datasets=("tw", "ps"),
            seed=7,
            timeout_seconds=10.0,
            per_query_budget=0.5,
        )

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Default scale for ``pytest benchmarks/`` runs."""
        return cls(
            dataset_scale=0.25,
            num_queries=5,
            hop_values=(3, 4, 5, 6),
            datasets=("ps", "ye", "tw", "bs"),
            seed=7,
            timeout_seconds=30.0,
            per_query_budget=1.0,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """All 15 proxies, more queries — the closest feasible full run."""
        from repro.datasets.registry import dataset_names

        return cls(
            dataset_scale=1.0,
            num_queries=50,
            hop_values=(3, 4, 5, 6, 7, 8),
            datasets=tuple(dataset_names()),
            seed=7,
            timeout_seconds=600.0,
            per_query_budget=10.0,
        )

    # ------------------------------------------------------------------
    def load_graph(self, code: str) -> DiGraph:
        """Load the synthetic proxy for dataset ``code`` at this scale."""
        return load_dataset(code, scale=self.dataset_scale, seed=None)

    def workload(self, graph: DiGraph, k: int) -> QueryWorkload:
        """Generate the random reachable query workload for one graph/k."""
        return random_reachable_queries(
            graph, k, self.num_queries, seed=self.seed
        )


@dataclass
class QueryMeasurement:
    """Timing/space/result sizes for one query under one algorithm."""

    algorithm: str
    source: Vertex
    target: Vertex
    k: int
    seconds: float
    space_peak: int
    num_edges: int
    num_upper_bound_edges: int
    result: Optional[SimplePathGraphResult] = None


class QueryRunner:
    """Times an SPG algorithm (a ``query(s, t, k)`` callable) over a workload."""

    def __init__(self, keep_results: bool = False) -> None:
        self.keep_results = keep_results

    def run(
        self,
        algorithm_name: str,
        query_function: Callable[[Vertex, Vertex, int], SimplePathGraphResult],
        workload: Iterable,
        timeout_seconds: Optional[float] = None,
    ) -> List[QueryMeasurement]:
        """Run every query of ``workload`` and return per-query measurements.

        When ``timeout_seconds`` is given and the accumulated time exceeds
        it, remaining queries are skipped (mirroring the paper's ``INF``
        cut-off for algorithms that do not terminate in time).
        """
        measurements: List[QueryMeasurement] = []
        total = 0.0
        for query in workload:
            if timeout_seconds is not None and total > timeout_seconds:
                break
            started = time.perf_counter()
            result = query_function(query.source, query.target, query.k)
            elapsed = time.perf_counter() - started
            total += elapsed
            measurements.append(
                QueryMeasurement(
                    algorithm=algorithm_name,
                    source=query.source,
                    target=query.target,
                    k=query.k,
                    seconds=elapsed,
                    space_peak=result.space.peak,
                    num_edges=result.num_edges,
                    num_upper_bound_edges=result.num_upper_bound_edges,
                    result=result if self.keep_results else None,
                )
            )
        return measurements

    @staticmethod
    def total_seconds(measurements: Sequence[QueryMeasurement]) -> float:
        """Total time across measurements."""
        return sum(m.seconds for m in measurements)

    @staticmethod
    def average_seconds(measurements: Sequence[QueryMeasurement]) -> float:
        """Average per-query time (0.0 when empty)."""
        if not measurements:
            return 0.0
        return sum(m.seconds for m in measurements) / len(measurements)


class AlgorithmRegistry:
    """Builds the standard SPG-generation competitors for one graph.

    * ``EVE`` — the paper's algorithm (optionally with ablation config);
    * ``JOIN`` / ``PathEnum`` — enumeration baselines (union of path edges);
    * ``KHSQ+...`` variants — compute ``G^k_st`` first, then run the
      enumeration baseline on it (Section 6.8).

    ``time_budget`` caps each enumeration-based query (in seconds); queries
    that hit the cap return a truncated (inexact) result, mirroring the
    paper's ``INF`` reporting for baselines that run out of time.
    """

    def __init__(self, graph: DiGraph, time_budget: Optional[float] = None) -> None:
        self.graph = graph
        self.time_budget = time_budget

    def eve(self, config: Optional[EVEConfig] = None) -> Callable:
        """Return a ``query(s, t, k)`` callable running EVE."""
        engine = EVE(self.graph, config)
        return engine.query

    def join_baseline(self) -> Callable:
        """SPG generation by JOIN enumeration on the full graph."""
        return EnumerationSPGBuilder(self.graph, JoinEnumerator, self.time_budget).query

    def pathenum_baseline(self) -> Callable:
        """SPG generation by PathEnum enumeration on the full graph."""
        return EnumerationSPGBuilder(self.graph, PathEnum, self.time_budget).query

    def bcdfs_baseline(self) -> Callable:
        """SPG generation by BC-DFS enumeration on the full graph."""
        return EnumerationSPGBuilder(self.graph, BCDFS, self.time_budget).query

    def khsq_assisted(self, enumerator_class, optimized: bool = True) -> Callable:
        """SPG generation on ``G^k_st``: KHSQ(+) first, then enumeration."""
        graph = self.graph
        time_budget = self.time_budget
        subgraph_algorithm = KHSQPlus(graph) if optimized else KHSQ(graph)

        def query(source: Vertex, target: Vertex, k: int) -> SimplePathGraphResult:
            subgraph_result = subgraph_algorithm.query(source, target, k)
            search_space = subgraph_result.to_graph(graph)
            builder = EnumerationSPGBuilder(search_space, enumerator_class, time_budget)
            result = builder.query(source, target, k)
            result.algorithm = f"{subgraph_algorithm.name}+{builder.enumerator.name}"
            # Fold the subgraph-construction time into the reported total.
            result.phases.distance_seconds += subgraph_result.seconds
            return result

        return query

    def build(self, name: str) -> Callable:
        """Look up a query callable by its report name."""
        factories: Dict[str, Callable[[], Callable]] = {
            "EVE": self.eve,
            "JOIN": self.join_baseline,
            "PathEnum": self.pathenum_baseline,
            "BC-DFS": self.bcdfs_baseline,
            "KHSQ+JOIN": lambda: self.khsq_assisted(JoinEnumerator, optimized=True),
            "KHSQ+PathEnum": lambda: self.khsq_assisted(PathEnum, optimized=True),
        }
        if name not in factories:
            raise ExperimentError(
                f"unknown algorithm {name!r}; known: {', '.join(sorted(factories))}"
            )
        return factories[name]()
