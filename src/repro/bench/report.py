"""Plain-text rendering of experiment results (tables and series).

The harness keeps results as lists of row dictionaries; these helpers turn
them into aligned text tables so benchmark runs print the same rows/series
the paper's tables and figures report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_value", "render_table", "render_series", "pivot_rows"]


def format_value(value: object, precision: int = 4) -> str:
    """Format one cell: floats get fixed precision, other values use str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:.1f}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned text table.

    Column order defaults to the key order of the first row; missing cells
    render as ``-``.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    keys = list(columns) if columns else list(rows[0].keys())
    rendered_rows = [
        [format_value(row.get(key, "-"), precision) for key in keys] for row in rows
    ]
    widths = [
        max(len(key), max(len(rendered[i]) for rendered in rendered_rows))
        for i, key in enumerate(keys)
    ]
    header = " | ".join(key.ljust(widths[i]) for i, key in enumerate(keys))
    separator = "-+-".join("-" * widths[i] for i in range(len(keys)))
    lines.append(header)
    lines.append(separator)
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[i].ljust(widths[i]) for i in range(len(keys))))
    return "\n".join(lines)


def pivot_rows(
    rows: Sequence[Mapping[str, object]],
    index: str,
    column: str,
    value: str,
) -> List[Dict[str, object]]:
    """Pivot long-format rows into wide format (one column per ``column`` value)."""
    column_values: List[object] = []
    for row in rows:
        if row[column] not in column_values:
            column_values.append(row[column])
    grouped: Dict[object, Dict[str, object]] = {}
    order: List[object] = []
    for row in rows:
        key = row[index]
        if key not in grouped:
            grouped[key] = {index: key}
            order.append(key)
        grouped[key][str(row[column])] = row[value]
    return [grouped[key] for key in order]


def render_series(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    series: str,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render long-format rows as one table with the x values as rows and one
    column per series — the layout used for figure-style results."""
    pivoted = pivot_rows(rows, index=x, column=series, value=y)
    return render_table(pivoted, title=title, precision=precision)
