"""LRU result cache keyed on query, config and graph fingerprint.

Results are immutable-by-convention (:class:`SimplePathGraphResult` objects
are shared between hits), so the cache hands out the stored object directly
— callers must not mutate it.  Including the graph fingerprint in the key
(:func:`repro.graph.digraph.DiGraph.fingerprint`) makes invalidation
automatic: after a graph swap or rebuild, old entries can never match and
simply age out of the LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro._types import Vertex
from repro.core.eve import EVEConfig
from repro.core.result import SimplePathGraphResult

__all__ = ["CacheKey", "make_cache_key", "ResultCache"]

#: ``(source, target, k, config, graph_fingerprint)``
CacheKey = Tuple[Vertex, Vertex, int, EVEConfig, str]


def make_cache_key(
    source: Vertex,
    target: Vertex,
    k: int,
    config: EVEConfig,
    graph_fingerprint: str,
) -> CacheKey:
    """Build the cache key for one query against one graph + config.

    :class:`EVEConfig` is a frozen dataclass, so it participates directly;
    two engines with different ablation switches never share entries (their
    results can legitimately differ when ``verify=False``).
    """
    return (source, target, k, config, graph_fingerprint)


class ResultCache:
    """A thread-safe LRU cache of :class:`SimplePathGraphResult` objects."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, SimplePathGraphResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[SimplePathGraphResult]:
        """Return the cached result for ``key`` or ``None`` (counts hit/miss)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: CacheKey, result: SimplePathGraphResult) -> None:
        """Insert (or refresh) ``key``, evicting the least recently used."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Scoped invalidation (dynamic graphs)
    # ------------------------------------------------------------------
    def invalidate_where(self, predicate: Callable[[CacheKey], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return the count.

        The historical invalidation model was all-or-nothing: a graph swap
        changed the fingerprint, so *every* old entry went stale at once and
        simply aged out.  Delta mutations break that assumption — most
        entries survive a localized edit — so this walks the table under the
        lock and removes exactly the matching keys.  ``predicate`` must be a
        pure function of the key (it runs with the lock held; it must not
        call back into the cache).  Hit/miss counters are untouched:
        invalidation is not a lookup, and dropped entries are tallied in
        ``invalidations`` instead.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def rekey_fingerprint(
        self,
        old_fingerprint: str,
        new_fingerprint: str,
        keep: Optional[Callable[[CacheKey], bool]] = None,
    ) -> Tuple[int, int]:
        """Migrate entries from one graph fingerprint to its successor.

        For every entry keyed on ``old_fingerprint``: if ``keep(key)`` is
        true the entry is re-inserted under ``new_fingerprint`` (its result
        is still exact on the successor graph — the caller proved its
        k-ball misses the touched region); otherwise it is dropped and
        counted in ``invalidations``.  ``keep=None`` drops everything, the
        conservative whole-flush.  Returns ``(invalidated, retained)``.

        Runs atomically under the lock, so a concurrent ``get`` sees either
        the old key or the new one, never a half-migrated table.  Like
        :meth:`invalidate_where`, ``keep`` must be pure and must not call
        back into the cache.  Retained entries keep their stored result
        object and are refreshed to most-recently-used (they just survived
        a mutation — demonstrably still hot).
        """
        invalidated = 0
        retained = 0
        with self._lock:
            matching = [key for key in self._entries if key[4] == old_fingerprint]
            for key in matching:
                result = self._entries.pop(key)
                if keep is not None and keep(key):
                    new_key = (key[0], key[1], key[2], key[3], new_fingerprint)
                    self._entries[new_key] = result
                    retained += 1
                else:
                    invalidated += 1
            self.invalidations += invalidated
        return invalidated, retained

    def keys(self) -> List[CacheKey]:
        """Return a point-in-time list of the cached keys."""
        with self._lock:
            return list(self._entries.keys())

    def items(self) -> List[Tuple[CacheKey, SimplePathGraphResult]]:
        """Return a point-in-time list of ``(key, result)`` pairs.

        Unlike :meth:`get` this does not touch hit/miss counters or LRU
        order; it exists for invariant checks (the dynamic-graph harness
        audits every retained entry against a from-scratch oracle).
        """
        with self._lock:
            return list(self._entries.items())

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 before any lookup).

        Reads both counters under the lock, like :meth:`stats` — two
        unsynchronised reads could see a hit counted by a concurrent
        ``get`` whose miss sibling it misses (torn ratio) under the thread
        backend.
        """
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """Return a point-in-time dictionary view of the counters."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        # One consistent snapshot under the lock (``len(self)`` re-acquires
        # it, so the values are read directly here).
        with self._lock:
            entries = len(self._entries)
            hits = self.hits
            misses = self.misses
        return (
            f"ResultCache(entries={entries}/{self.max_entries}, "
            f"hits={hits}, misses={misses})"
        )
