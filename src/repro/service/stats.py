"""Engine observability: thread-safe counters and latency quantiles.

:class:`EngineStats` is the per-engine metrics object surfaced by
:meth:`repro.service.SPGEngine.stats`.  Latencies are kept in a bounded
ring buffer (:class:`LatencyWindow`) so a long-lived engine reports
quantiles over *recent* traffic with O(1) memory.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List

__all__ = ["LatencyWindow", "EngineStats"]


class LatencyWindow:
    """Bounded reservoir of the most recent latency samples (seconds).

    Once ``capacity`` samples have been recorded, the oldest sample is
    overwritten (ring buffer), so quantiles always describe the last
    ``capacity`` observations.
    """

    __slots__ = ("_capacity", "_samples", "_position", "_recorded")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._samples: List[float] = []
        self._position = 0
        self._recorded = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._position] = seconds
            self._position = (self._position + 1) % self._capacity
        self._recorded += 1

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (nearest-rank) of the retained samples.

        Returns 0.0 when no sample has been recorded yet.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    @property
    def recorded(self) -> int:
        """Total number of samples ever recorded (including overwritten ones)."""
        return self._recorded

    def __len__(self) -> int:
        return len(self._samples)


class EngineStats:
    """Thread-safe counters and latency quantiles for one engine.

    Every served query records exactly one observation; cache hits count
    into ``cache_hits`` and computed queries into ``cache_misses`` so
    ``hit_rate`` is the fraction of queries answered without running EVE.
    """

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyWindow(latency_window)
        self.queries_served = 0
        self.batches_served = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.errors = 0
        self.shared_backward_reuses = 0
        self.sharded_backward_passes = 0
        self.scratch_allocations = 0
        self.scratch_reuses = 0
        self.propagation_scratch_allocations = 0
        self.propagation_scratch_reuses = 0

    # ------------------------------------------------------------------
    def record_query(
        self,
        latency_seconds: float,
        *,
        cached: bool,
        error: bool = False,
        reused_backward: bool = False,
    ) -> None:
        """Record one served query."""
        with self._lock:
            self.queries_served += 1
            if error:
                self.errors += 1
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if reused_backward:
                self.shared_backward_reuses += 1
            self._latencies.record(latency_seconds)

    def record_batch(self) -> None:
        """Record one served batch."""
        with self._lock:
            self.batches_served += 1

    def record_sharded_backward(self) -> None:
        """Record one backward pass computed partition-parallel.

        Counted by :class:`repro.service.shard.ShardedSPGEngine` whenever a
        shared ``(t, k)`` pass runs through the halo-exchange kernel
        *in-process*; like the scratch counters, passes computed inside
        process-pool workers stay invisible to the parent's stats.
        """
        with self._lock:
            self.sharded_backward_passes += 1

    def record_scratch(self, *, reused: bool) -> None:
        """Record one scratch-buffer checkout (allocation vs pool reuse).

        Every query *executed in-process* checks out exactly one scratch,
        so on an in-process backend (``serial``/``thread``/``async``) and a
        workload where every query actually runs (no malformed batch
        entries, no duplicates of a failed primary — those are recorded as
        cache misses without executing), ``scratch_allocations +
        scratch_reuses == cache_misses``.  Unconditionally,
        ``scratch_allocations`` stays bounded by the peak number of
        concurrent workers — that is the "zero per-query allocation"
        property the throughput benchmark asserts.  The ``process`` backend
        is outside both invariants: its workers each keep one private
        scratch in their own process, so these parent-side counters stay at
        zero however many queries the pool executes.
        """
        with self._lock:
            if reused:
                self.scratch_reuses += 1
            else:
                self.scratch_allocations += 1

    def record_propagation_scratch(self, *, reused: bool) -> None:
        """Record one essential-propagation scratch checkout.

        The propagation twin of :meth:`record_scratch`: since the pool
        hands out :class:`repro.core.eve.QueryScratch` bundles, every
        in-process query checks out exactly one set of propagation buffers
        alongside its distance buffers, and ``propagation_scratch_allocations``
        stays bounded by the peak number of concurrent workers — the "zero
        per-query propagation allocation" property the labelling kernel
        benchmark asserts.  Counted separately so the distance and
        propagation claims remain individually assertable (and would
        diverge if the pooling of the two ever split).
        """
        with self._lock:
            if reused:
                self.propagation_scratch_reuses += 1
            else:
                self.propagation_scratch_allocations += 1

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache (0.0 with no traffic)."""
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def percentile_seconds(self, q: float) -> float:
        """Latency quantile over the recent window, in seconds."""
        with self._lock:
            return self._latencies.quantile(q)

    def snapshot(self) -> Dict[str, object]:
        """Return a point-in-time dictionary view (JSON friendly)."""
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return {
                "queries_served": self.queries_served,
                "batches_served": self.batches_served,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": self.cache_hits / total if total else 0.0,
                "errors": self.errors,
                "shared_backward_reuses": self.shared_backward_reuses,
                "sharded_backward_passes": self.sharded_backward_passes,
                "scratch_allocations": self.scratch_allocations,
                "scratch_reuses": self.scratch_reuses,
                "propagation_scratch_allocations": self.propagation_scratch_allocations,
                "propagation_scratch_reuses": self.propagation_scratch_reuses,
                "p50_ms": self._latencies.quantile(0.50) * 1000.0,
                "p95_ms": self._latencies.quantile(0.95) * 1000.0,
                "p99_ms": self._latencies.quantile(0.99) * 1000.0,
            }

    def reset(self) -> None:
        """Zero every counter and drop the latency window."""
        with self._lock:
            capacity = self._latencies._capacity
            self._latencies = LatencyWindow(capacity)
            self.queries_served = 0
            self.batches_served = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.errors = 0
            self.shared_backward_reuses = 0
            self.sharded_backward_passes = 0
            self.scratch_allocations = 0
            self.scratch_reuses = 0
            self.propagation_scratch_allocations = 0
            self.propagation_scratch_reuses = 0

    def __repr__(self) -> str:
        return (
            f"EngineStats(queries={self.queries_served}, "
            f"hits={self.cache_hits}, misses={self.cache_misses}, "
            f"errors={self.errors})"
        )
