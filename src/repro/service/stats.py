"""Engine observability: thread-safe counters, quantiles and exposition.

:class:`EngineStats` is the per-engine metrics object surfaced by
:meth:`repro.service.SPGEngine.stats`.  Latencies are kept in a bounded
ring buffer (:class:`LatencyWindow`) so a long-lived engine reports
quantiles over *recent* traffic with O(1) memory; alongside the ring each
window maintains cumulative histogram buckets (Prometheus semantics: the
bucket counters and the sum are monotonic over the window's lifetime, they
do *not* forget overwritten samples).

Beyond the overall query-latency window, :class:`EngineStats` keeps one
window per EVE phase (:data:`repro.core.result.PHASE_NAMES`) fed from the
:class:`~repro.core.result.PhaseStats` of every computed (cache-miss)
query — results carry their phase breakdown across process boundaries, so
the per-phase histograms are identical no matter which executor backend
ran the query.

:meth:`EngineStats.to_prometheus` renders everything as text-format 0.0.4
exposition (see :mod:`repro.telemetry.prometheus`);
:meth:`EngineStats.merge_counters` folds in the counter deltas that
process-pool workers ship back inside task results.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.result import PHASE_NAMES
from repro.telemetry import render_counter, render_gauge, render_histogram

__all__ = ["DEFAULT_LATENCY_BUCKETS", "LatencyWindow", "EngineStats"]

#: Default histogram bucket upper bounds, in seconds.  Sub-millisecond
#: resolution at the low end (cache hits, tiny queries) through tens of
#: seconds (large-k verification) — 14 buckets, log-ish spacing.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    10.0,
)


class LatencyWindow:
    """Bounded reservoir of recent latency samples plus cumulative buckets.

    Once ``capacity`` samples have been recorded, the oldest sample is
    overwritten (ring buffer), so quantiles always describe the last
    ``capacity`` observations.  The histogram side is *cumulative*: bucket
    counts and the running sum cover every sample ever recorded (they are
    Prometheus counters and never decrease), so they survive ring
    overwrites and :attr:`recorded` equals the ``+Inf`` bucket.
    """

    __slots__ = (
        "_capacity",
        "_samples",
        "_position",
        "_recorded",
        "_bounds",
        "_bucket_counts",
        "_sum",
        "_sorted",
    )

    def __init__(
        self,
        capacity: int = 4096,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("at least one histogram bucket bound is required")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending: {bounds}")
        self._capacity = capacity
        self._samples: List[float] = []
        self._position = 0
        self._recorded = 0
        self._bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._sum = 0.0
        #: Cached sorted view of ``_samples``; ``None`` marks it stale.
        self._sorted: Optional[List[float]] = None

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._position] = seconds
            self._position = (self._position + 1) % self._capacity
        self._recorded += 1
        self._sorted = None
        self._sum += seconds
        for index, bound in enumerate(self._bounds):
            if seconds <= bound:
                self._bucket_counts[index] += 1
                break

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (nearest-rank) of the retained samples.

        Returns 0.0 when no sample has been recorded yet.  The sorted view
        is cached between calls and invalidated on :meth:`record`, so
        scraping several quantiles from an idle window sorts once.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def histogram(self) -> Tuple[Tuple[float, ...], List[int], float, int]:
        """Return ``(bounds, cumulative_counts, sum, count)``.

        The shape :func:`repro.telemetry.render_histogram` takes for one
        series: ``cumulative_counts[i]`` is the number of samples ``<=
        bounds[i]`` over the window's whole lifetime, ``count`` the total
        recorded (the implicit ``+Inf`` bucket).
        """
        cumulative: List[int] = []
        running = 0
        for count in self._bucket_counts:
            running += count
            cumulative.append(running)
        return self._bounds, cumulative, self._sum, self._recorded

    def reset(self) -> None:
        """Drop every sample, bucket count and the running sum."""
        self._samples = []
        self._position = 0
        self._recorded = 0
        self._bucket_counts = [0] * len(self._bounds)
        self._sum = 0.0
        self._sorted = None

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples (the ring size)."""
        return self._capacity

    @property
    def bucket_bounds(self) -> Tuple[float, ...]:
        """The explicit histogram bucket upper bounds, ascending."""
        return self._bounds

    @property
    def sum_seconds(self) -> float:
        """Cumulative sum of every sample ever recorded."""
        return self._sum

    @property
    def recorded(self) -> int:
        """Total number of samples ever recorded (including overwritten ones)."""
        return self._recorded

    def __len__(self) -> int:
        return len(self._samples)


#: Counter attributes a worker-side delta may add to (see
#: :meth:`EngineStats.merge_counters`): the scratch-pool and sharded
#: backward-pass counters, which are the only stats recorded *inside*
#: process-pool workers rather than from results in the parent.
_MERGEABLE_COUNTERS = frozenset(
    {
        "scratch_allocations",
        "scratch_reuses",
        "propagation_scratch_allocations",
        "propagation_scratch_reuses",
        "verification_scratch_allocations",
        "verification_scratch_reuses",
        "sharded_backward_passes",
    }
)


class EngineStats:
    """Thread-safe counters, latency quantiles and histograms for one engine.

    Every served query records exactly one observation; cache hits count
    into ``cache_hits`` and computed queries into ``cache_misses`` so
    ``hit_rate`` is the fraction of queries answered without running EVE.
    Computed queries additionally record their per-phase durations into one
    :class:`LatencyWindow` per EVE phase, keyed by
    :data:`repro.core.result.PHASE_NAMES`.
    """

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyWindow(latency_window)
        self._phase_latencies: Dict[str, LatencyWindow] = {
            phase: LatencyWindow(latency_window) for phase in PHASE_NAMES
        }
        self.queries_served = 0
        self.batches_served = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.errors = 0
        self.shared_backward_reuses = 0
        self.sharded_backward_passes = 0
        self.scratch_allocations = 0
        self.scratch_reuses = 0
        self.propagation_scratch_allocations = 0
        self.propagation_scratch_reuses = 0
        self.verification_scratch_allocations = 0
        self.verification_scratch_reuses = 0
        # HTTP front-end admission accounting (repro.service.http): one
        # decision per request, plus the bounded-queue depth gauge.
        self.http_requests_admitted = 0
        self.http_requests_shed = 0
        self.http_quota_rejections = 0
        self.http_drain_rejections = 0
        self.http_queue_depth = 0
        self.http_queue_depth_peak = 0
        # Dynamic-graph mutation accounting (repro.graph.delta): one
        # record_delta per apply_delta, plus the epoch gauge.
        self.deltas_applied = 0
        self.delta_edges_inserted = 0
        self.delta_edges_deleted = 0
        self.delta_compactions = 0
        self.cache_entries_invalidated = 0
        self.cache_entries_retained = 0
        self.graph_epoch = 0

    # ------------------------------------------------------------------
    def record_query(
        self,
        latency_seconds: float,
        *,
        cached: bool,
        error: bool = False,
        reused_backward: bool = False,
        phases: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Record one served query.

        ``phases`` optionally carries the per-phase duration breakdown of a
        computed query (:meth:`repro.core.result.PhaseStats.by_phase`);
        every key must be a canonical phase name.  Phase breakdowns travel
        inside results, so the engine records them here in the parent for
        every backend — including queries executed in pool workers.
        """
        with self._lock:
            self.queries_served += 1
            if error:
                self.errors += 1
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if reused_backward:
                self.shared_backward_reuses += 1
            self._latencies.record(latency_seconds)
            if phases is not None:
                windows = self._phase_latencies
                for phase, seconds in phases.items():
                    windows[phase].record(seconds)

    def record_batch(self) -> None:
        """Record one served batch."""
        with self._lock:
            self.batches_served += 1

    def record_sharded_backward(self) -> None:
        """Record one backward pass computed partition-parallel.

        Counted by :class:`repro.service.shard.ShardedSPGEngine` whenever a
        shared ``(t, k)`` pass runs through the halo-exchange kernel
        in-process; passes computed inside process-pool workers arrive via
        :meth:`merge_counters` from the per-task deltas instead, so the
        counter covers every backend.
        """
        with self._lock:
            self.sharded_backward_passes += 1

    def record_scratch(self, *, reused: bool) -> None:
        """Record one scratch-buffer checkout (allocation vs pool reuse).

        Every executed query checks out exactly one scratch, so on a
        workload where every query actually runs (no malformed batch
        entries, no duplicates of a failed primary — those are recorded as
        cache misses without executing), ``scratch_allocations +
        scratch_reuses == cache_misses``, and ``scratch_allocations`` stays
        bounded by the peak number of concurrent workers — the "zero
        per-query allocation" property the throughput benchmark asserts.
        In-process backends (``serial``/``thread``/``async``) count here
        directly; the ``process`` backend counts in each worker's local
        pool and folds the deltas in via :meth:`merge_counters`, so both
        invariants hold across all backends.
        """
        with self._lock:
            if reused:
                self.scratch_reuses += 1
            else:
                self.scratch_allocations += 1

    def record_propagation_scratch(self, *, reused: bool) -> None:
        """Record one essential-propagation scratch checkout.

        The propagation twin of :meth:`record_scratch`: since the pools
        hand out :class:`repro.core.eve.QueryScratch` bundles, every
        executed query checks out exactly one set of propagation buffers
        alongside its distance buffers, and ``propagation_scratch_allocations``
        stays bounded by the peak number of concurrent workers — the "zero
        per-query propagation allocation" property the labelling kernel
        benchmark asserts.  Counted separately so the distance and
        propagation claims remain individually assertable (and would
        diverge if the pooling of the two ever split).  Worker-side
        checkouts arrive via :meth:`merge_counters` like the distance ones.
        """
        with self._lock:
            if reused:
                self.propagation_scratch_reuses += 1
            else:
                self.propagation_scratch_allocations += 1

    def record_verification_scratch(self, *, reused: bool) -> None:
        """Record one verification scratch checkout.

        The verification twin of :meth:`record_scratch` and
        :meth:`record_propagation_scratch`: the pooled
        :class:`repro.core.eve.QueryScratch` bundles carry the
        :class:`~repro.core.verification.VerificationScratch` too, so every
        executed query checks out exactly one set of verification buffers
        (with ``verify=True`` the verification phase runs for every
        computed query — small ``k`` early-exits inside the kernel), and
        ``verification_scratch_allocations + verification_scratch_reuses ==
        cache_misses`` with allocations bounded by the peak number of
        concurrent workers — the "zero per-query verification allocation"
        property the verification kernel benchmark asserts.  Worker-side
        checkouts arrive via :meth:`merge_counters` like the other pairs.
        """
        with self._lock:
            if reused:
                self.verification_scratch_reuses += 1
            else:
                self.verification_scratch_allocations += 1

    def record_admission(self, decision: str) -> None:
        """Record one HTTP front-end admission decision.

        ``decision`` is one of the :mod:`repro.service.http.admission`
        outcomes: ``"admitted"``, ``"shed"`` (bounded queue full → 429),
        ``"quota"`` (per-tenant token bucket empty → 429) or ``"draining"``
        (graceful shutdown in progress → 503).  Unknown decisions raise so
        a typo cannot silently drop a shed counter — under overload those
        counters are the observability.
        """
        with self._lock:
            if decision == "admitted":
                self.http_requests_admitted += 1
            elif decision == "shed":
                self.http_requests_shed += 1
            elif decision == "quota":
                self.http_quota_rejections += 1
            elif decision == "draining":
                self.http_drain_rejections += 1
            else:
                raise ValueError(
                    f"unknown admission decision {decision!r}; expected "
                    f"'admitted', 'shed', 'quota' or 'draining'"
                )

    def record_delta(
        self,
        *,
        inserted: int,
        deleted: int,
        invalidated: int,
        retained: int,
        compacted: bool,
        epoch: int,
    ) -> None:
        """Record one applied graph delta.

        ``inserted``/``deleted`` are the *effective* edge counts (no-op
        edges excluded), ``invalidated``/``retained`` the scoped cache
        outcome — together they make the scoped-invalidation claim
        auditable from ``/metrics``: under localized mutation,
        ``cache_entries_retained`` should dominate
        ``cache_entries_invalidated``.  ``epoch`` updates the graph-epoch
        gauge (monotonic while the engine lives).
        """
        with self._lock:
            self.deltas_applied += 1
            self.delta_edges_inserted += inserted
            self.delta_edges_deleted += deleted
            self.cache_entries_invalidated += invalidated
            self.cache_entries_retained += retained
            if compacted:
                self.delta_compactions += 1
            self.graph_epoch = epoch

    def set_queue_depth(self, depth: int) -> None:
        """Update the HTTP admission queue-depth gauge (and its peak)."""
        if depth < 0:
            raise ValueError(f"queue depth must be >= 0, got {depth}")
        with self._lock:
            self.http_queue_depth = depth
            if depth > self.http_queue_depth_peak:
                self.http_queue_depth_peak = depth

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        """Fold a worker-side counter delta into these stats.

        ``counters`` maps attribute names (a subset of the scratch and
        sharded-backward counters) to non-negative increments — the deltas
        a process-pool worker measured while executing one task group.
        Unknown keys raise: a typo silently dropping a counter would
        re-create exactly the blind spot this path exists to close.
        """
        for name, value in counters.items():
            if name not in _MERGEABLE_COUNTERS:
                raise ValueError(
                    f"cannot merge unknown counter {name!r}; "
                    f"expected one of {sorted(_MERGEABLE_COUNTERS)}"
                )
            if value < 0:
                raise ValueError(f"counter delta {name!r} must be >= 0, got {value}")
        with self._lock:
            for name, value in counters.items():
                setattr(self, name, getattr(self, name) + value)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache (0.0 with no traffic)."""
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def percentile_seconds(self, q: float) -> float:
        """Latency quantile over the recent window, in seconds."""
        with self._lock:
            return self._latencies.quantile(q)

    def phase_percentile_seconds(self, phase: str, q: float) -> float:
        """Per-phase latency quantile over the recent window, in seconds."""
        with self._lock:
            return self._phase_latencies[phase].quantile(q)

    def phase_recorded(self, phase: str) -> int:
        """Number of per-phase samples recorded for ``phase``."""
        with self._lock:
            return self._phase_latencies[phase].recorded

    def snapshot(self) -> Dict[str, object]:
        """Return a point-in-time dictionary view (JSON friendly)."""
        with self._lock:
            total = self.cache_hits + self.cache_misses
            snap: Dict[str, object] = {
                "queries_served": self.queries_served,
                "batches_served": self.batches_served,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": self.cache_hits / total if total else 0.0,
                "errors": self.errors,
                "shared_backward_reuses": self.shared_backward_reuses,
                "sharded_backward_passes": self.sharded_backward_passes,
                "scratch_allocations": self.scratch_allocations,
                "scratch_reuses": self.scratch_reuses,
                "propagation_scratch_allocations": self.propagation_scratch_allocations,
                "propagation_scratch_reuses": self.propagation_scratch_reuses,
                "verification_scratch_allocations": self.verification_scratch_allocations,
                "verification_scratch_reuses": self.verification_scratch_reuses,
                "http_requests_admitted": self.http_requests_admitted,
                "http_requests_shed": self.http_requests_shed,
                "http_quota_rejections": self.http_quota_rejections,
                "http_drain_rejections": self.http_drain_rejections,
                "http_queue_depth": self.http_queue_depth,
                "http_queue_depth_peak": self.http_queue_depth_peak,
                "deltas_applied": self.deltas_applied,
                "delta_edges_inserted": self.delta_edges_inserted,
                "delta_edges_deleted": self.delta_edges_deleted,
                "delta_compactions": self.delta_compactions,
                "cache_entries_invalidated": self.cache_entries_invalidated,
                "cache_entries_retained": self.cache_entries_retained,
                "graph_epoch": self.graph_epoch,
                "p50_ms": self._latencies.quantile(0.50) * 1000.0,
                "p95_ms": self._latencies.quantile(0.95) * 1000.0,
                "p99_ms": self._latencies.quantile(0.99) * 1000.0,
            }
            phases: Dict[str, Dict[str, float]] = {}
            for phase, window in self._phase_latencies.items():
                if window.recorded:
                    phases[phase] = {
                        "samples": window.recorded,
                        "total_seconds": window.sum_seconds,
                        "p50_ms": window.quantile(0.50) * 1000.0,
                        "p95_ms": window.quantile(0.95) * 1000.0,
                    }
            snap["phases"] = phases
            return snap

    def to_prometheus(self) -> str:
        """Render every metric as Prometheus text-format 0.0.4 exposition.

        Counters carry the conventional ``_total`` suffix; the overall and
        per-phase latency distributions are histograms (the per-phase one
        is a single family labelled ``phase="..."``).  The output parses
        under :func:`repro.telemetry.parse_exposition` — a test holds it to
        the grammar — and ends with a trailing newline as scrapers expect.
        """
        with self._lock:
            total = self.cache_hits + self.cache_misses
            hit_rate = self.cache_hits / total if total else 0.0
            lines: List[str] = []
            for name, help_text, value in (
                ("repro_queries_served_total", "Queries served.", self.queries_served),
                ("repro_batches_served_total", "Batches served.", self.batches_served),
                ("repro_cache_hits_total", "Queries answered from cache.", self.cache_hits),
                ("repro_cache_misses_total", "Queries computed by EVE.", self.cache_misses),
                ("repro_errors_total", "Queries that raised.", self.errors),
                (
                    "repro_shared_backward_reuses_total",
                    "Queries that reused a shared (t, k) backward pass.",
                    self.shared_backward_reuses,
                ),
                (
                    "repro_sharded_backward_passes_total",
                    "Backward passes computed partition-parallel.",
                    self.sharded_backward_passes,
                ),
                (
                    "repro_scratch_allocations_total",
                    "Distance scratch buffers allocated.",
                    self.scratch_allocations,
                ),
                (
                    "repro_scratch_reuses_total",
                    "Distance scratch buffers reused from the pool.",
                    self.scratch_reuses,
                ),
                (
                    "repro_propagation_scratch_allocations_total",
                    "Propagation scratch buffers allocated.",
                    self.propagation_scratch_allocations,
                ),
                (
                    "repro_propagation_scratch_reuses_total",
                    "Propagation scratch buffers reused from the pool.",
                    self.propagation_scratch_reuses,
                ),
                (
                    "repro_verification_scratch_allocations_total",
                    "Verification scratch buffers allocated.",
                    self.verification_scratch_allocations,
                ),
                (
                    "repro_verification_scratch_reuses_total",
                    "Verification scratch buffers reused from the pool.",
                    self.verification_scratch_reuses,
                ),
                (
                    "repro_http_requests_admitted_total",
                    "HTTP requests admitted past the bounded queue.",
                    self.http_requests_admitted,
                ),
                (
                    "repro_http_requests_shed_total",
                    "HTTP requests shed with 429 (bounded queue full).",
                    self.http_requests_shed,
                ),
                (
                    "repro_http_quota_rejections_total",
                    "HTTP requests rejected by a per-tenant quota (429).",
                    self.http_quota_rejections,
                ),
                (
                    "repro_http_drain_rejections_total",
                    "HTTP requests rejected during graceful drain (503).",
                    self.http_drain_rejections,
                ),
                (
                    "repro_deltas_applied_total",
                    "Graph deltas applied via apply_delta.",
                    self.deltas_applied,
                ),
                (
                    "repro_delta_edges_inserted_total",
                    "Edges effectively inserted by applied deltas.",
                    self.delta_edges_inserted,
                ),
                (
                    "repro_delta_edges_deleted_total",
                    "Edges effectively deleted by applied deltas.",
                    self.delta_edges_deleted,
                ),
                (
                    "repro_delta_compactions_total",
                    "Delta overlays folded into a fresh base graph.",
                    self.delta_compactions,
                ),
                (
                    "repro_cache_entries_invalidated_total",
                    "Result-cache entries killed by scoped invalidation.",
                    self.cache_entries_invalidated,
                ),
                (
                    "repro_cache_entries_retained_total",
                    "Result-cache entries retained across graph deltas.",
                    self.cache_entries_retained,
                ),
            ):
                lines.extend(render_counter(name, help_text, value))
            lines.extend(
                render_gauge(
                    "repro_cache_hit_ratio",
                    "Fraction of queries answered from cache.",
                    hit_rate,
                )
            )
            lines.extend(
                render_gauge(
                    "repro_http_queue_depth",
                    "Admitted HTTP queries currently in flight.",
                    self.http_queue_depth,
                )
            )
            lines.extend(
                render_gauge(
                    "repro_http_queue_depth_peak",
                    "Peak in-flight HTTP queries since start.",
                    self.http_queue_depth_peak,
                )
            )
            lines.extend(
                render_gauge(
                    "repro_graph_epoch",
                    "Current graph epoch (bumped by every applied delta).",
                    self.graph_epoch,
                )
            )
            bounds, cumulative, sum_seconds, count = self._latencies.histogram()
            lines.extend(
                render_histogram(
                    "repro_query_latency_seconds",
                    "End-to-end per-query latency.",
                    [(None, bounds, cumulative, sum_seconds, count)],
                )
            )
            phase_series = []
            for phase in PHASE_NAMES:
                bounds, cumulative, sum_seconds, count = self._phase_latencies[
                    phase
                ].histogram()
                phase_series.append(
                    ({"phase": phase}, bounds, cumulative, sum_seconds, count)
                )
            lines.extend(
                render_histogram(
                    "repro_phase_latency_seconds",
                    "Per-EVE-phase latency of computed queries.",
                    phase_series,
                )
            )
            return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every counter and drop the latency windows."""
        with self._lock:
            self._latencies.reset()
            for window in self._phase_latencies.values():
                window.reset()
            self.queries_served = 0
            self.batches_served = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.errors = 0
            self.shared_backward_reuses = 0
            self.sharded_backward_passes = 0
            self.scratch_allocations = 0
            self.scratch_reuses = 0
            self.propagation_scratch_allocations = 0
            self.propagation_scratch_reuses = 0
            self.verification_scratch_allocations = 0
            self.verification_scratch_reuses = 0
            self.http_requests_admitted = 0
            self.http_requests_shed = 0
            self.http_quota_rejections = 0
            self.http_drain_rejections = 0
            self.http_queue_depth = 0
            self.http_queue_depth_peak = 0
            self.deltas_applied = 0
            self.delta_edges_inserted = 0
            self.delta_edges_deleted = 0
            self.delta_compactions = 0
            self.cache_entries_invalidated = 0
            self.cache_entries_retained = 0
            self.graph_epoch = 0

    def __repr__(self) -> str:
        return (
            f"EngineStats(queries={self.queries_served}, "
            f"hits={self.cache_hits}, misses={self.cache_misses}, "
            f"errors={self.errors})"
        )
