"""Pluggable task execution backends with deterministic ordering and isolation.

The serving layer runs batches as lists of independent *tasks*.  Every
backend honours the same two guarantees, which is what makes them
interchangeable (and differential-testable, see
``tests/test_executor_backends.py``):

* **deterministic ordering** — results come back *in task order*, no matter
  how the pool schedules them;
* **error isolation** — a task that raises is captured as a
  :class:`TaskError` entry instead of poisoning the whole batch.

Four backends are provided, selected by name (:data:`EXECUTOR_BACKENDS`):

``serial``
    Everything runs inline on the calling thread.  Zero overhead, the
    reference semantics every other backend must match.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap
    task dispatch, shared memory — but CPU-bound pure-Python tasks stay
    GIL-bound on one core.
``process``
    A persistent :class:`~concurrent.futures.ProcessPoolExecutor`: true
    multi-core parallelism for CPU-bound tasks.  Tasks must be *picklable*
    (use :class:`Call` with a module-level function; closures and bound
    methods will not cross the process boundary).  Per-worker state (the
    graph, reusable scratch buffers) is installed once via the pool
    ``initializer`` — a one-time pickle per worker under the default
    ``forkserver`` start method (chosen because forking from a
    multi-threaded parent risks deadlock), a copy-on-write share under an
    explicit ``fork`` override.
``async``
    An :mod:`asyncio`-friendly backend: :meth:`ExecutorBackend.run_async`
    offloads tasks to an internal thread pool and awaits them, keeping the
    event loop responsive while batches execute.

:func:`run_tasks` keeps the original thread-pool convenience API (and is
now a thin wrapper over a transient backend); :func:`run_tasks_async` is
its awaitable twin.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TaskError",
    "Call",
    "EXECUTOR_BACKENDS",
    "BACKEND_ENV_VAR",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "AsyncBackend",
    "create_backend",
    "resolve_backend_name",
    "default_worker_count",
    "run_tasks",
    "run_tasks_async",
]

#: Recognised backend names, in "least to most machinery" order.
EXECUTOR_BACKENDS = ("serial", "thread", "process", "async")

#: Environment variable consulted by :func:`resolve_backend_name` when no
#: backend is named (engine construction, ``EngineConfig``, the CLI); lets
#: CI exercise the whole service test suite on e.g. the process backend.
#: The bare :func:`run_tasks`/:func:`run_tasks_async` helpers deliberately
#: ignore it: their legacy callers pass closures, which would break under
#: an environment-forced process backend.
BACKEND_ENV_VAR = "REPRO_EXECUTOR_BACKEND"


@dataclass(frozen=True)
class TaskError:
    """A captured exception from one task."""

    error: BaseException

    @property
    def message(self) -> str:
        return f"{type(self.error).__name__}: {self.error}"


@dataclass(frozen=True)
class Call:
    """A picklable task payload: ``fn(*args)``.

    The process backend cannot ship closures or bound methods to workers;
    a :class:`Call` of a module-level function with picklable arguments is
    the portable task form that every backend accepts.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()

    def __call__(self) -> Any:
        return self.fn(*self.args)


Task = Union[Callable[[], Any], Call]


def default_worker_count() -> int:
    """Default pool size: *available* CPUs (affinity-aware), capped at 32.

    Containers and batch schedulers routinely pin a process to a subset of
    the machine's cores; sizing pools by raw ``os.cpu_count()`` then
    oversubscribes the pinned set.  Where the platform exposes it,
    ``os.sched_getaffinity(0)`` counts the CPUs this process may actually
    run on.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    cpus: Optional[int] = None
    if affinity is not None:
        try:
            cpus = len(affinity(0))
        except OSError:  # pragma: no cover - platform quirk fallback
            cpus = None
    if not cpus:
        cpus = os.cpu_count() or 1
    return max(1, min(32, cpus))


def resolve_backend_name(name: Optional[str]) -> str:
    """Resolve a backend name, falling back to ``$REPRO_EXECUTOR_BACKEND``.

    ``None`` (the "unspecified" default throughout the serving layer) reads
    the environment variable and finally defaults to ``"thread"``.  Unknown
    names raise :class:`ValueError` naming the valid choices.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "thread"
    name = name.lower()
    if name not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"unknown executor backend {name!r}; expected one of {EXECUTOR_BACKENDS}"
        )
    return name


def _invoke(task: Task) -> Any:
    """Run one task, capturing any exception as a :class:`TaskError`."""
    try:
        return task()
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return TaskError(exc)


def _submit_ordered(
    pool,
    fn: Callable[[Task], Any],
    tasks: Sequence[Task],
    wrap: Optional[Callable[[Any], Any]] = None,
    on_failure: Optional[Callable[[BaseException], None]] = None,
) -> List[Any]:
    """Submit every task, degrading submit-time failures per task.

    ``submit`` raising ``RuntimeError`` (pool shut down concurrently, or —
    its :class:`BrokenExecutor` subclass — a dead worker) becomes a
    pre-resolved :class:`TaskError` placeholder in the returned list, so
    batches keep their ordering and isolation guarantees instead of
    escaping with an exception.  ``wrap`` optionally transforms each live
    future (e.g. :func:`asyncio.wrap_future`); ``on_failure`` observes the
    raw submit exception (e.g. to mark a process pool broken).
    """
    entries: List[Any] = []
    for task in tasks:
        try:
            future = pool.submit(fn, task)
        except RuntimeError as exc:
            if on_failure is not None:
                on_failure(exc)
            entries.append(TaskError(exc))
        else:
            entries.append(wrap(future) if wrap is not None else future)
    return entries


def _run_on_pool(pool: ThreadPoolExecutor, tasks: Sequence[Task]) -> List[Any]:
    """Submit every task to ``pool`` and collect results in task order."""
    # _invoke never raises, so result() only propagates pool-level failures.
    return [
        entry if isinstance(entry, TaskError) else entry.result()
        for entry in _submit_ordered(pool, _invoke, tasks)
    ]


async def _gather_ordered(futures: Sequence[Any], on_exception=None) -> List[Any]:
    """Await wrapped futures interleaved with :class:`TaskError` placeholders.

    ``futures`` holds :func:`asyncio.wrap_future` awaitables and/or
    pre-resolved :class:`TaskError` entries (submit-time failures); results
    come back in the same order.  A future that fails at the pool level
    becomes a :class:`TaskError` too — ``on_exception`` (if given) sees the
    raw exception first, e.g. to mark a process pool broken.  Awaiting each
    future with try/except (rather than ``gather(return_exceptions=True)``)
    keeps a task that *returns* an exception instance distinguishable from
    a pool-level failure, matching the sync paths exactly; collection order
    does not serialise execution — the pool already runs everything
    concurrently.
    """
    results: List[Any] = []
    for entry in futures:
        if isinstance(entry, TaskError):
            results.append(entry)
            continue
        try:
            results.append(await entry)
        except Exception as exc:  # noqa: BLE001 - pool-level failure
            if on_exception is not None:
                on_exception(exc)
            results.append(TaskError(exc))
    return results


class ExecutorBackend:
    """Common interface of every execution backend.

    Subclasses implement :meth:`run` (and may override :meth:`run_async`);
    both return one entry per task, in task order, with per-task exceptions
    captured as :class:`TaskError`.  Backends that own pools keep them warm
    across calls; :meth:`close` releases them (idempotent, also invoked by
    the context-manager protocol).
    """

    name: str = "base"
    #: True when tasks must survive pickling (process boundary).
    requires_picklable_tasks: bool = False

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        raise NotImplementedError

    async def run_async(self, tasks: Sequence[Task]) -> List[Any]:
        """Awaitable :meth:`run`; offloads to a thread so the loop stays free."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.run, list(tasks))

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    async def aclose(self) -> None:
        """Awaitable :meth:`close`: the (possibly blocking) pool shutdown is
        offloaded to a thread so an event loop tearing down a transient
        backend stays responsive."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutorBackend):
    """Inline execution on the calling thread — the reference semantics."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        return [_invoke(task) for task in tasks]


class ThreadBackend(ExecutorBackend):
    """A persistent thread pool (today's default backend).

    With ``max_workers <= 1`` (or a single task) everything runs inline on
    the calling thread — same semantics, no pool overhead.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._workers = default_worker_count() if max_workers is None else max(1, max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        # First use may race: two batches on a fresh backend must not each
        # build (and then leak) a pool.
        self._pool_guard = threading.Lock()

    @property
    def max_workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self._workers)
            return self._pool

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        if self._workers <= 1 or len(tasks) <= 1:
            return [_invoke(task) for task in tasks]
        return _run_on_pool(self._ensure_pool(), tasks)

    async def run_async(self, tasks: Sequence[Task]) -> List[Any]:
        if not tasks:
            return []
        return await _gather_ordered(
            _submit_ordered(
                self._ensure_pool(), _invoke, tasks, wrap=asyncio.wrap_future
            )
        )

    def close(self) -> None:
        with self._pool_guard:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_workers={self._workers}, "
            f"warm={self._pool is not None})"
        )


def _noop() -> None:
    return None


class ProcessBackend(ExecutorBackend):
    """A persistent process pool: true parallelism for CPU-bound tasks.

    Parameters
    ----------
    max_workers:
        Pool size (affinity-aware default).
    initializer / initargs:
        Installed per worker at spawn time — the one-time cost that replaces
        per-task shipping of heavyweight shared state (for SPG serving: the
        graph, whose flat CSR arrays pickle compactly, plus a per-worker
        ``DistanceScratch``).  With an explicit ``fork`` start method the
        state is shared copy-on-write instead of pickled.
    start_method:
        Optional :mod:`multiprocessing` start method override (``"fork"`` /
        ``"spawn"`` / ``"forkserver"``).  ``None`` prefers ``forkserver``
        (workers fork from a clean single-threaded server, immune to locks
        held by the parent's threads) and otherwise uses the platform
        default.

    A pool whose worker died mid-task is marked :attr:`broken`; the engine
    reacts by closing and lazily rebuilding the backend.
    """

    name = "process"
    requires_picklable_tasks = True

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        start_method: Optional[str] = None,
    ) -> None:
        self._workers = default_worker_count() if max_workers is None else max(1, max_workers)
        self._initializer = initializer
        self._initargs = initargs
        self._start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_guard = threading.Lock()
        self._broken = False
        self._warmed = False

    @property
    def max_workers(self) -> int:
        return self._workers

    @property
    def broken(self) -> bool:
        """True once the pool has failed; callers should close and rebuild."""
        return self._broken

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                import multiprocessing

                method = self._start_method
                if method is None:
                    # fork from a multi-threaded parent (thread/async pools,
                    # asyncio's default executor, overlapping batches) can
                    # deadlock the child on an inherited lock.  forkserver
                    # forks workers from a clean single-threaded server and
                    # keeps one-time per-worker initialisation; fall back to
                    # the platform default where it is unavailable.
                    if "forkserver" in multiprocessing.get_all_start_methods():
                        method = "forkserver"
                context = (
                    multiprocessing.get_context(method)
                    if method is not None
                    else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=context,
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
                self._broken = False
                self._warmed = False
            return self._pool

    def warm(self) -> None:
        """Spawn the worker pool now instead of at the first real submit.

        Worker start-up (forkserver round trip plus per-worker initargs
        pickling — the graph) otherwise happens inside ``submit`` on the
        caller's thread; the engine's async paths call this from a helper
        thread so a cold pool never stalls the event loop.  O(1) once warm;
        best effort — a failing pool surfaces on the real batch, with the
        usual degradation.
        """
        try:
            pool = self._ensure_pool()
            if self._warmed:
                return
            futures = [
                pool.submit(_invoke, Call(_noop)) for _ in range(self._workers)
            ]
            for future in futures:
                future.result()
            self._warmed = True
        except Exception:  # noqa: BLE001 - diagnosis belongs to the real batch
            pass

    def _mark_broken(self, exc: BaseException) -> None:
        # Any submit-time failure means the pool can no longer be trusted;
        # the broken flag tells the owning engine to rebuild before the
        # next batch.
        self._broken = True

    def _collect(self, future) -> Any:
        try:
            return future.result()
        except BrokenExecutor as exc:
            self._broken = True
            return TaskError(exc)
        except Exception as exc:  # noqa: BLE001 - e.g. unpicklable task/result
            return TaskError(exc)

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        if not tasks:
            return []
        entries = _submit_ordered(
            self._ensure_pool(), _invoke, tasks, on_failure=self._mark_broken
        )
        return [
            entry if isinstance(entry, TaskError) else self._collect(entry)
            for entry in entries
        ]

    def _note_failure(self, exc: BaseException) -> None:
        if isinstance(exc, BrokenExecutor):
            self._broken = True

    async def run_async(self, tasks: Sequence[Task]) -> List[Any]:
        if not tasks:
            return []
        futures = _submit_ordered(
            self._ensure_pool(),
            _invoke,
            tasks,
            wrap=asyncio.wrap_future,
            on_failure=self._mark_broken,
        )
        return await _gather_ordered(futures, self._note_failure)

    def close(self) -> None:
        with self._pool_guard:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:
        return (
            f"ProcessBackend(max_workers={self._workers}, "
            f"warm={self._pool is not None}, broken={self._broken})"
        )


class AsyncBackend(ThreadBackend):
    """An asyncio-first backend: tasks run on an internal thread pool.

    Pool lifecycle and :meth:`run_async` are inherited from
    :class:`ThreadBackend`; only the synchronous :meth:`run` differs — it
    dispatches straight to the thread pool (never inline), so plain code
    paths such as ``SPGEngine.run_batch`` stay usable whether or not an
    event loop is running on the calling thread.
    """

    name = "async"

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        # Synchronous callers go straight to the thread pool: identical
        # ordered results without spinning up an event loop per batch, and
        # safe whether or not a loop is already running on this thread
        # (blocking the running loop on itself would deadlock).
        if not tasks:
            return []
        return _run_on_pool(self._ensure_pool(), tasks)


def create_backend(
    name: Optional[str] = None,
    max_workers: Optional[int] = None,
    *,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    start_method: Optional[str] = None,
) -> ExecutorBackend:
    """Build an :class:`ExecutorBackend` by name.

    ``name=None`` resolves through :func:`resolve_backend_name` (environment
    override, then ``"thread"``).  ``initializer``/``initargs``/
    ``start_method`` only apply to the process backend and are ignored —
    the state is already shared in-process — everywhere else.
    """
    resolved = resolve_backend_name(name)
    if resolved == "serial":
        return SerialBackend()
    if resolved == "thread":
        return ThreadBackend(max_workers)
    if resolved == "process":
        return ProcessBackend(
            max_workers,
            initializer=initializer,
            initargs=initargs,
            start_method=start_method,
        )
    return AsyncBackend(max_workers)


def run_tasks(
    tasks: Sequence[Task],
    max_workers: Optional[int] = None,
    backend: Union[None, str, ExecutorBackend] = None,
) -> List[Any]:
    """Run ``tasks`` and return one entry per task, in task order.

    Each entry is the task's return value, or a :class:`TaskError` wrapping
    the exception it raised.  ``backend`` may be a backend *name* (a
    transient backend is created and closed around the call) or an existing
    :class:`ExecutorBackend` (reused, left open — it runs at its *own*
    width, so ``max_workers`` is ignored).  The default is the
    original thread-pool behaviour: ``max_workers=None`` uses
    :func:`default_worker_count` and the pool never exceeds the task count.
    Unlike the engine-level resolution, ``backend=None`` here means
    ``"thread"`` unconditionally — :data:`BACKEND_ENV_VAR` is *not*
    consulted, so closure-based callers keep working whatever the
    environment forces on the serving layer.
    """
    if isinstance(backend, ExecutorBackend):
        return backend.run(tasks)
    name = "thread" if backend is None else resolve_backend_name(backend)
    workers = default_worker_count() if max_workers is None else max_workers
    with create_backend(name, min(workers, max(1, len(tasks)))) as transient:
        return transient.run(tasks)


async def run_tasks_async(
    tasks: Sequence[Task],
    max_workers: Optional[int] = None,
    backend: Union[None, str, ExecutorBackend] = None,
) -> List[Any]:
    """Awaitable :func:`run_tasks`: same ordering and isolation guarantees.

    Tasks are offloaded to the chosen backend's pool and awaited, so a
    running event loop stays responsive while the batch executes.
    """
    if isinstance(backend, ExecutorBackend):
        return await backend.run_async(list(tasks))
    name = "thread" if backend is None else resolve_backend_name(backend)
    workers = default_worker_count() if max_workers is None else max_workers
    transient = create_backend(name, min(workers, max(1, len(tasks))))
    try:
        return await transient.run_async(list(tasks))
    finally:
        await transient.aclose()
