"""Concurrent task execution with deterministic ordering and error isolation.

:func:`run_tasks` runs a list of zero-argument callables and returns their
results *in task order*, no matter how the pool schedules them.  A task
that raises is captured as a :class:`TaskError` entry instead of poisoning
the whole batch, which is what gives the engine per-query error isolation.
With ``max_workers <= 1`` (or a single task) everything runs inline on the
calling thread — same semantics, no pool overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["TaskError", "default_worker_count", "run_tasks"]


@dataclass(frozen=True)
class TaskError:
    """A captured exception from one task."""

    error: BaseException

    @property
    def message(self) -> str:
        return f"{type(self.error).__name__}: {self.error}"


def default_worker_count() -> int:
    """Default thread-pool size: CPU count capped at 32, at least 1."""
    return max(1, min(32, os.cpu_count() or 1))


def run_tasks(
    tasks: Sequence[Callable[[], Any]],
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Run ``tasks`` and return one entry per task, in task order.

    Each entry is the task's return value, or a :class:`TaskError` wrapping
    the exception it raised.  ``max_workers=None`` uses
    :func:`default_worker_count`; the pool never exceeds the task count.
    """
    workers = default_worker_count() if max_workers is None else max_workers
    results: List[Any] = [None] * len(tasks)

    def guarded(index: int) -> None:
        try:
            results[index] = tasks[index]()
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            results[index] = TaskError(exc)

    if workers <= 1 or len(tasks) <= 1:
        for index in range(len(tasks)):
            guarded(index)
        return results
    with ThreadPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        # Consume the iterator so every task finishes before the pool exits;
        # guarded() never raises, so this cannot abort early.
        list(pool.map(guarded, range(len(tasks))))
    return results
