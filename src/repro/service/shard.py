"""Partition-parallel serving: the sharded SPG engine.

:class:`ShardedSPGEngine` serves the same queries as
:class:`~repro.service.engine.SPGEngine` — answer-identically, on every
executor backend, with the same :class:`~repro.service.engine.BatchReport`
contract — but treats the graph as a :class:`~repro.graph.partition.ShardSet`
of vertex-range CSR slices:

* every planner ``(t, k)`` group is **routed to the shard owning** ``t``
  (pure range arithmetic, see :func:`repro.graph.partition.owner_of`);
* shared backward distance passes run **shard-locally with halo frontier
  exchange** (:meth:`~repro.graph.partition.ShardSet.backward_distance_map`)
  instead of a whole-graph reverse BFS — each BFS level only touches the
  reverse-CSR slices of the shards owning frontier vertices;
* result caches and process-pool staleness checks key on the **shard-set
  fingerprint** (parent graph fingerprint + shard count), so a graph swap
  or a different shard layout can never serve stale entries or reach a
  desynchronised worker;
* process-pool workers install the shard set once at initialisation — from
  the shared-memory CSR segment when enabled (the shard slices then alias
  the shared block zero-copy), from the pickled graph otherwise.

Identity to the whole-graph engine is not an aspiration but a tested
contract: ``tests/test_sharding.py`` holds every shard count x backend
combination to byte-identical canonical reports.

Shard-count selection mirrors the executor-backend convention: explicit
argument first, then the ``REPRO_SHARD_COUNT`` environment variable, and
``SPGEngine.from_config`` / the ``--shards`` CLI flag route through
:func:`resolve_shard_count`.
"""

from __future__ import annotations

import os
from threading import Lock
from typing import Dict, List, Optional, Tuple

from repro.core.eve import EVEConfig
from repro.graph.digraph import DiGraph
from repro.graph.partition import (
    ShardSet,
    owner_of,
    partition_graph,
    shard_set_fingerprint,
)
from repro.graph.shm import SharedGraphDescriptor
from repro.service.engine import (
    GroupExecution,
    SPGEngine,
    _execute_group,
    _init_process_worker,
    _attach_worker_graph,
    _scratch_counter_delta,
)
from repro.service import engine as _engine_module
from repro.service.executor import Call, ExecutorBackend
from repro.service.planner import QueryGroup
from repro.telemetry import Tracer

__all__ = [
    "ShardedSPGEngine",
    "SHARD_ENV_VAR",
    "resolve_shard_count",
]

#: Environment variable consulted when no shard count is named (engine
#: construction via ``from_config``, the CLI ``--shards`` default); lets CI
#: serve whole test workloads partition-parallel, mirroring
#: :data:`repro.service.executor.BACKEND_ENV_VAR`.
SHARD_ENV_VAR = "REPRO_SHARD_COUNT"


def resolve_shard_count(value: Optional[object]) -> int:
    """Resolve a shard count, falling back to ``$REPRO_SHARD_COUNT``.

    ``None`` reads the environment variable; an unset/empty variable means
    0.  The result is a non-negative integer where ``0`` selects the plain
    (unsharded) engine; anything else raises :class:`ValueError`.
    """
    if value is None:
        raw = os.environ.get(SHARD_ENV_VAR)
        if not raw:
            return 0
        value = raw
    try:
        count = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"shard count must be a non-negative integer, got {value!r}"
        ) from None
    if count < 0:
        raise ValueError(f"shard count must be non-negative, got {count}")
    return count


# ----------------------------------------------------------------------
# Process-backend worker state (one shard set per worker process)
# ----------------------------------------------------------------------
_worker_shard_set: Optional[ShardSet] = None


def _init_sharded_worker(graph: DiGraph, num_shards: int, config: EVEConfig) -> None:
    """Pool initializer: install the graph *and its partition* in this worker."""
    _init_process_worker(graph, config)
    global _worker_shard_set
    _worker_shard_set = partition_graph(graph, num_shards)


def _init_sharded_shared_worker(
    descriptor: SharedGraphDescriptor, num_shards: int, config: EVEConfig
) -> None:
    """Shared-memory twin of :func:`_init_sharded_worker`.

    The worker attaches to the parent's CSR segment zero-copy and cuts its
    shard slices *into the shared block* — per-worker memory for the edge
    arrays stays O(1) regardless of graph size or shard count.
    """
    _init_sharded_worker(_attach_worker_graph(descriptor), num_shards, config)


def _sharded_process_run_group(
    shard_fingerprint: str, shard_id: int, group: QueryGroup, trace: bool = False
) -> GroupExecution:
    """Worker-side group runner for the sharded engine's process backend.

    ``shard_fingerprint`` is the parent engine's shard-set fingerprint; a
    mismatch means this worker was initialised against a different graph or
    shard layout and must fail loudly.  ``shard_id`` is the routing
    decision (owner of the group's target) made in the parent — verified
    here so a routing/partitioning disagreement surfaces as an error
    instead of silently seeding the BFS elsewhere.  Returns a
    :class:`~repro.service.engine.GroupExecution` whose counter delta
    covers the scratch checkouts *and* the halo-exchange backward passes
    this task computed, so sharded pool work shows up in the parent's
    stats like in-process work does.
    """
    shard_set = _worker_shard_set
    if shard_set is None or _engine_module._worker_graph is None:
        raise RuntimeError("sharded process worker used before initialisation")
    if shard_fingerprint != shard_set.fingerprint:
        raise RuntimeError(
            f"sharded worker fingerprint {shard_set.fingerprint} does not "
            f"match batch shard-set fingerprint {shard_fingerprint}"
        )
    if 0 <= group.target < shard_set.num_vertices and (
        shard_set.owner(group.target) != shard_id
    ):
        raise RuntimeError(
            f"group for target {group.target} routed to shard {shard_id}, "
            f"but the worker partition owns it on shard "
            f"{shard_set.owner(group.target)}"
        )
    backward_passes = 0

    def counted_backward(target, k):
        nonlocal backward_passes
        shared = shard_set.backward_distance_map(target, k)
        backward_passes += 1
        return shared

    pool = _engine_module._worker_scratch
    allocations_before, reuses_before = pool.allocations, pool.reuses
    tracer = Tracer() if trace else None
    entries = _execute_group(
        _engine_module._worker_graph,
        _engine_module._worker_config,
        group,
        pool.borrow,
        shared_backward_for=counted_backward,
        tracer=tracer,
    )
    counters = _scratch_counter_delta(pool, allocations_before, reuses_before)
    if backward_passes:
        counters["sharded_backward_passes"] = backward_passes
    return GroupExecution(
        entries=entries,
        counters=counters,
        events=tracer.drain() if tracer is not None else [],
    )


class ShardedSPGEngine(SPGEngine):
    """An :class:`SPGEngine` that serves through a vertex-range partition.

    Parameters are those of :class:`SPGEngine` plus:

    num_shards:
        Number of vertex-range shards.  ``None`` defers to
        ``$REPRO_SHARD_COUNT`` and finally to 1 (a single-shard engine
        exercises the full sharded machinery on one slice).

    Everything a caller can observe — answers, report accounting, ordering,
    error isolation, async/stream behaviour, backend equivalence — matches
    the whole-graph engine; what changes is *how* shared backward passes
    are computed (halo exchange across shard slices), how process workers
    hold the graph (a shard set over the shared segment), and what the
    caches key on (the shard-set fingerprint).
    """

    def __init__(
        self,
        graph: DiGraph,
        config: Optional[EVEConfig] = None,
        *,
        num_shards: Optional[int] = None,
        **kwargs: object,
    ) -> None:
        if num_shards is None:
            count = resolve_shard_count(None) or 1
        else:
            count = int(num_shards)
            if count < 1:
                raise ValueError(
                    f"ShardedSPGEngine needs num_shards >= 1, got {count}"
                )
        self._num_shards = count
        self._shard_set: Optional[ShardSet] = None
        self._route_lock = Lock()
        self._routed_groups: Dict[int, int] = {}
        super().__init__(graph, config, **kwargs)
        self._shard_set = partition_graph(graph, count)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def shard_set(self) -> ShardSet:
        return self._shard_set

    def stats_snapshot(self) -> Dict[str, object]:
        snapshot = super().stats_snapshot()
        snapshot["num_shards"] = self._num_shards
        snapshot["shard_set_fingerprint"] = self._batch_fingerprint(self._graph)
        with self._route_lock:
            snapshot["shard_routed_groups"] = dict(self._routed_groups)
        return snapshot

    # ------------------------------------------------------------------
    # Serving identity: the shard-set fingerprint
    # ------------------------------------------------------------------
    def _batch_fingerprint(self, graph: DiGraph) -> str:
        # Derivable without partitioning, so a mid-swap reader never pays
        # (or races) a partition build just to key the cache.
        return shard_set_fingerprint(graph.fingerprint(), self._num_shards)

    # ------------------------------------------------------------------
    # Graph lifecycle
    # ------------------------------------------------------------------
    def set_graph(self, graph: DiGraph, *, clear_cache: bool = False) -> None:
        """Swap the served graph and re-partition it.

        A batch racing the swap stays correct either way: group execution
        only trusts the shard set when its parent fingerprint matches the
        batch's graph, and falls back to the (answer-identical) whole-graph
        backward pass otherwise.
        """
        shard_set = partition_graph(graph, self._num_shards)
        super().set_graph(graph, clear_cache=clear_cache)
        self._shard_set = shard_set

    # ------------------------------------------------------------------
    # Group execution
    # ------------------------------------------------------------------
    def _shared_backward_provider(self, graph: DiGraph):
        """The halo-exchange backward-pass provider for ``graph``.

        Returns ``None`` (whole-graph fallback) when the current shard set
        does not belong to ``graph`` — only possible mid-swap.
        """
        shard_set = self._shard_set
        if shard_set is None or shard_set.parent_fingerprint != graph.fingerprint():
            return None
        stats = self._stats

        def provider(target, k):
            shared = shard_set.backward_distance_map(target, k)
            stats.record_sharded_backward()
            return shared

        return provider

    def _run_group(self, graph: DiGraph, group: QueryGroup) -> object:
        return _execute_group(
            graph,
            self._config,
            group,
            self._scratch.borrow,
            shared_backward_for=self._shared_backward_provider(graph),
            tracer=self._tracer,
        )

    def _record_routes(self, routes: List[int]) -> None:
        with self._route_lock:
            counts = self._routed_groups
            for shard_id in routes:
                counts[shard_id] = counts.get(shard_id, 0) + 1

    def _group_tasks(self, prepared, backend: ExecutorBackend) -> List[Call]:
        """Route each planned group to the shard owning its target."""
        num_vertices = prepared.graph.num_vertices
        num_shards = self._num_shards
        routes = [
            owner_of(num_vertices, num_shards, group.target)
            if 0 <= group.target < num_vertices
            # Groups with an out-of-range target fail per query anyway;
            # route them to shard 0 so the payload stays well-formed.
            else 0
            for group in prepared.plan.groups
        ]
        self._record_routes(routes)
        if backend.requires_picklable_tasks:
            trace = self._tracer is not None
            return [
                Call(
                    _sharded_process_run_group,
                    (prepared.fingerprint, shard_id, group, trace),
                )
                for shard_id, group in zip(routes, prepared.plan.groups)
            ]
        graph = prepared.graph
        return [
            Call(self._run_group, (graph, group)) for group in prepared.plan.groups
        ]

    # ------------------------------------------------------------------
    # Process-backend worker installation
    # ------------------------------------------------------------------
    def _worker_init(self, graph: DiGraph) -> Tuple[object, Tuple[object, ...]]:
        return _init_sharded_worker, (graph, self._num_shards, self._config)

    def _shared_worker_init(
        self, descriptor: SharedGraphDescriptor
    ) -> Tuple[object, Tuple[object, ...]]:
        return _init_sharded_shared_worker, (
            descriptor,
            self._num_shards,
            self._config,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedSPGEngine(graph={self._graph.name!r}, "
            f"vertices={self._graph.num_vertices}, edges={self._graph.num_edges}, "
            f"shards={self._num_shards}, backend={self._backend_name!r}, "
            f"cache={'off' if self._cache is None else len(self._cache)})"
        )
