"""Shared-work planning for batches of ``<s, t, k>`` queries.

EVE's backward distance pass depends only on ``(t, k)``, never on the
source (see :func:`repro.core.distances.backward_distance_map`).  The
planner therefore buckets a batch by ``(t, k)``: every group of two or more
queries computes that pass once and shares it, turning ``n`` backward
searches into one.  Since the CSR refactor the shared pass runs on the
graph's cached flat-array adjacency and returns an owned
:class:`~repro.core.distances.ArrayDistanceMap` — safe to share across the
group's queries and threads, while each member's forward search runs on
pooled scratch buffers.  Groups and the queries inside them keep the order
of first appearance in the batch, so planning is deterministic and results
can be slotted back by index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro._types import Vertex
from repro.exceptions import QueryError

__all__ = ["PlannedQuery", "QueryGroup", "BatchPlan", "plan_batch"]


@dataclass(frozen=True)
class PlannedQuery:
    """One query plus its position in the batch it was planned from."""

    index: int
    source: Vertex
    target: Vertex
    k: int


@dataclass
class QueryGroup:
    """Queries sharing one ``(target, k)`` pair.

    ``shared`` marks groups large enough that precomputing the backward
    pass pays for itself; singleton groups run the normal per-query
    strategy (a full backward BFS could cost *more* than the adaptive
    bi-directional search for a single query).
    """

    target: Vertex
    k: int
    shared: bool
    queries: List[PlannedQuery] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.queries)


@dataclass
class BatchPlan:
    """The grouped execution plan for one batch."""

    groups: List[QueryGroup] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return sum(group.size for group in self.groups)

    @property
    def num_shared_groups(self) -> int:
        return sum(1 for group in self.groups if group.shared)

    @property
    def reused_backward_passes(self) -> int:
        """Backward passes saved versus running every query cold."""
        return sum(group.size - 1 for group in self.groups if group.shared)


def plan_batch(
    queries: Sequence[Tuple[Vertex, Vertex, int]],
    min_group_size: int = 2,
) -> BatchPlan:
    """Group ``(source, target, k)`` tuples by shared ``(target, k)``.

    ``min_group_size`` controls when a group is worth a shared backward
    pass; it must be at least 2 (a singleton can never reuse anything).
    """
    if min_group_size < 2:
        raise QueryError(f"min_group_size must be >= 2, got {min_group_size}")
    buckets: Dict[Tuple[Vertex, int], List[PlannedQuery]] = {}
    for index, (source, target, k) in enumerate(queries):
        buckets.setdefault((target, k), []).append(
            PlannedQuery(index=index, source=source, target=target, k=k)
        )
    plan = BatchPlan()
    for (target, k), planned in buckets.items():
        plan.groups.append(
            QueryGroup(
                target=target,
                k=k,
                shared=len(planned) >= min_group_size,
                queries=planned,
            )
        )
    return plan
