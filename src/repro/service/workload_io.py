"""JSON-lines workload parsing and result serialisation for the service CLI.

Input format (one query per line, blank lines and ``#`` comments skipped):

* a JSON object: ``{"source": 0, "target": 7, "k": 4}``
* or three whitespace-separated fields: ``0 7 4``

Output format: one JSON object per query, in input order, carrying the
answer edge set plus per-query serving metadata (cached, latency, error).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.exceptions import QueryError, ReproError

__all__ = [
    "parse_query_line",
    "iter_query_lines",
    "read_queries",
    "coerce_vertex_id",
    "translate_queries",
    "outcome_record",
    "write_outcome",
]

RawQuery = Tuple[object, object, int]


def parse_query_line(line: str) -> RawQuery:
    """Parse one query line into a ``(source, target, k)`` triple.

    Source and target are returned unconverted (the CLI may still need to
    map labels through a :class:`~repro.graph.builder.GraphBuilder`); ``k``
    is coerced to ``int`` here because it is never a label.
    """
    text = line.strip()
    if text.startswith("{"):
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QueryError(f"malformed JSON query line: {text!r}") from exc
        try:
            return (record["source"], record["target"], int(record["k"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(
                f"JSON query needs source/target/k fields: {text!r}"
            ) from exc
    fields = text.split()
    if len(fields) != 3:
        raise QueryError(
            f"query line needs 3 whitespace-separated fields or a JSON object: {text!r}"
        )
    try:
        return (fields[0], fields[1], int(fields[2]))
    except ValueError as exc:
        raise QueryError(f"hop constraint must be an integer: {text!r}") from exc


def iter_query_lines(lines: Iterable[str]) -> Iterator[RawQuery]:
    """Yield parsed queries, skipping blank lines and ``#`` comments."""
    for line in lines:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        yield parse_query_line(text)


def read_queries(handle: TextIO) -> List[RawQuery]:
    """Read every query from an open text stream."""
    return list(iter_query_lines(handle))


def coerce_vertex_id(value: object) -> int:
    """Coerce a raw query endpoint to a dense integer vertex id.

    Accepts integers, integral floats (JSON encoders routinely emit ``5.0``
    for 5) and integer strings.  Booleans and non-integral floats are
    rejected: ``int(2.9)`` would silently answer for vertex 2 and
    ``int(True)`` for vertex 1 — a different query than the caller wrote.
    """
    if isinstance(value, bool):
        raise QueryError(f"vertex id must be an integer, got boolean {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise QueryError(f"vertex id must be integral, got {value!r}")
        return int(value)
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"vertex id must be an integer, got {value!r}") from exc


def translate_queries(
    raw_queries: Iterable[RawQuery], builder=None
) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, str]]]:
    """Map raw query endpoints to dense vertex ids.

    With a :class:`~repro.graph.builder.GraphBuilder` (an edge-list graph),
    endpoints are the file's own labels; without one they must be integral
    dense ids (see :func:`coerce_vertex_id`).  Returns ``(good queries,
    per-index translation errors)`` so a query with an unknown label or a
    non-integral endpoint fails alone, like any other bad query.
    """
    good: List[Tuple[int, int, int]] = []
    failed: List[Tuple[int, str]] = []
    for index, (source, target, k) in enumerate(raw_queries):
        try:
            if builder is not None:
                mapped = (builder.vertex_id(str(source)), builder.vertex_id(str(target)), k)
            else:
                mapped = (coerce_vertex_id(source), coerce_vertex_id(target), k)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            failed.append((index, f"{type(exc).__name__}: {exc}"))
            continue
        good.append(mapped)
    return good, failed


def outcome_record(
    outcome,
    include_edges: bool = True,
    relabel: Optional[Callable[[int], object]] = None,
) -> Dict[str, object]:
    """Serialise one :class:`~repro.service.engine.QueryOutcome` to a dict.

    ``relabel`` optionally maps dense vertex ids back to the caller's own
    labels (e.g. :meth:`repro.graph.builder.GraphBuilder.vertex_label`);
    it is applied to the endpoints and every reported edge.
    """
    name = relabel if relabel is not None else (lambda vertex: vertex)
    record: Dict[str, object] = {
        "source": name(outcome.source),
        "target": name(outcome.target),
        "k": outcome.k,
        "ok": outcome.ok,
        "cached": outcome.cached,
        "reused_backward": outcome.reused_backward,
        "latency_ms": round(outcome.latency_seconds * 1000.0, 3),
    }
    if outcome.ok:
        record["num_edges"] = len(outcome.result.edges)
        record["exact"] = outcome.result.exact
        if include_edges:
            record["edges"] = sorted(
                (name(u), name(v)) for u, v in outcome.result.edges
            )
    else:
        record["error"] = outcome.error
    return record


def write_outcome(
    handle: TextIO,
    outcome,
    include_edges: bool = True,
    relabel: Optional[Callable[[int], object]] = None,
) -> None:
    """Write one outcome as a JSON line."""
    handle.write(
        json.dumps(
            outcome_record(outcome, include_edges=include_edges, relabel=relabel)
        )
    )
    handle.write("\n")
