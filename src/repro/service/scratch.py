"""Scratch-buffer pooling: zero per-query allocation on the serving path.

The CSR distance kernel (:mod:`repro.core.distances`) runs on flat
``dist``/``stamp`` buffers bundled in a
:class:`~repro.core.distances.DistanceScratch`, and the essential-vertex
propagation kernel (:mod:`repro.core.essential`) runs on the flat
per-vertex entry/working-set buffers of an
:class:`~repro.core.essential.EssentialScratch`, and the explicit-stack
verification kernel (:mod:`repro.core.verification`) runs on the CSR
slice/frame buffers of a
:class:`~repro.core.verification.VerificationScratch`.  Allocating any of
them per query would cost O(num_vertices) per cache miss;
:class:`ScratchPool` keeps them alive between queries instead, bundled as
:class:`~repro.core.eve.QueryScratch` objects (a ``DistanceScratch`` that
also carries the essential and verification sides, so one checkout covers
every phase).
Workers borrow a scratch for the duration of one query and return it; the
epoch-stamp reset makes reuse O(1), so a warmed-up engine answers cache
misses without allocating any distance, visited-mark or propagation
bookkeeping storage at all.

The pool is unbounded by design: it can never hold more scratches than the
peak number of concurrent borrowers (the engine's thread-pool width), so
memory is bounded by ``max_workers * O(num_vertices)`` machine ints.
"""

from __future__ import annotations

from contextlib import contextmanager
from threading import Lock
from typing import Dict, Iterator, List, Optional

from repro.core.eve import QueryScratch

__all__ = ["ScratchPool"]


class ScratchPool:
    """A thread-safe free list of :class:`~repro.core.eve.QueryScratch` buffers.

    Parameters
    ----------
    stats:
        Optional :class:`repro.service.stats.EngineStats`; every acquire is
        then recorded as a scratch allocation or reuse — once under the
        distance counters, once under the propagation counters and once
        under the verification counters, since a bundle carries every
        phase's buffers — which is how the throughput, labelling and
        verification benchmarks assert the batch path allocates no
        per-query distance, propagation *or* verification buffers.
    """

    def __init__(self, stats: Optional[object] = None) -> None:
        self._lock = Lock()
        self._free: List[QueryScratch] = []
        self._stats = stats
        # Local counters are only the source of truth for standalone pools;
        # with an EngineStats attached, every checkout is recorded there
        # instead and the properties below read it back, so there is exactly
        # one set of counters (and EngineStats.reset() resets both views).
        self._local_allocations = 0
        self._local_reuses = 0

    @property
    def allocations(self) -> int:
        """Scratches created because the pool was empty at acquire time."""
        if self._stats is not None:
            return self._stats.scratch_allocations
        return self._local_allocations

    @property
    def reuses(self) -> int:
        """Acquires served from the free list without allocating."""
        if self._stats is not None:
            return self._stats.scratch_reuses
        return self._local_reuses

    # ------------------------------------------------------------------
    def acquire(self) -> QueryScratch:
        """Check out a scratch (reusing a pooled one when available)."""
        record_locally = self._stats is None
        with self._lock:
            if self._free:
                scratch = self._free.pop()
                reused = True
                if record_locally:
                    self._local_reuses += 1
            else:
                scratch = QueryScratch()
                reused = False
                if record_locally:
                    self._local_allocations += 1
        if not record_locally:
            self._stats.record_scratch(reused=reused)
            self._stats.record_propagation_scratch(reused=reused)
            self._stats.record_verification_scratch(reused=reused)
        return scratch

    def release(self, scratch: QueryScratch) -> None:
        """Return a scratch to the pool for the next query."""
        with self._lock:
            self._free.append(scratch)

    @contextmanager
    def borrow(self) -> Iterator[QueryScratch]:
        """Context-managed acquire/release around one query execution."""
        scratch = self.acquire()
        try:
            yield scratch
        finally:
            self.release(scratch)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop pooled buffers (e.g. after swapping to a much smaller graph)."""
        with self._lock:
            self._free.clear()

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time counters (JSON friendly)."""
        with self._lock:
            return {
                "allocations": self.allocations,
                "reuses": self.reuses,
                "idle": len(self._free),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._free)

    def __repr__(self) -> str:
        return (
            f"ScratchPool(idle={len(self)}, allocations={self.allocations}, "
            f"reuses={self.reuses})"
        )
