"""``python -m repro.service`` — serve a JSONL query workload from the CLI.

Load a graph (a Table 2 synthetic proxy or an edge-list file), read
``<s, t, k>`` queries from a file or stdin (JSON objects or ``s t k``
triples, one per line), answer them through :class:`SPGEngine`, and emit
one JSON result per line in input order.

Examples
--------
Serve three queries against the ``tw`` proxy::

    printf '0 5 4\\n{"source": 2, "target": 9, "k": 3}\\n0 5 4\\n' \\
        | python -m repro.service --dataset tw --scale 0.1

Serve a workload file against your own edge list, with stats::

    python -m repro.service --edges graph.txt --queries workload.jsonl --stats

With ``--edges``, query endpoints are the file's own vertex labels; with
``--dataset``, they are the proxy's dense integer ids.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.distances import DISTANCE_STRATEGIES
from repro.datasets.registry import dataset_names, load_dataset
from repro.exceptions import ReproError
from repro.graph.io import load_graph
from repro.service.engine import EngineConfig, QueryOutcome, SPGEngine
from repro.service.executor import EXECUTOR_BACKENDS
from repro.service.workload_io import read_queries, translate_queries, write_outcome
from repro.telemetry import Tracer

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Answer a batch of <s, t, k> SPG queries as JSON lines.",
    )
    graph_source = parser.add_mutually_exclusive_group(required=True)
    graph_source.add_argument(
        "--dataset",
        choices=dataset_names(),
        help="serve a Table 2 synthetic proxy (dense integer vertex ids)",
    )
    graph_source.add_argument(
        "--edges",
        metavar="PATH",
        help="serve an edge-list file (queries use the file's vertex labels)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="proxy scale factor (with --dataset)"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="proxy generator seed (with --dataset)"
    )
    parser.add_argument(
        "--queries",
        default="-",
        metavar="PATH",
        help="JSONL query file, or '-' for stdin (default)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="executor pool size (default: available CPUs)",
    )
    parser.add_argument(
        "--backend",
        choices=EXECUTOR_BACKENDS,
        default=None,
        help=(
            "executor backend for the batch (default: $REPRO_EXECUTOR_BACKEND "
            "or 'thread'; 'process' runs CPU-bound queries on multiple cores)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "serve through a ShardedSPGEngine over N vertex-range CSR shards "
            "(default: $REPRO_SHARD_COUNT or unsharded; 0 forces unsharded). "
            "Answers are identical to unsharded serving"
        ),
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024, help="LRU entries (0 disables caching)"
    )
    parser.add_argument(
        "--min-group-size",
        type=int,
        default=2,
        help="smallest (target, k) group that shares a backward pass",
    )
    parser.add_argument(
        "--strategy",
        "--distance-strategy",
        dest="strategy",
        choices=DISTANCE_STRATEGIES,
        default="adaptive",
        help=(
            "distance-search strategy for served queries (the Figure 11 "
            "ablation axis); shared-target groups still reuse one backward pass"
        ),
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the verification phase (upper bound only; exact for k <= 4)",
    )
    parser.add_argument(
        "--no-edges",
        action="store_true",
        help="omit edge lists from the output (metadata only)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print an engine stats JSON object to stderr when done",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write the engine's metrics as Prometheus text-format 0.0.4 "
            "exposition to PATH when done ('-' for stderr)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "enable phase-level tracing and write the collected spans as "
            "JSON lines to PATH when done ('-' for stderr)"
        ),
    )
    return parser


def _load_graph(args: argparse.Namespace):
    """Return ``(graph, builder-or-None)`` for the selected graph source."""
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed), None
    return load_graph(args.edges)


def _export_telemetry(args: argparse.Namespace, engine: SPGEngine) -> None:
    """Write ``--stats`` / ``--metrics-out`` / ``--trace-out`` outputs.

    Called from a ``finally`` around the serving block: an exception inside
    ``engine.run_batch`` must not lose the telemetry collected up to the
    failure — that is exactly when it is most needed.
    """
    if args.stats:
        print(json.dumps(engine.stats_snapshot()), file=sys.stderr)
    if args.metrics_out is not None:
        exposition = engine.stats.to_prometheus()
        if args.metrics_out == "-":
            sys.stderr.write(exposition)
        else:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(exposition)
    if args.trace_out is not None and engine.tracer is not None:
        if args.trace_out == "-":
            engine.tracer.export_jsonl(sys.stderr)
        else:
            engine.tracer.export_jsonl(args.trace_out)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        graph, builder = _load_graph(args)
    except (ReproError, OSError) as exc:
        print(f"error: could not load graph: {exc}", file=sys.stderr)
        return 2

    try:
        if args.queries == "-":
            raw_queries = read_queries(sys.stdin)
        else:
            with open(args.queries, "r", encoding="utf-8") as handle:
                raw_queries = read_queries(handle)
    except (ReproError, OSError) as exc:
        print(f"error: could not read queries: {exc}", file=sys.stderr)
        return 2

    try:
        config = EngineConfig(
            strategy=args.strategy,
            verify=not args.no_verify,
            cache_size=args.cache_size,
            max_workers=args.workers,
            min_group_size=args.min_group_size,
            executor_backend=args.backend,
            num_shards=args.shards,
        )
        engine = SPGEngine.from_config(graph, config)
    except (ReproError, ValueError) as exc:
        print(f"error: invalid engine configuration: {exc}", file=sys.stderr)
        return 2
    if args.trace_out is not None:
        engine.tracer = Tracer()

    translated, failed = translate_queries(raw_queries, builder)
    try:
        with engine:
            report = engine.run_batch(translated)

        # Interleave engine outcomes with translation failures in input
        # order.  Engine outcomes use dense ids; map them back to the edge
        # file's own labels when one was loaded.  Translation failures
        # already carry the raw labels, so they are written without
        # relabelling.
        failures = {index: message for index, message in failed}
        served = iter(report.outcomes)
        include_edges = not args.no_edges
        relabel = builder.vertex_label if builder is not None else None
        for index, (raw_source, raw_target, k) in enumerate(raw_queries):
            if index in failures:
                outcome = QueryOutcome(
                    source=raw_source, target=raw_target, k=k, error=failures[index]
                )
                write_outcome(sys.stdout, outcome, include_edges=include_edges)
            else:
                outcome = next(served)
                write_outcome(
                    sys.stdout, outcome, include_edges=include_edges, relabel=relabel
                )
    finally:
        _export_telemetry(args, engine)
    return 0


if __name__ == "__main__":
    sys.exit(main())
