"""Admission control: bounded fan-in, per-tenant quotas, graceful drain.

The front end admits every query through one :class:`AdmissionController`
before it may touch the engine.  Three gates, checked in order:

1. **drain** — a draining server admits nothing (503; in-flight work
   finishes);
2. **bounded queue** — the controller tracks admitted-but-unfinished
   query cost; a request that would push the depth past the bound is shed
   with 429 instead of joining an unbounded fan-in (overload degrades to
   fast rejections, not collapse);
3. **per-tenant token bucket** — each ``X-Tenant`` value gets a
   :class:`TokenBucket`; an empty bucket is a 429 with a quota marker.

Every decision is counted into the engine's
:class:`~repro.service.stats.EngineStats` (``http_requests_admitted``,
``http_requests_shed``, ``http_quota_rejections``,
``http_drain_rejections``) and the depth gauge is updated on every
admit/release, so ``/metrics`` exposes shed rate and queue depth live.

The controller is event-loop-confined by design: it is only touched from
request handlers on the server's loop, so the counters need no locking of
their own (the stats object it reports into is independently
thread-safe).
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, Optional

from repro.service.stats import EngineStats

__all__ = [
    "ADMITTED",
    "SHED",
    "QUOTA",
    "DRAINING",
    "TokenBucket",
    "AdmissionController",
]

#: Admission decisions, also the :meth:`EngineStats.record_admission` keys.
ADMITTED = "admitted"
SHED = "shed"
QUOTA = "quota"
DRAINING = "draining"


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Starts full.  :meth:`try_acquire` refills lazily from the injected
    monotonic clock, so idle buckets cost nothing and tests can drive time
    by hand.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._updated = clock()

    @property
    def tokens(self) -> float:
        """Current token balance (after a lazy refill)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        self._refill()
        if tokens <= self._tokens:
            self._tokens -= tokens
            return True
        return False


class AdmissionController:
    """Bounded admission in front of the engine (see module docstring).

    Parameters
    ----------
    max_queue_depth:
        Bound on the summed cost of admitted-but-released work.
    stats:
        The engine's :class:`EngineStats`; every decision and depth change
        is recorded there (``None`` disables reporting, for unit tests).
    tenant_rate, tenant_burst:
        Per-tenant token-bucket parameters; ``tenant_rate=None`` disables
        quota checking entirely.
    clock:
        Monotonic clock shared by every tenant bucket (injectable).
    """

    def __init__(
        self,
        *,
        max_queue_depth: int,
        stats: Optional[EngineStats] = None,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if tenant_rate is not None and tenant_rate <= 0:
            raise ValueError(f"tenant_rate must be > 0, got {tenant_rate}")
        self._max_queue_depth = max_queue_depth
        self._stats = stats
        self._tenant_rate = tenant_rate
        self._tenant_burst = (
            tenant_burst
            if tenant_burst is not None
            else (max(tenant_rate, 1.0) if tenant_rate is not None else None)
        )
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._depth = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Summed cost of admitted-but-unreleased work."""
        return self._depth

    @property
    def max_queue_depth(self) -> int:
        return self._max_queue_depth

    @property
    def draining(self) -> bool:
        return self._draining

    def bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        """The tenant's token bucket (``None`` when quotas are disabled)."""
        if self._tenant_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self._tenant_rate, self._tenant_burst, self._clock)
            self._buckets[tenant] = bucket
        return bucket

    # ------------------------------------------------------------------
    def try_admit(self, tenant: str, cost: int = 1) -> str:
        """Decide one request; returns an admission decision constant.

        ``cost`` is the number of queries the request carries (1 for
        ``/query``, the line count for ``/batch``); admitted cost must be
        handed back via :meth:`release` when the response is done.  A
        request whose cost alone exceeds the bound can never be admitted —
        callers should split oversized batches.
        """
        if cost < 1:
            raise ValueError(f"cost must be >= 1, got {cost}")
        if self._draining:
            return self._decide(DRAINING)
        if self._depth + cost > self._max_queue_depth:
            return self._decide(SHED)
        bucket = self.bucket_for(tenant)
        if bucket is not None and not bucket.try_acquire(cost):
            return self._decide(QUOTA)
        self._depth += cost
        self._idle.clear()
        self._report_depth()
        return self._decide(ADMITTED)

    def release(self, cost: int = 1) -> None:
        """Hand back admitted cost once its response has been written."""
        if cost > self._depth:
            raise ValueError(
                f"release of {cost} exceeds current queue depth {self._depth}"
            )
        self._depth -= cost
        self._report_depth()
        if self._depth == 0:
            self._idle.set()

    def _decide(self, decision: str) -> str:
        if self._stats is not None:
            self._stats.record_admission(decision)
        return decision

    def _report_depth(self) -> None:
        if self._stats is not None:
            self._stats.set_queue_depth(self._depth)

    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; already-admitted work continues to completion."""
        self._draining = True
        if self._depth == 0:
            self._idle.set()

    async def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Wait for the queue to empty; returns ``False`` on timeout."""
        if timeout is not None and timeout <= 0:
            return self._depth == 0
        try:
            if timeout is None:
                await self._idle.wait()
            else:
                await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"AdmissionController(depth={self._depth}/{self._max_queue_depth}, "
            f"draining={self._draining}, tenants={len(self._buckets)})"
        )
