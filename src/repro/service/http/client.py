"""A minimal asyncio HTTP/1.1 client for the front end's own tooling.

The load generator (:mod:`benchmarks.loadgen`), the serving entries of the
bench trajectory and the test suite all need to talk to
:class:`~repro.service.http.server.HTTPFrontend` without adding a client
dependency, so this module hand-rolls the one slice of HTTP/1.1 the front
end speaks: ``Content-Length`` and chunked response bodies over a
keep-alive connection.

Two entry points:

* :class:`HTTPConnection` — one persistent keep-alive connection; issue
  sequential :meth:`~HTTPConnection.request` calls on it (a load worker
  owns one connection, like one user).
* :func:`request` — one-shot convenience: connect, request, close.

This is tooling, not a general client: no TLS, no redirects, no
compression, no retry — exactly what loopback measurement needs and
nothing that could distort it.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["HTTPResponse", "HTTPConnection", "request"]


@dataclass
class HTTPResponse:
    """One parsed HTTP response."""

    status: int
    reason: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> object:
        """The body as one JSON document."""
        return json.loads(self.body)

    def json_lines(self) -> List[object]:
        """The body as JSONL (one document per non-empty line)."""
        return [json.loads(line) for line in self.text.splitlines() if line.strip()]


class HTTPConnection:
    """One keep-alive HTTP/1.1 connection to the front end.

    Requests must be issued sequentially (HTTP/1.1 has no multiplexing);
    concurrency comes from opening many connections, which is exactly how
    the load generator models independent users.
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> HTTPResponse:
        """Issue one request and read the full response.

        Reconnects transparently if the server closed the previous
        keep-alive connection (e.g. after a ``Connection: close``
        response).
        """
        await self.connect()
        try:
            return await self._roundtrip(method, path, body, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            # Stale keep-alive connection: reconnect once and retry.
            await self.aclose()
            await self.connect()
            return await self._roundtrip(method, path, body, headers)

    async def _roundtrip(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]],
    ) -> HTTPResponse:
        assert self._reader is not None and self._writer is not None
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
            f"Content-Length: {len(body)}",
        ]
        if headers:
            lines.extend(f"{name}: {value}" for name, value in headers.items())
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        response = await _read_response(self._reader)
        if response.headers.get("connection", "").lower() == "close":
            await self.aclose()
        return response

    async def aclose(self) -> None:
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def __aenter__(self) -> "HTTPConnection":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


async def _read_response(reader: asyncio.StreamReader) -> HTTPResponse:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection before responding")
    parts = status_line.decode("latin-1").strip().split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ValueError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    reason = parts[2] if len(parts) == 3 else ""

    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionError("server closed the connection mid-headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = await _read_chunked(reader)
    else:
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
    return HTTPResponse(status=status, reason=reason, headers=headers, body=body)


async def _read_chunked(reader: asyncio.StreamReader) -> bytes:
    chunks: List[bytes] = []
    while True:
        size_line = await reader.readline()
        if not size_line:
            raise ConnectionError("server closed the connection mid-chunk")
        size = int(size_line.strip().split(b";", 1)[0], 16)
        if size == 0:
            # Trailer section: read until the terminating blank line.
            while True:
                trailer = await reader.readline()
                if trailer in (b"\r\n", b"\n", b""):
                    break
            return b"".join(chunks)
        chunks.append(await reader.readexactly(size))
        await reader.readexactly(2)  # the CRLF after each chunk


async def request(
    host_or_address,
    port: Optional[int] = None,
    method: str = "GET",
    path: str = "/healthz",
    *,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
) -> HTTPResponse:
    """One-shot request: connect, issue, close.

    The first argument may be a host string (with ``port`` given
    separately) or an ``(host, port)`` tuple such as
    ``HTTPFrontend.address``.
    """
    if port is None:
        host, port = host_or_address
    else:
        host = host_or_address
    connection = HTTPConnection(host, port)
    try:
        return await connection.request(method, path, body=body, headers=headers)
    finally:
        await connection.aclose()
