"""Fold single HTTP queries into planner batches under a latency budget.

Independent clients each send one query, but the engine's wins — shared
``(t, k)`` backward passes, in-batch deduplication, one executor round
trip — only materialise on *batches*.  The :class:`QueryCoalescer` holds
the first query of a window for at most ``window_seconds`` and answers
everything that arrived in the meantime with a single
:meth:`~repro.service.engine.SPGEngine.run_batch_async` call, so planner
batching works across connections, not just within one request.

The trade is explicit: up to one window of added latency buys batch
throughput.  ``max_batch`` caps both the added latency under load (a full
batch flushes immediately) and the batch size handed to the planner.
Event-loop-confined like the admission layer; per-query error isolation
is inherited from the engine (an errored query resolves its own future
with an errored outcome, not an exception).
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Set, Tuple

from repro.service.engine import QueryOutcome, SPGEngine

__all__ = ["QueryCoalescer"]

#: One pending entry: the normalised query and the future its HTTP
#: request handler awaits.
_Pending = Tuple[Tuple[int, int, int], "asyncio.Future[QueryOutcome]"]


class QueryCoalescer:
    """Batch single queries arriving within one latency window.

    Parameters
    ----------
    engine:
        The engine batches are run on (``run_batch_async``).
    window_seconds:
        Latency budget: how long the first query of a window may wait for
        company.  ``0`` still coalesces arrivals of the same event-loop
        tick.
    max_batch:
        Pending size that triggers an immediate flush.
    """

    def __init__(
        self,
        engine: SPGEngine,
        *,
        window_seconds: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0, got {window_seconds}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._engine = engine
        self._window = window_seconds
        self._max_batch = max_batch
        self._pending: List[_Pending] = []
        self._timer: Optional[asyncio.Task] = None
        self._inflight: Set[asyncio.Task] = set()
        self._closed = False
        #: Flush/batch accounting for tests and the run-table harness.
        self.batches_flushed = 0
        self.queries_coalesced = 0

    # ------------------------------------------------------------------
    async def submit(self, query: Tuple[int, int, int]) -> QueryOutcome:
        """Enqueue one normalised ``(s, t, k)`` query; await its outcome."""
        if self._closed:
            raise RuntimeError("coalescer is closed")
        future: "asyncio.Future[QueryOutcome]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append((query, future))
        if len(self._pending) >= self._max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = asyncio.create_task(self._flush_after_window())
        return await future

    @property
    def pending(self) -> int:
        """Queries waiting for the current window to flush."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Move the pending window into one engine batch task."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        task = asyncio.create_task(self._run_batch(batch))
        # Keep a strong reference: the loop only holds tasks weakly.
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _flush_after_window(self) -> None:
        try:
            await asyncio.sleep(self._window)
        except asyncio.CancelledError:
            return
        self._timer = None
        batch, self._pending = self._pending, []
        if batch:
            task = asyncio.create_task(self._run_batch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, batch: List[_Pending]) -> None:
        queries = [query for query, _ in batch]
        try:
            report = await self._engine.run_batch_async(queries)
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.batches_flushed += 1
        self.queries_coalesced += len(batch)
        for (_, future), outcome in zip(batch, report.outcomes):
            # A future may be done already if its client disconnected and
            # the handler cancelled it; the outcome is simply dropped.
            if not future.done():
                future.set_result(outcome)

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Flush the pending window and wait for every in-flight batch."""
        self._closed = True
        self._flush()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def __repr__(self) -> str:
        return (
            f"QueryCoalescer(window={self._window}s, max_batch={self._max_batch}, "
            f"pending={len(self._pending)}, flushed={self.batches_flushed})"
        )
