"""The asyncio HTTP front end for :class:`~repro.service.engine.SPGEngine`.

Layers, bottom to top:

* :mod:`~repro.service.http.config` — :class:`HTTPConfig`, every knob as
  one frozen dataclass;
* :mod:`~repro.service.http.admission` — bounded queue, per-tenant token
  buckets, graceful drain;
* :mod:`~repro.service.http.coalescer` — folds single queries into
  planner batches under a latency budget;
* :mod:`~repro.service.http.server` — :class:`HTTPFrontend`, the
  hand-rolled HTTP/1.1 server itself (``POST /query``, ``POST /batch``,
  ``GET /metrics``, ``GET /healthz``);
* :mod:`~repro.service.http.client` — the minimal asyncio client the load
  generator, the bench trajectory and the tests share.

``python -m repro.service.http`` serves a graph from the command line with
the same graph/engine flags as the offline ``python -m repro.service``.
"""

from repro.service.http.admission import (
    ADMITTED,
    DRAINING,
    QUOTA,
    SHED,
    AdmissionController,
    TokenBucket,
)
from repro.service.http.client import HTTPConnection, HTTPResponse, request
from repro.service.http.coalescer import QueryCoalescer
from repro.service.http.config import HTTPConfig
from repro.service.http.server import HTTPError, HTTPFrontend, Request

__all__ = [
    "ADMITTED",
    "SHED",
    "QUOTA",
    "DRAINING",
    "AdmissionController",
    "TokenBucket",
    "QueryCoalescer",
    "HTTPConfig",
    "HTTPError",
    "HTTPFrontend",
    "Request",
    "HTTPConnection",
    "HTTPResponse",
    "request",
]
