"""Declarative tuning for the asyncio HTTP front end.

One frozen dataclass bundles every knob the server, the admission layer
and the request coalescer expose, so CLI flags, tests and the load rig
construct front ends from data — the same pattern as
:class:`repro.service.engine.EngineConfig` for the engine itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["HTTPConfig"]


@dataclass(frozen=True)
class HTTPConfig:
    """Every knob a :class:`repro.service.http.server.HTTPFrontend` exposes.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port (the bound
        address is readable from ``HTTPFrontend.address`` after start) —
        the load rig and the CI smoke test rely on this.
    coalesce_window:
        Latency budget in seconds for folding single ``POST /query``
        requests into one planner batch.  The first query of a window
        starts the timer; everything arriving before it fires is answered
        by one ``run_batch_async`` call, so shared-target planning and
        in-batch deduplication apply across independent HTTP clients.
        ``0`` still coalesces same-event-loop-tick arrivals.
    coalesce_max_batch:
        Queries that force an immediate flush before the window elapses,
        bounding worst-case added latency *and* batch size under load.
    max_queue_depth:
        Bound on admitted-but-unfinished queries.  A request that would
        push the depth past this is shed with 429 instead of joining an
        unbounded fan-in; batches count one unit per query.
    tenant_rate:
        Per-tenant sustained admission rate in queries/second, enforced by
        a token bucket keyed on the ``tenant_header`` value (missing
        header → ``default_tenant``).  ``None`` disables quotas.
    tenant_burst:
        Token-bucket capacity (burst size) per tenant.  ``None`` defaults
        to ``max(tenant_rate, 1)`` — one second of sustained rate.
    stream_batch_size:
        Chunk size ``POST /batch`` feeds to :meth:`SPGEngine.astream`.
    drain_timeout:
        Seconds :meth:`HTTPFrontend.shutdown` waits for in-flight queries
        before giving up (the listener keeps answering 503 while
        draining).
    max_body_bytes, max_header_bytes:
        Request framing limits; exceeding them is a 413 / 431.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    coalesce_window: float = 0.002
    coalesce_max_batch: int = 64
    max_queue_depth: int = 256
    tenant_rate: Optional[float] = None
    tenant_burst: Optional[float] = None
    tenant_header: str = "X-Tenant"
    default_tenant: str = "default"
    stream_batch_size: int = 64
    drain_timeout: float = 30.0
    max_body_bytes: int = 8 * 1024 * 1024
    max_header_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.coalesce_window < 0:
            raise ValueError(f"coalesce_window must be >= 0, got {self.coalesce_window}")
        if self.coalesce_max_batch < 1:
            raise ValueError(
                f"coalesce_max_batch must be >= 1, got {self.coalesce_max_batch}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.tenant_rate is not None and self.tenant_rate <= 0:
            raise ValueError(f"tenant_rate must be > 0, got {self.tenant_rate}")
        if self.tenant_burst is not None and self.tenant_burst <= 0:
            raise ValueError(f"tenant_burst must be > 0, got {self.tenant_burst}")
        if self.stream_batch_size < 1:
            raise ValueError(
                f"stream_batch_size must be >= 1, got {self.stream_batch_size}"
            )
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {self.drain_timeout}")

    def resolved_tenant_burst(self) -> Optional[float]:
        """The effective bucket capacity (``None`` when quotas are off)."""
        if self.tenant_rate is None:
            return None
        if self.tenant_burst is not None:
            return self.tenant_burst
        return max(self.tenant_rate, 1.0)
