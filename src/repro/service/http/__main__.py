"""``python -m repro.service.http`` — serve SPG queries over HTTP.

Loads a graph exactly like the offline ``python -m repro.service`` (a
Table 2 synthetic proxy or an edge-list file, same flags), then serves it
through :class:`~repro.service.http.server.HTTPFrontend` until SIGINT or
SIGTERM, at which point the server drains gracefully: new requests get
503 while admitted queries finish.

Examples
--------
Serve the ``tw`` proxy on an ephemeral port with tenant quotas::

    python -m repro.service.http --dataset tw --scale 0.1 --port 0 \\
        --tenant-rate 100

Then query it::

    curl -s -X POST http://127.0.0.1:<port>/query \\
        -d '{"source": 0, "target": 5, "k": 4}'
    curl -s http://127.0.0.1:<port>/metrics

And mutate the served graph under live traffic::

    curl -s -X POST http://127.0.0.1:<port>/mutate \\
        -d '{"insert": [[0, 7]], "delete": [[3, 4]]}'
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from repro.core.distances import DISTANCE_STRATEGIES
from repro.datasets.registry import dataset_names, load_dataset
from repro.exceptions import ReproError
from repro.graph.io import load_graph
from repro.service.engine import EngineConfig, SPGEngine
from repro.service.executor import EXECUTOR_BACKENDS
from repro.service.http.config import HTTPConfig
from repro.service.http.server import HTTPFrontend
from repro.telemetry import Tracer

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.http",
        description="Serve <s, t, k> SPG queries over HTTP.",
    )
    graph_source = parser.add_mutually_exclusive_group(required=True)
    graph_source.add_argument(
        "--dataset",
        choices=dataset_names(),
        help="serve a Table 2 synthetic proxy (dense integer vertex ids)",
    )
    graph_source.add_argument(
        "--edges",
        metavar="PATH",
        help="serve an edge-list file (queries use the file's vertex labels)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="proxy scale factor (with --dataset)"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="proxy generator seed (with --dataset)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 binds an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="executor pool size (default: available CPUs)",
    )
    parser.add_argument(
        "--backend",
        choices=EXECUTOR_BACKENDS,
        default=None,
        help="executor backend (default: $REPRO_EXECUTOR_BACKEND or 'thread')",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="serve through a ShardedSPGEngine over N shards (0 forces unsharded)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024, help="LRU entries (0 disables caching)"
    )
    parser.add_argument(
        "--min-group-size",
        type=int,
        default=2,
        help="smallest (target, k) group that shares a backward pass",
    )
    parser.add_argument(
        "--compact-threshold",
        type=int,
        default=4096,
        metavar="EDGES",
        help="net delta-overlay size that triggers folding into a fresh base",
    )
    parser.add_argument(
        "--strategy",
        "--distance-strategy",
        dest="strategy",
        choices=DISTANCE_STRATEGIES,
        default="adaptive",
        help="distance-search strategy for served queries",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the verification phase (upper bound only; exact for k <= 4)",
    )
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="latency budget for folding single queries into one batch",
    )
    parser.add_argument(
        "--coalesce-max-batch",
        type=int,
        default=64,
        help="pending queries that force an immediate coalescer flush",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=256,
        help="admitted-but-unfinished query bound; excess requests get 429",
    )
    parser.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        metavar="QPS",
        help="per-tenant sustained admission rate (default: quotas off)",
    )
    parser.add_argument(
        "--tenant-burst",
        type=float,
        default=None,
        help="per-tenant token-bucket capacity (default: max(rate, 1))",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long shutdown waits for in-flight queries",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record request- and phase-level spans into an engine tracer",
    )
    return parser


def _load_graph(args: argparse.Namespace):
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed), None
    return load_graph(args.edges)


async def _serve(frontend: HTTPFrontend, drain_timeout: float) -> int:
    host, port = await frontend.start()
    print(f"serving on http://{host}:{port}", file=sys.stderr, flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass

    await stop.wait()
    print("draining...", file=sys.stderr, flush=True)
    drained = await frontend.shutdown(drain_timeout)
    if not drained:
        print(
            f"warning: drain timed out after {drain_timeout}s", file=sys.stderr
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        graph, builder = _load_graph(args)
    except (ReproError, OSError) as exc:
        print(f"error: could not load graph: {exc}", file=sys.stderr)
        return 2

    try:
        engine_config = EngineConfig(
            strategy=args.strategy,
            verify=not args.no_verify,
            cache_size=args.cache_size,
            max_workers=args.workers,
            min_group_size=args.min_group_size,
            executor_backend=args.backend,
            num_shards=args.shards,
            compact_threshold=args.compact_threshold,
        )
        engine = SPGEngine.from_config(graph, engine_config)
        http_config = HTTPConfig(
            host=args.host,
            port=args.port,
            coalesce_window=args.coalesce_window,
            coalesce_max_batch=args.coalesce_max_batch,
            max_queue_depth=args.max_queue_depth,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            drain_timeout=args.drain_timeout,
        )
    except (ReproError, ValueError) as exc:
        print(f"error: invalid configuration: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        engine.tracer = Tracer()

    frontend = HTTPFrontend(engine, builder=builder, config=http_config)
    try:
        with engine:
            return asyncio.run(_serve(frontend, args.drain_timeout))
    except KeyboardInterrupt:  # pragma: no cover - race with the signal handler
        return 0


if __name__ == "__main__":
    sys.exit(main())
