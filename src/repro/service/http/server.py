"""The asyncio HTTP front end: hand-rolled HTTP/1.1 over stream pairs.

:class:`HTTPFrontend` puts a network surface on one
:class:`~repro.service.engine.SPGEngine` without any new runtime
dependency — requests are parsed straight off ``asyncio`` streams:

* ``POST /query`` — one JSON query object; admitted through the bounded
  queue and the per-tenant quota, then folded into a planner batch by the
  :class:`~repro.service.http.coalescer.QueryCoalescer`; the response is
  the same :func:`~repro.service.workload_io.outcome_record` JSON the
  offline CLI prints.
* ``POST /batch`` — a JSONL workload in the request body; the response
  streams one outcome record per line as chunked transfer encoding,
  backed by :meth:`~repro.service.engine.SPGEngine.astream`, with
  translation failures interleaved in input order exactly like the CLI.
* ``POST /mutate`` — a JSON ``{"insert": [[u, v], ...], "delete": ...}``
  edge delta, applied to the live engine through
  :meth:`~repro.service.engine.SPGEngine.apply_delta` (epoch-versioned
  swap, scoped cache invalidation); the response reports the new epoch
  and what the delta did.  Mutations pass the same admission gates as
  queries, so a drain waits for in-flight mutations and answers new ones
  503.
* ``GET /metrics`` — Prometheus text-format 0.0.4 from
  :meth:`~repro.service.stats.EngineStats.to_prometheus` (admission
  counters, delta/invalidation counters and queue-depth gauges included).
* ``GET /healthz`` — liveness plus drain state (503 while draining).

Overload sheds with 429 (queue full or tenant quota) and shutdown drains
gracefully: new requests get 503 while admitted queries finish, bounded
by the configured drain timeout.  When the engine carries a
:class:`~repro.telemetry.Tracer`, every request records an
``http.request`` span (method, path, status, tenant, query count) into
the same buffer as the engine's phase spans.
"""

from __future__ import annotations

import asyncio
import io
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import EdgeError, GraphError, QueryError
from repro.graph.delta import GraphDelta
from repro.service.engine import QueryOutcome, SPGEngine
from repro.service.http.admission import ADMITTED, DRAINING, QUOTA, SHED, AdmissionController
from repro.service.http.coalescer import QueryCoalescer
from repro.service.http.config import HTTPConfig
from repro.service.workload_io import (
    outcome_record,
    parse_query_line,
    read_queries,
    translate_queries,
)

__all__ = ["HTTPError", "Request", "HTTPFrontend"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """A request that must be answered with an error status."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP/1.1 request."""

    method: str
    target: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The request target without its query string."""
        return self.target.split("?", 1)[0]

    @property
    def keep_alive(self) -> bool:
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


async def _read_request(
    reader: asyncio.StreamReader, config: HTTPConfig
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Framing violations raise :class:`HTTPError` (400/413/431/501); the
    connection handler answers and closes.
    """
    try:
        request_line = await reader.readline()
    except ValueError as exc:  # line longer than the stream limit
        raise HTTPError(431, "request line too long") from exc
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {request_line[:80]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HTTPError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except ValueError as exc:
            raise HTTPError(431, "header line too long") from exc
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HTTPError(400, "connection closed mid-headers")
        header_bytes += len(line)
        if header_bytes > config.max_header_bytes:
            raise HTTPError(431, "request headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HTTPError(501, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HTTPError(400, f"bad Content-Length {length_text!r}") from exc
        if length < 0:
            raise HTTPError(400, f"bad Content-Length {length}")
        if length > config.max_body_bytes:
            raise HTTPError(413, f"request body exceeds {config.max_body_bytes} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HTTPError(400, "connection closed mid-body") from exc
    return Request(method=method, target=target, version=version, headers=headers, body=body)


def _write_head(
    writer: asyncio.StreamWriter,
    status: int,
    headers: Tuple[Tuple[str, str], ...],
) -> None:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> None:
    headers = (
        ("Content-Type", content_type),
        ("Content-Length", str(len(body))),
        ("Connection", "keep-alive" if keep_alive else "close"),
    ) + extra_headers
    _write_head(writer, status, headers)
    writer.write(body)


def _json_body(payload: object) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


class HTTPFrontend:
    """An asyncio HTTP server in front of one engine (see module docstring).

    Parameters
    ----------
    engine:
        The engine that answers everything.  Closing it remains the
        caller's job (the CLI owns both lifecycles).
    builder:
        The :class:`~repro.graph.builder.GraphBuilder` of an edge-list
        graph, when one was loaded: query endpoints are then the file's
        own labels and responses are relabelled, exactly like the offline
        CLI's ``--edges`` path.  ``None`` serves dense integer ids.
    config:
        A :class:`~repro.service.http.config.HTTPConfig`; ``None`` uses
        the defaults.
    """

    def __init__(
        self,
        engine: SPGEngine,
        *,
        builder=None,
        config: Optional[HTTPConfig] = None,
    ) -> None:
        self._engine = engine
        self._builder = builder
        self._config = config or HTTPConfig()
        self._admission = AdmissionController(
            max_queue_depth=self._config.max_queue_depth,
            stats=engine.stats,
            tenant_rate=self._config.tenant_rate,
            tenant_burst=self._config.resolved_tenant_burst(),
        )
        self._coalescer = QueryCoalescer(
            engine,
            window_seconds=self._config.coalesce_window,
            max_batch=self._config.coalesce_max_batch,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    @property
    def engine(self) -> SPGEngine:
        return self._engine

    @property
    def config(self) -> HTTPConfig:
        return self._config

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def coalescer(self) -> QueryCoalescer:
        return self._coalescer

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (available after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._config.host, port=self._config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def shutdown(self, drain_timeout: Optional[float] = None) -> bool:
        """Gracefully drain and stop; returns whether the drain completed.

        New requests are answered 503 while every already-admitted query
        finishes (bounded by ``drain_timeout``, default from the config);
        then the coalescer flushes and the listener closes.  No admitted
        in-flight query is dropped by a completed drain.
        """
        timeout = (
            self._config.drain_timeout if drain_timeout is None else drain_timeout
        )
        self._admission.begin_drain()
        drained = await self._admission.wait_drained(timeout)
        await self._coalescer.aclose()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return drained

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader, self._config)
                except HTTPError as exc:
                    _write_response(
                        writer,
                        exc.status,
                        _json_body({"error": exc.detail}),
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive
                started = time.perf_counter()
                try:
                    status = await self._dispatch(request, writer, keep_alive)
                except HTTPError as exc:
                    status = exc.status
                    _write_response(
                        writer,
                        exc.status,
                        _json_body({"error": exc.detail}),
                        keep_alive=keep_alive,
                    )
                self._record_request_span(request, status, started)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing sensible to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    def _record_request_span(self, request: Request, status: int, started: float) -> None:
        tracer = self._engine.tracer
        if tracer is not None:
            tracer.record(
                "http.request",
                started,
                time.perf_counter() - started,
                method=request.method,
                path=request.path,
                status=status,
                tenant=self._tenant(request),
            )

    def _tenant(self, request: Request) -> str:
        return request.headers.get(
            self._config.tenant_header.lower(), self._config.default_tenant
        )

    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> int:
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                raise HTTPError(405, f"{path} only supports GET")
            return self._handle_healthz(writer, keep_alive)
        if path == "/metrics":
            if request.method != "GET":
                raise HTTPError(405, f"{path} only supports GET")
            body = self._engine.stats.to_prometheus().encode("utf-8")
            _write_response(
                writer,
                200,
                body,
                content_type="text/plain; version=0.0.4; charset=utf-8",
                keep_alive=keep_alive,
            )
            return 200
        if path == "/query":
            if request.method != "POST":
                raise HTTPError(405, f"{path} only supports POST")
            return await self._handle_query(request, writer, keep_alive)
        if path == "/batch":
            if request.method != "POST":
                raise HTTPError(405, f"{path} only supports POST")
            return await self._handle_batch(request, writer, keep_alive)
        if path == "/mutate":
            if request.method != "POST":
                raise HTTPError(405, f"{path} only supports POST")
            return await self._handle_mutate(request, writer, keep_alive)
        raise HTTPError(404, f"unknown path {path!r}")

    def _handle_healthz(self, writer: asyncio.StreamWriter, keep_alive: bool) -> int:
        if self._admission.draining:
            body = _json_body({"status": "draining"})
            _write_response(
                writer, 503, body, keep_alive=False, extra_headers=(("Retry-After", "1"),)
            )
            return 503
        body = _json_body(
            {"status": "ok", "queue_depth": self._admission.queue_depth}
        )
        _write_response(writer, 200, body, keep_alive=keep_alive)
        return 200

    def _rejection(
        self,
        writer: asyncio.StreamWriter,
        decision: str,
        keep_alive: bool,
    ) -> int:
        if decision == DRAINING:
            status, reason = 503, "server is draining"
        elif decision == QUOTA:
            status, reason = 429, "tenant quota exhausted"
        else:  # SHED
            status, reason = 429, "admission queue is full"
        _write_response(
            writer,
            status,
            _json_body({"error": reason, "reason": decision}),
            keep_alive=keep_alive,
            extra_headers=(("Retry-After", "1"),),
        )
        return status

    def _relabel(self):
        return self._builder.vertex_label if self._builder is not None else None

    async def _handle_query(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> int:
        text = self._decode_body(request)
        if not text.strip().startswith("{"):
            raise HTTPError(400, "POST /query expects one JSON query object")
        try:
            raw = parse_query_line(text.strip())
        except QueryError as exc:
            raise HTTPError(400, str(exc)) from exc

        decision = self._admission.try_admit(self._tenant(request))
        if decision != ADMITTED:
            return self._rejection(writer, decision, keep_alive)
        try:
            translated, failed = translate_queries([raw], self._builder)
            if failed:
                outcome = QueryOutcome(
                    source=raw[0], target=raw[1], k=raw[2], error=failed[0][1]
                )
                record = outcome_record(outcome)
            else:
                outcome = await self._coalescer.submit(translated[0])
                record = outcome_record(outcome, relabel=self._relabel())
        finally:
            self._admission.release()
        _write_response(writer, 200, _json_body(record), keep_alive=keep_alive)
        return 200

    async def _handle_batch(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> int:
        text = self._decode_body(request)
        try:
            raw_queries = read_queries(io.StringIO(text))
        except QueryError as exc:
            raise HTTPError(400, str(exc)) from exc
        if not raw_queries:
            _write_response(
                writer, 200, b"", content_type="application/x-ndjson", keep_alive=keep_alive
            )
            return 200

        cost = len(raw_queries)
        decision = self._admission.try_admit(self._tenant(request), cost)
        if decision != ADMITTED:
            return self._rejection(writer, decision, keep_alive)
        try:
            translated, failed = translate_queries(raw_queries, self._builder)
            failures = dict(failed)
            relabel = self._relabel()
            _write_head(
                writer,
                200,
                (
                    ("Content-Type", "application/x-ndjson"),
                    ("Transfer-Encoding", "chunked"),
                    ("Connection", "keep-alive" if keep_alive else "close"),
                ),
            )
            stream = self._engine.astream(
                translated, batch_size=self._config.stream_batch_size
            )
            try:
                for index, (raw_source, raw_target, k) in enumerate(raw_queries):
                    if index in failures:
                        outcome = QueryOutcome(
                            source=raw_source,
                            target=raw_target,
                            k=k,
                            error=failures[index],
                        )
                        record = outcome_record(outcome)
                    else:
                        outcome = await stream.__anext__()
                        record = outcome_record(outcome, relabel=relabel)
                    self._write_chunk(writer, _json_body(record))
                    await writer.drain()
            finally:
                await stream.aclose()
            writer.write(b"0\r\n\r\n")
        finally:
            self._admission.release(cost)
        return 200

    def _translate_edges(self, entries: object, key: str) -> list:
        """Validate one ``insert``/``delete`` list, relabelling if needed."""
        if not isinstance(entries, list):
            raise HTTPError(400, f"{key!r} must be a JSON array of [u, v] pairs")
        edges = []
        for entry in entries:
            if not isinstance(entry, list) or len(entry) != 2:
                raise HTTPError(400, f"{key} entry {entry!r} is not a [u, v] pair")
            u, v = entry
            if self._builder is not None:
                try:
                    u = self._builder.vertex_id(u)
                    v = self._builder.vertex_id(v)
                except GraphError as exc:
                    raise HTTPError(400, str(exc)) from exc
            edges.append((u, v))
        return edges

    async def _handle_mutate(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> int:
        text = self._decode_body(request)
        try:
            payload = json.loads(text) if text.strip() else {}
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise HTTPError(400, "POST /mutate expects a JSON object")
        unknown = set(payload) - {"insert", "delete"}
        if unknown:
            raise HTTPError(
                400,
                f"unknown mutate keys {sorted(unknown)}; "
                f"expected 'insert' and/or 'delete'",
            )
        inserts = self._translate_edges(payload.get("insert", []), "insert")
        deletes = self._translate_edges(payload.get("delete", []), "delete")
        try:
            delta = GraphDelta(inserts=inserts, deletes=deletes)
        except GraphError as exc:
            raise HTTPError(400, str(exc)) from exc

        # Mutations take one admission slot: a drain therefore waits for
        # in-flight mutations exactly like in-flight queries (and answers
        # new ones 503), and overload sheds them with 429 before they can
        # contend with query traffic.
        decision = self._admission.try_admit(self._tenant(request))
        if decision != ADMITTED:
            return self._rejection(writer, decision, keep_alive)
        try:
            # The union-graph BFS + re-key runs off the event loop so
            # concurrent connections keep being served during a mutation.
            loop = asyncio.get_running_loop()
            try:
                report = await loop.run_in_executor(
                    None, self._engine.apply_delta, delta
                )
            except EdgeError as exc:
                raise HTTPError(400, str(exc)) from exc
        finally:
            self._admission.release()
        _write_response(writer, 200, _json_body(report.to_dict()), keep_alive=keep_alive)
        return 200

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")

    def _decode_body(self, request: Request) -> str:
        try:
            return request.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HTTPError(400, "request body is not valid UTF-8") from exc

    def __repr__(self) -> str:
        bound = self._address if self._address is not None else "unbound"
        return f"HTTPFrontend(address={bound}, admission={self._admission!r})"
