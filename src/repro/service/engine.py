"""The SPG serving engine: cache + batch planner + pluggable executor.

:class:`SPGEngine` owns one :class:`~repro.graph.digraph.DiGraph` and one
:class:`~repro.core.eve.EVEConfig` and answers single queries
(:meth:`SPGEngine.query`), batches (:meth:`SPGEngine.run_batch` /
:meth:`SPGEngine.run_batch_async`) and streamed workloads
(:meth:`SPGEngine.run_stream` / :meth:`SPGEngine.astream`).  Batches execute
on a pluggable :class:`~repro.service.executor.ExecutorBackend` (``serial``,
``thread``, ``process`` or ``async``); four guarantees hold regardless of
cache state, planning, backend or parallelism:

* **identical answers** — every result equals what a cold per-query
  :func:`repro.core.eve.build_spg` on the same graph/config returns;
* **deterministic ordering** — ``run_batch`` returns outcomes in input
  order, whatever the pool does;
* **error isolation** — one bad query (unknown vertex, ``s == t``, ...)
  yields an errored :class:`QueryOutcome`; the rest of the batch is
  unaffected;
* **backend equivalence** — every backend produces the same
  :class:`BatchReport` (the differential harness in
  ``tests/test_executor_backends.py`` enforces this).

Process-backend mechanics: the engine builds its pool with an initializer
that installs the (pickled or fork-shared) graph, the config, and one
worker-local :class:`~repro.service.scratch.ScratchPool` of
:class:`~repro.core.eve.QueryScratch` bundles (distance + essential
propagation flat buffers) per worker; each
planned group then crosses the boundary as a small picklable payload, and
every payload carries the parent graph's fingerprint so a desynchronised
worker fails loudly instead of answering against a stale graph.  Worker
tasks come back as :class:`GroupExecution` payloads — the per-query
entries plus the counter delta the worker's scratch pool recorded (and
drained trace events when tracing is on) — which ``_finalize_batch`` folds
into the parent's :class:`~repro.service.stats.EngineStats` and tracer, so
pool-side work is visible in the same place as in-process work.
"""

from __future__ import annotations

import asyncio
import atexit
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from threading import Lock
from typing import (
    AsyncIterator,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro._types import Edge, Vertex
from repro.core.distances import backward_distance_map, bounded_multi_source_distances
from repro.core.eve import EVE, EVEConfig
from repro.core.result import SimplePathGraphResult
from repro.exceptions import QueryError
from repro.graph.delta import GraphDelta
from repro.graph.delta import apply_delta as apply_graph_delta
from repro.graph.digraph import DiGraph
from repro.graph.shm import (
    AttachedGraphSegment,
    SharedGraphDescriptor,
    SharedGraphSegment,
    attach_shared_graph,
)
from repro.queries.workload import Query
from repro.service.cache import CacheKey, ResultCache, make_cache_key
from repro.service.executor import (
    Call,
    ExecutorBackend,
    TaskError,
    create_backend,
    default_worker_count,
    resolve_backend_name,
)
from repro.service.planner import BatchPlan, QueryGroup, plan_batch
from repro.service.scratch import ScratchPool
from repro.service.stats import EngineStats
from repro.telemetry import TraceEvent, Tracer

__all__ = [
    "EngineConfig",
    "QueryOutcome",
    "BatchReport",
    "DeltaReport",
    "GroupExecution",
    "SPGEngine",
]

QueryLike = object  # (s, t, k) tuple/list, Query, or {"source", "target", "k"} mapping

#: ``(plan position, result, exception, latency seconds, reused backward)``
GroupResult = List[
    Tuple[int, Optional[SimplePathGraphResult], Optional[BaseException], float, bool]
]


@dataclass(frozen=True)
class EngineConfig:
    """One bundle of every knob an :class:`SPGEngine` deployment exposes.

    Collects the EVE algorithm switches (notably ``strategy``, the
    Figure-11 distance-search ablation axis) and the serving-layer tuning in
    a single declarative object, so CLI flags, config files and tests can
    construct engines from data.  ``SPGEngine.from_config(graph, config)``
    is the companion constructor.

    ``executor_backend`` selects how batches execute (see
    :data:`repro.service.executor.EXECUTOR_BACKENDS`); ``None`` defers to
    the ``REPRO_EXECUTOR_BACKEND`` environment variable and finally to
    ``"thread"``.  Note that process workers only ever receive the graph
    plus the :meth:`eve_config` slice of this config — the serving-layer
    knobs (cache, planner, pool sizing) live exclusively in the parent.

    ``num_shards`` selects partition-parallel serving: ``None`` defers to
    the ``REPRO_SHARD_COUNT`` environment variable (unset/0 = unsharded);
    any positive count makes :meth:`SPGEngine.from_config` build a
    :class:`repro.service.shard.ShardedSPGEngine`.  ``shared_memory``
    controls whether process-pool workers receive the graph through a
    :class:`repro.graph.shm.SharedGraphSegment` (``None`` = automatic:
    enabled whenever the platform supports it, with a silent fallback to
    the pickled-graph path; ``True`` = required; ``False`` = never).
    """

    strategy: str = "adaptive"
    forward_looking: bool = True
    search_ordering: bool = True
    verify: bool = True
    cache_size: int = 1024
    max_workers: Optional[int] = None
    min_group_size: int = 2
    latency_window: int = 4096
    executor_backend: Optional[str] = None
    num_shards: Optional[int] = None
    shared_memory: Optional[bool] = None
    compact_threshold: int = 4096

    def eve_config(self) -> EVEConfig:
        """The :class:`~repro.core.eve.EVEConfig` slice of this config."""
        return EVEConfig(
            distance_strategy=self.strategy,
            forward_looking=self.forward_looking,
            search_ordering=self.search_ordering,
            verify=self.verify,
        )

    def engine_kwargs(self) -> Dict[str, object]:
        """The serving-layer keyword arguments of this config.

        Everything :class:`SPGEngine` (and its sharded subclass) accepts
        beyond the graph, the EVE config and the shard count.
        """
        return {
            "cache_size": self.cache_size,
            "max_workers": self.max_workers,
            "min_group_size": self.min_group_size,
            "latency_window": self.latency_window,
            "executor_backend": self.executor_backend,
            "shared_memory": self.shared_memory,
            "compact_threshold": self.compact_threshold,
        }


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`SPGEngine.apply_delta` call did.

    ``inserted``/``deleted`` count the *effective* edge changes (requested
    edges that were already present / already absent are idempotent no-ops,
    tallied in the ``skipped_*`` fields).  ``cache_invalidated`` /
    ``cache_retained`` describe the scoped invalidation outcome over the
    entries that were keyed on the pre-delta graph.  ``noop`` deltas leave
    the graph, epoch and cache untouched.
    """

    epoch: int
    inserted: int
    deleted: int
    skipped_inserts: int
    skipped_deletes: int
    cache_invalidated: int
    cache_retained: int
    compacted: bool
    noop: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (the shape ``POST /mutate`` responds with)."""
        return {
            "epoch": self.epoch,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "skipped_inserts": self.skipped_inserts,
            "skipped_deletes": self.skipped_deletes,
            "cache_invalidated": self.cache_invalidated,
            "cache_retained": self.cache_retained,
            "compacted": self.compacted,
            "noop": self.noop,
        }


@dataclass
class QueryOutcome:
    """The outcome of one query inside a batch.

    Exactly one of ``result`` / ``error`` is set.  ``cached`` covers both
    engine-cache hits and in-batch deduplication (the same query appearing
    twice in one batch is computed once).
    """

    source: Vertex
    target: Vertex
    k: int
    result: Optional[SimplePathGraphResult] = None
    error: Optional[str] = None
    cached: bool = False
    reused_backward: bool = False
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def edges(self) -> Set[Edge]:
        """The answer edge set (empty for errored queries)."""
        return self.result.edges if self.result is not None else set()


@dataclass
class BatchReport:
    """Outcomes of one batch, in input order, plus plan/cache accounting."""

    outcomes: List[QueryOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    planned_groups: int = 0
    shared_groups: int = 0
    reused_backward_passes: int = 0
    cache_hits: int = 0
    errors: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[QueryOutcome]:
        return iter(self.outcomes)

    def results(self) -> List[Optional[SimplePathGraphResult]]:
        """Per-query results in input order (``None`` for errored queries)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def num_ok(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)


@dataclass
class GroupExecution:
    """Picklable result of one worker-side task group: entries + telemetry.

    ``entries`` is the usual :data:`GroupResult`; ``counters`` is the stats
    delta the worker measured while running the group (scratch checkouts,
    sharded backward passes — the keys
    :meth:`repro.service.stats.EngineStats.merge_counters` accepts), and
    ``events`` carries the worker tracer's drained spans when the parent
    requested tracing.  Results already ship their
    :class:`~repro.core.result.PhaseStats` breakdown, so phase *histograms*
    need no worker-side transport — only the counters recorded inside the
    worker do.
    """

    entries: GroupResult
    counters: Dict[str, int] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)


def _active_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Normalise a disabled tracer (e.g. ``NOOP_TRACER``) to ``None``.

    The engine and the EVE driver gate every telemetry site on a single
    ``tracer is not None`` check, so folding disabled tracers into ``None``
    here keeps the disabled hot path to exactly one branch per site — no
    attribute dicts are built and no no-op methods are called.
    """
    if tracer is None or not getattr(tracer, "enabled", True):
        return None
    return tracer


# ----------------------------------------------------------------------
# Group execution, shared by every backend
# ----------------------------------------------------------------------
def _execute_group(
    graph: DiGraph,
    config: EVEConfig,
    group: QueryGroup,
    borrow_scratch,
    shared_backward_for=None,
    tracer: Optional[Tracer] = None,
) -> GroupResult:
    """Run one planned group sequentially, isolating per-query errors.

    ``borrow_scratch`` is a zero-argument context manager factory yielding a
    :class:`~repro.core.eve.QueryScratch` for one query (the engine's pool
    in-process, a worker-local scratch across the process boundary), which
    :meth:`EVE.query` consumes for both its distance and its propagation
    buffers.  Returns
    ``(plan position, result, exception, latency, reused)`` tuples.  The
    shared backward pass is computed once for groups the planner marked
    ``shared`` — by ``shared_backward_for(target, k)`` when a provider is
    given (the sharded engine's halo-exchange pass), otherwise by the
    whole-graph :func:`repro.core.distances.backward_distance_map`; both
    produce identical distances.  When that precomputation itself fails
    (e.g. the common target is not a vertex), each query falls through to
    the cold path and reports the error individually.  ``tracer``
    optionally records the per-phase spans of every executed query (see
    :meth:`repro.core.eve.EVE.query`).
    """
    shared = None
    if group.shared:
        try:
            if shared_backward_for is not None:
                shared = shared_backward_for(group.target, group.k)
            else:
                shared = backward_distance_map(graph, group.target, group.k)
        except Exception:
            shared = None
    engine = EVE(graph, config)
    out: GroupResult = []
    for planned in group.queries:
        reused = shared is not None
        query_started = time.perf_counter()
        try:
            with borrow_scratch() as scratch:
                result = engine.query(
                    planned.source,
                    planned.target,
                    planned.k,
                    shared_backward=shared,
                    scratch=scratch,
                    tracer=tracer,
                )
        except Exception as exc:  # noqa: BLE001 - per-query isolation
            out.append(
                (planned.index, None, exc, time.perf_counter() - query_started, reused)
            )
        else:
            out.append(
                (planned.index, result, None, time.perf_counter() - query_started, reused)
            )
    return out


# ----------------------------------------------------------------------
# Process-backend worker state (one copy per worker process)
# ----------------------------------------------------------------------
_worker_graph: Optional[DiGraph] = None
_worker_config: Optional[EVEConfig] = None
_worker_scratch: Optional[ScratchPool] = None
_worker_attached: Optional[AttachedGraphSegment] = None
_worker_cleanup_registered = False


def _init_process_worker(graph: DiGraph, config: EVEConfig) -> None:
    """Pool initializer: install the graph, config and scratch in this worker.

    Runs exactly once per worker process — the one-time pickling (or
    ``fork`` copy-on-write share) of the graph that replaces any per-task
    graph shipping.  The CSR views and fingerprint are warmed eagerly so the
    first served group does not pay the O(m) rebuild.  The scratch lives in
    a worker-local *standalone* :class:`~repro.service.scratch.ScratchPool`
    (it records its own counters), so each task can report the pool-counter
    delta it caused back to the parent.
    """
    global _worker_graph, _worker_config, _worker_scratch
    graph.csr()
    graph.csr_reverse()
    graph.fingerprint()
    _worker_graph = graph
    _worker_config = config
    _worker_scratch = ScratchPool()


def _release_worker_state() -> None:
    """Drop worker-held graph state and unmap any attached shared segment.

    Registered via ``atexit`` in shared-memory workers: the CSR views alias
    the mapped block, so the mapping must be released only after every view
    is unreachable — otherwise interpreter teardown trips over exported
    buffers and prints spurious ``BufferError`` noise.
    """
    global _worker_graph, _worker_config, _worker_scratch, _worker_attached
    _worker_graph = None
    _worker_config = None
    _worker_scratch = None
    try:
        # The sharded worker's shard set slices the same block.
        from repro.service import shard as _shard_module

        _shard_module._worker_shard_set = None
    except Exception:  # pragma: no cover - shard layer absent mid-teardown
        pass
    attached = _worker_attached
    _worker_attached = None
    if attached is not None:
        attached.close()


def _attach_worker_graph(descriptor: SharedGraphDescriptor) -> DiGraph:
    """Attach this worker to a shared graph segment (zero-copy, untracked).

    The returned :class:`~repro.graph.shm.CSRGraphView` serves adjacency
    straight from the shared block — no per-worker unpickling or adjacency
    rebuild.  The attachment is kept in module state and released at worker
    exit; the *creator* (the parent engine) owns the block's unlink.
    """
    global _worker_attached, _worker_cleanup_registered
    if _worker_attached is not None:
        _worker_attached.close()
        _worker_attached = None
    attached = attach_shared_graph(descriptor)
    _worker_attached = attached
    if not _worker_cleanup_registered:
        atexit.register(_release_worker_state)
        _worker_cleanup_registered = True
    return attached.graph


def _init_shared_process_worker(
    descriptor: SharedGraphDescriptor, config: EVEConfig
) -> None:
    """Pool initializer for shared-memory workers: attach instead of unpickle."""
    _init_process_worker(_attach_worker_graph(descriptor), config)


def _worker_graph_probe() -> Dict[str, object]:
    """Diagnostic task payload: how this worker holds its graph.

    Used by the sharding tests and the RSS benchmark leg to assert that
    shared-memory workers serve a zero-copy view (``shared=True``) instead
    of an unpickled graph, and to read the worker's peak RSS.
    """
    import resource

    from repro.graph.shm import CSRGraphView

    graph = _worker_graph
    return {
        "graph_type": None if graph is None else type(graph).__name__,
        "shared": isinstance(graph, CSRGraphView),
        "fingerprint": None if graph is None else graph.fingerprint(),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


@contextmanager
def _worker_borrow():
    """Borrow from this worker's scratch pool (kept for the shard layer)."""
    with _worker_scratch.borrow() as scratch:
        yield scratch


def _scratch_counter_delta(
    pool: ScratchPool, allocations_before: int, reuses_before: int
) -> Dict[str, int]:
    """The :meth:`EngineStats.merge_counters` delta one task caused.

    A :class:`~repro.core.eve.QueryScratch` bundle carries the distance,
    propagation and verification buffers, so one checkout counts once under
    each counter pair — mirroring what an engine-attached pool records.
    """
    allocations = pool.allocations - allocations_before
    reuses = pool.reuses - reuses_before
    counters: Dict[str, int] = {}
    if allocations:
        counters["scratch_allocations"] = allocations
        counters["propagation_scratch_allocations"] = allocations
        counters["verification_scratch_allocations"] = allocations
    if reuses:
        counters["scratch_reuses"] = reuses
        counters["propagation_scratch_reuses"] = reuses
        counters["verification_scratch_reuses"] = reuses
    return counters


def _process_run_group(
    fingerprint: str, group: QueryGroup, trace: bool = False
) -> GroupExecution:
    """Worker-side group runner for the process backend.

    ``fingerprint`` is the parent engine's view of the served graph; a
    mismatch means this worker was initialised against a different graph
    (e.g. a swap raced pool construction) and must fail loudly rather than
    silently answer against stale data.  Returns a :class:`GroupExecution`
    so the scratch-counter delta (and trace events, when ``trace`` is set)
    reach the parent's stats instead of dying with the worker.
    """
    if _worker_graph is None or _worker_config is None:
        raise RuntimeError("process worker used before initialisation")
    if fingerprint != _worker_graph.fingerprint():
        raise RuntimeError(
            f"process worker graph fingerprint {_worker_graph.fingerprint()} "
            f"does not match batch fingerprint {fingerprint}"
        )
    pool = _worker_scratch
    allocations_before, reuses_before = pool.allocations, pool.reuses
    tracer = Tracer() if trace else None
    entries = _execute_group(
        _worker_graph, _worker_config, group, pool.borrow, tracer=tracer
    )
    return GroupExecution(
        entries=entries,
        counters=_scratch_counter_delta(pool, allocations_before, reuses_before),
        events=tracer.drain() if tracer is not None else [],
    )


def _bind_segment_to_backend(
    backend: ExecutorBackend, segment: SharedGraphSegment
) -> None:
    """Tie a segment's unlink to ``backend.close()`` (transient pools).

    Transient backends are closed by their checkout site's ``finally`` (or
    the stream holder), which knows nothing about shared memory; wrapping
    ``close`` keeps that contract.  Pool teardown runs first — workers
    hold attachments — then the segment unlinks (at most once; its own GC
    finalizer covers a backend that is dropped without ``close()``).
    """
    original_close = backend.close

    def close_with_segment() -> None:
        original_close()
        segment.close()

    backend.close = close_with_segment


def _release_backend(
    backend: ExecutorBackend, segment: Optional[SharedGraphSegment]
) -> None:
    """Finalizer body for engines dropped without ``close()``.

    Reaps the worker pool first (workers hold attachments into the
    segment), then unlinks the shared block — at most once, the segment's
    own finalizer guards repeats.
    """
    backend.close()
    if segment is not None:
        segment.close()


def _warm_backend(backend: ExecutorBackend) -> ExecutorBackend:
    """Eagerly spawn a backend's workers when it supports warming.

    The async entry points call this from a helper thread so a cold process
    pool's worker start-up (forkserver round trip + per-worker graph
    pickling) never stalls the event loop; warmed pools return immediately.
    """
    warm = getattr(backend, "warm", None)
    if warm is not None:
        warm()
    return backend


class _TransientStreamBackend:
    """Holder for a stream's width-override backend, revalidated per chunk.

    Mirrors ``SPGEngine._ensure_backend`` for the transient case: a process
    backend whose pool broke, or whose workers were initialised against a
    graph the engine has since swapped away from, is closed and rebuilt so
    the remainder of the stream keeps answering instead of erroring on the
    worker-side fingerprint check.
    """

    def __init__(self, engine: "SPGEngine", max_workers: int) -> None:
        self._engine = engine
        self._max_workers = max_workers
        self._backend: Optional[ExecutorBackend] = None
        self._fingerprint: Optional[str] = None

    def get(self) -> ExecutorBackend:
        engine = self._engine
        graph = engine._graph
        backend = self._backend
        if backend is not None and engine._backend_is_stale(
            backend, self._fingerprint, graph
        ):
            backend.close()
            backend = None
        if backend is None:
            backend = engine._build_backend(self._max_workers, graph)
            self._backend = backend
            self._fingerprint = engine._batch_fingerprint(graph)
        return backend

    def get_warm(self) -> ExecutorBackend:
        """:meth:`get` plus an eager worker spawn (see :func:`_warm_backend`)."""
        return _warm_backend(self.get())

    def close(self) -> None:
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    async def aclose(self) -> None:
        backend = self._backend
        self._backend = None
        if backend is not None:
            await backend.aclose()


@dataclass
class _PreparedBatch:
    """Everything ``run_batch`` computes before tasks are handed to a backend."""

    graph: DiGraph
    fingerprint: str
    normalized: List[Optional[Tuple[Vertex, Vertex, int]]]
    outcomes: List[Optional[QueryOutcome]]
    pending: Dict[CacheKey, List[int]]
    primaries: List[Tuple[CacheKey, int]]
    plan: BatchPlan
    use_cache: bool


class SPGEngine:
    """A serving engine for SPG queries over one (mostly static) graph.

    Parameters
    ----------
    graph:
        The graph to serve; swap it later with :meth:`set_graph`.
    config:
        EVE tuning switches shared by every query this engine answers.
    cache_size:
        Maximum LRU entries; ``0`` disables the result cache entirely.
    max_workers:
        Default pool size for batches (``None`` = available CPUs, capped).
    min_group_size:
        Smallest ``(target, k)`` group that precomputes a shared backward
        pass (must be >= 2).
    executor_backend:
        One of :data:`repro.service.executor.EXECUTOR_BACKENDS`.  ``None``
        defers to ``$REPRO_EXECUTOR_BACKEND``, then ``"thread"``.  The
        ``process`` backend is the one that actually runs CPU-bound EVE
        queries on multiple cores (threads are GIL-bound); it pays a
        one-time pool spin-up + graph share per served graph, so it wins on
        multi-query CPU-bound batches and loses on tiny ones.  Pools are
        built lazily, kept warm across batches, and released by
        :meth:`close` (the engine is also a context manager).
    shared_memory:
        How process workers receive the served graph.  ``None`` (default)
        = automatic: the persistent pool's workers attach to a
        :class:`repro.graph.shm.SharedGraphSegment` zero-copy when the
        platform supports it, with a silent fallback to the pickled-graph
        initializer.  ``True`` requires the segment (construction of the
        pool raises when shared memory is unavailable); ``False`` always
        pickles.  Irrelevant for in-process backends.
    compact_threshold:
        Net overlay size (insert + delete edges relative to the last
        compacted base) at which :meth:`apply_delta` folds the
        :class:`~repro.graph.delta.DeltaOverlayView` into a fresh base
        graph.  Compaction is O(1) (the merged storage already exists) and
        keeps the lineage fingerprint, so caches and warm pools survive it;
        the threshold only bounds overlay bookkeeping and per-delta
        fingerprint hashing.
    tracer:
        Optional :class:`repro.telemetry.Tracer`.  When set, every cache
        miss records its per-phase spans into it — in-process queries
        directly, process-pool queries via a worker-local tracer whose
        events are merged back with the task result.  ``None`` (default)
        disables tracing; the hot path then pays one ``is not None`` check
        per telemetry site.  Also settable later via the ``tracer``
        property (taking effect from the next query/batch).
    """

    def __init__(
        self,
        graph: DiGraph,
        config: Optional[EVEConfig] = None,
        *,
        cache_size: int = 1024,
        max_workers: Optional[int] = None,
        min_group_size: int = 2,
        latency_window: int = 4096,
        executor_backend: Optional[str] = None,
        shared_memory: Optional[bool] = None,
        compact_threshold: int = 4096,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        self._graph = graph
        self._config = config or EVEConfig()
        self._cache = ResultCache(cache_size) if cache_size > 0 else None
        self._stats = EngineStats(latency_window)
        self._scratch = ScratchPool(self._stats)
        self._tracer = _active_tracer(tracer)
        self._max_workers = max_workers
        self._min_group_size = min_group_size
        self._swap_lock = Lock()
        # Serializes apply_delta callers (mutations are read-modify-write
        # on the served graph); queries never take it.
        self._delta_lock = Lock()
        self._graph_epoch = 0
        self._compact_threshold = compact_threshold
        # Fail fast on bad names instead of at first batch.
        self._backend_name = resolve_backend_name(executor_backend)
        self._shared_memory = shared_memory
        self._backend: Optional[ExecutorBackend] = None
        self._backend_fingerprint: Optional[str] = None
        self._backend_finalizer: Optional[weakref.finalize] = None
        self._backend_lock = Lock()
        self._segment: Optional[SharedGraphSegment] = None
        # Validate eagerly so a bad value fails at construction time.
        plan_batch([], min_group_size=min_group_size)
        self._warm_graph(graph)

    @staticmethod
    def _warm_graph(graph: DiGraph) -> None:
        """Force the graph's lazy caches on the caller thread.

        The CSR views (and fingerprint) are built lazily and without
        synchronization; warming them here keeps a cold batch's worker
        threads from all racing to rebuild the same O(m) arrays.
        """
        graph.csr()
        graph.csr_reverse()
        graph.fingerprint()

    @classmethod
    def from_config(cls, graph: DiGraph, config: Optional[EngineConfig] = None) -> "SPGEngine":
        """Build an engine from one declarative :class:`EngineConfig`.

        When the resolved shard count (``config.num_shards``, falling back
        to ``$REPRO_SHARD_COUNT``) is positive, the returned engine is a
        :class:`repro.service.shard.ShardedSPGEngine` — same graph, same
        answers, partition-parallel backward passes.
        """
        config = config or EngineConfig()
        # Local import: repro.service.shard builds on this module.
        from repro.service.shard import ShardedSPGEngine, resolve_shard_count

        num_shards = resolve_shard_count(config.num_shards)
        if num_shards:
            engine_cls = cls if issubclass(cls, ShardedSPGEngine) else ShardedSPGEngine
            return engine_cls(
                graph,
                config.eve_config(),
                num_shards=num_shards,
                **config.engine_kwargs(),
            )
        return cls(graph, config.eve_config(), **config.engine_kwargs())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        return self._graph

    @property
    def graph_epoch(self) -> int:
        """Number of effective deltas applied since construction."""
        return self._graph_epoch

    @property
    def config(self) -> EVEConfig:
        return self._config

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def stats(self) -> EngineStats:
        return self._stats

    @property
    def scratch_pool(self) -> ScratchPool:
        return self._scratch

    @property
    def tracer(self) -> Optional[Tracer]:
        """The engine's tracer, or ``None`` when tracing is off."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Optional[Tracer]) -> None:
        self._tracer = _active_tracer(tracer)

    @property
    def executor_backend(self) -> str:
        """Name of the backend batches execute on."""
        return self._backend_name

    def stats_snapshot(self) -> Dict[str, object]:
        """Engine counters plus cache counters, as one JSON-friendly dict."""
        snapshot = self._stats.snapshot()
        snapshot["cache"] = self._cache.stats() if self._cache is not None else None
        snapshot["executor_backend"] = self._backend_name
        return snapshot

    # ------------------------------------------------------------------
    # Backend lifecycle
    # ------------------------------------------------------------------
    def _batch_fingerprint(self, graph: DiGraph) -> str:
        """The serving-identity fingerprint batches and caches key on.

        For the plain engine this is the graph fingerprint; the sharded
        subclass derives a partition fingerprint from it, so cache entries
        and process-pool staleness checks distinguish shard layouts.
        """
        return graph.fingerprint()

    def _worker_init(self, graph: DiGraph) -> Tuple[object, Tuple[object, ...]]:
        """``(initializer, initargs)`` for pickled-graph process workers."""
        return _init_process_worker, (graph, self._config)

    def _shared_worker_init(
        self, descriptor: SharedGraphDescriptor
    ) -> Tuple[object, Tuple[object, ...]]:
        """``(initializer, initargs)`` for shared-memory process workers."""
        return _init_shared_process_worker, (descriptor, self._config)

    def _create_segment(self, graph: DiGraph) -> Optional[SharedGraphSegment]:
        """Build the shared CSR segment for ``graph``, honouring the knob.

        ``shared_memory=None`` treats an allocation failure as "platform
        does not support it" and falls back to pickled workers; an explicit
        ``True`` propagates the failure.
        """
        if self._shared_memory is False:
            return None
        try:
            return SharedGraphSegment(graph)
        except Exception:
            if self._shared_memory:
                raise
            return None

    def _build_backend(
        self, max_workers: Optional[int], graph: Optional[DiGraph] = None
    ) -> ExecutorBackend:
        """Build one *transient* backend (per-batch/stream width overrides).

        Transient pools have no engine-tracked lifecycle slot for a
        shared-memory block, so under the automatic setting they use the
        pickled-graph initializer and only :meth:`_build_persistent_backend`
        attaches workers to a tracked segment.  An explicit
        ``shared_memory=True`` is a contract, though — workers must never
        hold a pickled graph copy — so that case builds a segment here too
        and ties its unlink to the backend's own ``close()``.
        """
        if self._backend_name != "process":
            return create_backend(self._backend_name, max_workers)
        graph = self._graph if graph is None else graph
        if self._shared_memory:
            segment = SharedGraphSegment(graph)  # required: failures propagate
            initializer, initargs = self._shared_worker_init(segment.descriptor)
            backend = create_backend(
                "process", max_workers, initializer=initializer, initargs=initargs
            )
            _bind_segment_to_backend(backend, segment)
            return backend
        initializer, initargs = self._worker_init(graph)
        return create_backend(
            "process", max_workers, initializer=initializer, initargs=initargs
        )

    def _build_persistent_backend(
        self, max_workers: Optional[int], graph: DiGraph
    ) -> ExecutorBackend:
        """Build the engine-owned backend, with shared-memory workers.

        When the segment can be created (see :meth:`_create_segment`), the
        pool initializer attaches each worker to it zero-copy and the
        segment is tracked in ``self._segment`` — closed on staleness
        rebuilds, :meth:`close` and the GC finalizer.  Otherwise this
        degrades to the transient (pickled-graph) builder.
        """
        if self._backend_name == "process":
            segment = self._create_segment(graph)
            if segment is not None:
                initializer, initargs = self._shared_worker_init(segment.descriptor)
                backend = create_backend(
                    "process", max_workers, initializer=initializer, initargs=initargs
                )
                self._segment = segment
                return backend
        return self._build_backend(max_workers, graph)

    def _backend_is_stale(
        self,
        backend: ExecutorBackend,
        recorded_fingerprint: Optional[str],
        graph: DiGraph,
    ) -> bool:
        """Whether ``backend`` can no longer serve ``graph`` and must rebuild.

        Only the process backend can go stale: its workers are pinned to
        the graph they were initialised with (compared by fingerprint) and
        its pool can break on a worker death.  In-process backends share
        the parent's memory and never need rebuilding.
        """
        return self._backend_name == "process" and (
            getattr(backend, "broken", False)
            or recorded_fingerprint != self._batch_fingerprint(graph)
        )

    def _is_default_width(self, max_workers: int) -> bool:
        """Whether an explicit width equals the engine's resolved default."""
        configured = (
            self._max_workers
            if self._max_workers is not None
            else default_worker_count()
        )
        return max_workers == configured

    def _ensure_backend(self) -> ExecutorBackend:
        """Return the persistent backend, (re)building it when necessary.

        A process backend is pinned to the graph its workers were
        initialised with: swapping to a graph with a different fingerprint
        (or a broken pool after a worker death) closes the old pool and
        lazily builds a fresh one.  Thread/serial/async backends share the
        parent's memory and survive swaps untouched.  The graph is read
        exactly once so a swap racing this method cannot record a
        fingerprint for a pool initialised against a different graph; a
        batch prepared against the other graph then fails loudly on the
        worker-side fingerprint check and the *next* batch rebuilds.
        """
        with self._backend_lock:
            graph = self._graph
            backend = self._backend
            if backend is not None and self._backend_is_stale(
                backend, self._backend_fingerprint, graph
            ):
                backend.close()
                backend = None
                self._close_segment()
            if backend is None:
                backend = self._build_persistent_backend(self._max_workers, graph)
                self._backend = backend
                self._backend_fingerprint = self._batch_fingerprint(graph)
                # Engines dropped without close() must not leak warm pools
                # (process workers would outlive the engine until exit) or
                # shared-memory blocks (which would outlive the *machine
                # boot* without an unlink).  Exactly one finalizer is kept:
                # the superseded one is detached so rebuilds do not
                # accumulate dead backends.
                if self._backend_finalizer is not None:
                    self._backend_finalizer.detach()
                self._backend_finalizer = weakref.finalize(
                    self, _release_backend, backend, self._segment
                )
            return backend

    def _close_segment(self) -> None:
        """Unlink the current shared segment, if any (idempotent)."""
        segment = self._segment
        self._segment = None
        if segment is not None:
            segment.close()

    def _checkout_backend(
        self, max_workers: Optional[int]
    ) -> Tuple[ExecutorBackend, bool]:
        """Return ``(backend, transient)`` for one batch execution.

        ``max_workers=None`` — or any width equal to the engine's resolved
        default — reuses the warm persistent backend; a genuinely different
        width gets a one-shot backend that the caller must close after the
        batch.  With the process backend that one-shot pays pool spin-up
        plus a graph re-ship per call, so steady-state callers should size
        the engine once instead of overriding per batch.
        """
        if max_workers is None or self._is_default_width(max_workers):
            return self._ensure_backend(), False
        return self._build_backend(max_workers), True

    def _checkout_backend_warm(
        self, max_workers: Optional[int]
    ) -> Tuple[ExecutorBackend, bool]:
        """:meth:`_checkout_backend` plus an eager worker spawn.

        Used by the async entry points (from a helper thread): warming a
        cold process pool here means the event loop never blocks on worker
        start-up inside the first ``submit``.
        """
        backend, transient = self._checkout_backend(max_workers)
        return _warm_backend(backend), transient

    def close(self) -> None:
        """Shut down the executor backend (idempotent; pools are released).

        The engine remains usable afterwards — the next batch lazily builds
        a fresh backend — so ``close()`` doubles as a "drop warm workers"
        hint for long-idle engines.
        """
        with self._backend_lock:
            if self._backend is not None:
                self._backend.close()
                self._backend = None
                self._backend_fingerprint = None
            self._close_segment()
            if self._backend_finalizer is not None:
                self._backend_finalizer.detach()
                self._backend_finalizer = None

    def __enter__(self) -> "SPGEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Graph lifecycle
    # ------------------------------------------------------------------
    def set_graph(self, graph: DiGraph, *, clear_cache: bool = False) -> None:
        """Swap the served graph.

        Cache entries are keyed on the graph fingerprint, so entries of the
        old graph can never answer queries against the new one — they age
        out of the LRU naturally.  Pass ``clear_cache=True`` to drop them
        immediately instead (frees memory; swapping *back* to an equal
        graph then starts cold).  A process backend initialised for a
        different graph is rebuilt lazily on the next batch (swapping to an
        *equal* graph keeps its warm workers).
        """
        self._warm_graph(graph)
        with self._swap_lock:
            self._graph = graph
            if clear_cache and self._cache is not None:
                self._cache.clear()

    def clear_cache(self) -> None:
        """Drop every cached result."""
        if self._cache is not None:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Dynamic graphs: epoch-versioned delta application
    # ------------------------------------------------------------------
    def apply_delta(
        self, delta: GraphDelta, *, scoped_invalidation: bool = True
    ) -> DeltaReport:
        """Apply an edge delta to the served graph under live traffic.

        The successor graph is built as a :class:`~repro.graph.delta`
        overlay of the current epoch (shared rows, spliced CSR, lineage
        fingerprint) — or folded into a fresh base via ``compact()`` once
        the net overlay outgrows ``compact_threshold`` — and swapped in
        through :meth:`set_graph`.  The epoch semantics fall out of the
        existing immutability machinery:

        * In-flight queries and batches read ``self._graph`` exactly once
          at admission, so they finish on the epoch they started on;
          checked-out scratch is graph-independent (epoch-stamped buffers).
        * New queries see the new epoch and its fingerprint.
        * A warm process pool serving the old fingerprint is detected by
          the existing staleness guards and rebuilt lazily on the next
          batch; mid-flight tasks on the old pool carry the old
          fingerprint and stay consistent.

        Cache entries keyed on the old fingerprint are migrated with a
        *scoped* invalidation instead of the historical whole-flush: an
        entry ``(s, t, k)`` can only change if some touched edge ``(u,
        v)`` sits on a path of length <= k from ``s`` to ``t``, i.e. if
        ``dist(s, u) + 1 + dist(v, t) <= k``.  Both distances are
        measured in the *union* of the pre- and post-delta graphs (the
        new graph plus the just-deleted edges), which lower-bounds both
        epochs' distances, so the test is conservative: it may
        over-invalidate, never retain a stale entry.  Surviving entries
        are re-keyed to the new fingerprint atomically.  Pass
        ``scoped_invalidation=False`` to drop every old-epoch entry
        instead (the conservative whole-flush).

        Mutations serialize against each other; queries are never
        blocked.  No-op deltas (every edge already present/absent) leave
        the graph, epoch, fingerprint and cache untouched.

        Raises :class:`~repro.exceptions.EdgeError` if the delta names an
        endpoint outside the current graph's vertex range.
        """
        with self._delta_lock:
            old_graph = self._graph
            view = apply_graph_delta(old_graph, delta)
            skipped_inserts = delta.num_inserts - len(view.applied_inserts)
            skipped_deletes = delta.num_deletes - len(view.applied_deletes)
            if view.is_noop:
                report = DeltaReport(
                    epoch=self._graph_epoch,
                    inserted=0,
                    deleted=0,
                    skipped_inserts=skipped_inserts,
                    skipped_deletes=skipped_deletes,
                    cache_invalidated=0,
                    cache_retained=0,
                    compacted=False,
                    noop=True,
                )
                self._stats.record_delta(
                    inserted=0,
                    deleted=0,
                    invalidated=0,
                    retained=0,
                    compacted=False,
                    epoch=self._graph_epoch,
                )
                return report

            compacted = view.overlay_size >= self._compact_threshold
            new_graph: DiGraph = view.compact() if compacted else view
            old_fingerprint = self._batch_fingerprint(old_graph)

            # Scoped invalidation runs its union-graph BFS *before* the
            # swap: the predicate is a pure function over the precomputed
            # distance maps, so the later atomic re-key holds the cache
            # lock only for dict operations.
            keep = None
            if self._cache is not None and scoped_invalidation:
                keep = self._scoped_keep_predicate(
                    new_graph, view.applied_inserts, view.applied_deletes,
                    old_fingerprint,
                )

            self.set_graph(new_graph)
            new_fingerprint = self._batch_fingerprint(new_graph)
            self._graph_epoch += 1
            epoch = self._graph_epoch

            invalidated = retained = 0
            if self._cache is not None:
                invalidated, retained = self._cache.rekey_fingerprint(
                    old_fingerprint, new_fingerprint, keep
                )
            self._stats.record_delta(
                inserted=len(view.applied_inserts),
                deleted=len(view.applied_deletes),
                invalidated=invalidated,
                retained=retained,
                compacted=compacted,
                epoch=epoch,
            )
            return DeltaReport(
                epoch=epoch,
                inserted=len(view.applied_inserts),
                deleted=len(view.applied_deletes),
                skipped_inserts=skipped_inserts,
                skipped_deletes=skipped_deletes,
                cache_invalidated=invalidated,
                cache_retained=retained,
                compacted=compacted,
                noop=False,
            )

    def _scoped_keep_predicate(
        self,
        new_graph: DiGraph,
        inserted: Tuple[Edge, ...],
        deleted: Tuple[Edge, ...],
        old_fingerprint: str,
    ):
        """Build the k-ball keep-predicate for one delta's touched edges.

        ``keep(key)`` is true when the entry's ``(s, t, k)`` ball provably
        misses every touched edge: ``dist(s, nearest touched tail) + 1 +
        dist(nearest touched head, t) > k`` in the union graph (new graph
        plus just-deleted edges).  Distances are computed once per delta
        with two depth-capped multi-source BFS passes — a reverse pass
        from the touched tails and a forward pass from the touched heads —
        capped at ``max cached k - 1``.  Entries with a larger ``k`` than
        any seen at BFS time (a racing put from an in-flight old-epoch
        batch) fail the test and are dropped: over-invalidation is always
        safe.
        """
        assert self._cache is not None
        k_values = [
            key[2] for key in self._cache.keys() if key[4] == old_fingerprint
        ]
        if not k_values:
            return lambda key: False
        k_max = max(k_values)
        touched_tails = {u for u, _ in inserted} | {u for u, _ in deleted}
        touched_heads = {v for _, v in inserted} | {v for _, v in deleted}
        # The union graph = new graph + deleted edges, overlaid without a
        # rebuild: forward BFS gets the deleted edges as extra out-edges,
        # reverse BFS as extra in-edges.
        extra_forward: Dict[Vertex, List[Vertex]] = {}
        extra_reverse: Dict[Vertex, List[Vertex]] = {}
        for u, v in deleted:
            extra_forward.setdefault(u, []).append(v)
            extra_reverse.setdefault(v, []).append(u)
        to_tails = bounded_multi_source_distances(
            new_graph,
            touched_tails,
            max(0, k_max - 1),
            reverse=True,
            extra_adjacency=extra_reverse,
        )
        from_heads = bounded_multi_source_distances(
            new_graph,
            touched_heads,
            max(0, k_max - 1),
            extra_adjacency=extra_forward,
        )

        def keep(key: CacheKey) -> bool:
            source, target, k = key[0], key[1], key[2]
            if k > k_max:
                return False
            distance_to_tail = to_tails.get(source)
            if distance_to_tail is None:
                return True
            distance_from_head = from_heads.get(target)
            if distance_from_head is None:
                return True
            return distance_to_tail + 1 + distance_from_head > k

        return keep

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: Vertex,
        target: Vertex,
        k: int,
        *,
        use_cache: bool = True,
    ) -> SimplePathGraphResult:
        """Answer one query through the cache; exceptions propagate."""
        graph = self._graph
        key = None
        if use_cache and self._cache is not None:
            key = make_cache_key(
                source, target, k, self._config, self._batch_fingerprint(graph)
            )
            hit = self._cache.get(key)
            if hit is not None:
                self._stats.record_query(0.0, cached=True)
                return hit
        started = time.perf_counter()
        try:
            with self._scratch.borrow() as scratch:
                result = EVE(graph, self._config).query(
                    source, target, k, scratch=scratch, tracer=self._tracer
                )
        except Exception:
            self._stats.record_query(
                time.perf_counter() - started, cached=False, error=True
            )
            raise
        self._stats.record_query(
            time.perf_counter() - started,
            cached=False,
            phases=result.phases.by_phase(),
        )
        if key is not None:
            self._cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Iterable[QueryLike],
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> BatchReport:
        """Answer a batch of queries with caching and shared-work planning.

        ``queries`` may hold ``(s, t, k)`` tuples,
        :class:`repro.queries.workload.Query` objects, or mappings with
        ``source`` / ``target`` / ``k`` keys.  Outcomes come back in input
        order; per-query failures — including malformed entries that cannot
        be normalised — are isolated into errored outcomes.  Execution runs
        on the engine's configured backend; the report is identical for
        every backend.
        """
        backend, transient = self._checkout_backend(max_workers)
        try:
            return self._run_batch_on(backend, queries, use_cache)
        finally:
            if transient:
                backend.close()

    async def run_batch_async(
        self,
        queries: Iterable[QueryLike],
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> BatchReport:
        """Awaitable :meth:`run_batch` with an identical report.

        Group execution is offloaded to the engine's backend pool and
        awaited, so the event loop stays responsive while EVE runs; with the
        ``process`` backend the batch is simultaneously async *and* truly
        parallel across cores.  Overlapping calls on one engine are safe —
        cache, stats and scratch pool are thread-safe — and each batch still
        returns outcomes in its own input order.
        """
        loop = asyncio.get_running_loop()
        # Checking out may close, rebuild and warm a stale process pool
        # (blocking teardown, worker spawn, graph re-ship); keep all of it
        # off the event loop thread.
        backend, transient = await loop.run_in_executor(
            None, self._checkout_backend_warm, max_workers
        )
        try:
            return await self._run_batch_async_on(backend, queries, use_cache)
        finally:
            if transient:
                await backend.aclose()

    def run_stream(
        self,
        queries: Iterable[QueryLike],
        *,
        batch_size: int = 64,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> Iterator[QueryOutcome]:
        """Serve an unbounded query stream in bounded-memory chunks.

        Outcomes are yielded in input order; each chunk of ``batch_size``
        queries goes through the full batch pipeline (cache, planner,
        executor), so a stream with repeated or target-grouped queries gets
        the same wins as an explicit batch.
        """
        if batch_size < 1:
            raise QueryError(f"batch_size must be >= 1, got {batch_size}")
        stream_backend = self._checkout_stream_backend(max_workers)

        def flush(chunk: List[QueryLike]) -> BatchReport:
            if stream_backend is not None:
                return self._run_batch_on(stream_backend.get(), chunk, use_cache)
            return self.run_batch(chunk, max_workers=max_workers, use_cache=use_cache)

        try:
            chunk: List[QueryLike] = []
            for query in queries:
                chunk.append(query)
                if len(chunk) >= batch_size:
                    yield from flush(chunk)
                    chunk = []
            if chunk:
                yield from flush(chunk)
        finally:
            if stream_backend is not None:
                stream_backend.close()

    async def astream(
        self,
        queries,
        *,
        batch_size: int = 64,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> AsyncIterator[QueryOutcome]:
        """Async :meth:`run_stream`: accepts sync *or* async query iterables.

        Chunks go through :meth:`run_batch_async`, so consuming the stream
        from an event loop never blocks it on EVE computation; outcomes are
        yielded in input order with the usual per-query error isolation.
        """
        if batch_size < 1:
            raise QueryError(f"batch_size must be >= 1, got {batch_size}")
        stream_backend = self._checkout_stream_backend(max_workers)

        async def flush(chunk: List[QueryLike]) -> BatchReport:
            if stream_backend is not None:
                # get_warm() may close, rebuild and warm a stale pool; runs
                # on a helper thread so none of that blocks the event loop.
                backend = await asyncio.get_running_loop().run_in_executor(
                    None, stream_backend.get_warm
                )
                return await self._run_batch_async_on(backend, chunk, use_cache)
            return await self.run_batch_async(
                chunk, max_workers=max_workers, use_cache=use_cache
            )

        if not hasattr(queries, "__aiter__"):
            sync_queries = queries

            async def aiter_sync():
                for query in sync_queries:
                    yield query

            queries = aiter_sync()

        try:
            chunk: List[QueryLike] = []
            async for query in queries:
                chunk.append(query)
                if len(chunk) >= batch_size:
                    for outcome in await flush(chunk):
                        yield outcome
                    chunk = []
            if chunk:
                for outcome in await flush(chunk):
                    yield outcome
        finally:
            if stream_backend is not None:
                await stream_backend.aclose()

    # ------------------------------------------------------------------
    # Batch internals (shared by the sync and async paths)
    # ------------------------------------------------------------------
    def _run_batch_on(
        self, backend: ExecutorBackend, queries: Iterable[QueryLike], use_cache: bool
    ) -> BatchReport:
        """Run one batch on an already-checked-out backend."""
        started = time.perf_counter()
        prepared = self._prepare_batch(queries, use_cache)
        group_results = backend.run(self._group_tasks(prepared, backend))
        return self._finalize_batch(prepared, group_results, started)

    async def _run_batch_async_on(
        self, backend: ExecutorBackend, queries: Iterable[QueryLike], use_cache: bool
    ) -> BatchReport:
        """Awaitable :meth:`_run_batch_on`."""
        started = time.perf_counter()
        prepared = self._prepare_batch(queries, use_cache)
        group_results = await backend.run_async(self._group_tasks(prepared, backend))
        return self._finalize_batch(prepared, group_results, started)

    def _checkout_stream_backend(
        self, max_workers: Optional[int]
    ) -> Optional[_TransientStreamBackend]:
        """One transient backend holder for a whole stream, or ``None``.

        Streams delegate each chunk to the batch path.  With the persistent
        backend that is the right thing chunk by chunk (the per-chunk
        ensure re-adapts to graph swaps mid-stream), but a width override
        that maps to a *transient* backend must not rebuild a pool — for
        the process backend: respawn workers and re-ship the graph — per
        chunk; it is checked out once here, revalidated per chunk (graph
        swap / broken pool) by the holder, and closed when the stream ends.
        """
        if max_workers is None or self._is_default_width(max_workers):
            return None
        return _TransientStreamBackend(self, max_workers)

    def _prepare_batch(
        self, queries: Iterable[QueryLike], use_cache: bool
    ) -> _PreparedBatch:
        """Normalise, consult the cache, dedupe and plan one batch."""
        raw_queries = list(queries)
        graph = self._graph
        fingerprint = self._batch_fingerprint(graph)

        normalized: List[Optional[Tuple[Vertex, Vertex, int]]] = []
        outcomes: List[Optional[QueryOutcome]] = [None] * len(raw_queries)
        for index, query in enumerate(raw_queries):
            try:
                normalized.append(self._normalize(query))
            except QueryError as exc:
                # Malformed queries are isolated like any other bad query.
                normalized.append(None)
                source, target, k = self._raw_fields(query)
                outcomes[index] = QueryOutcome(
                    source=source, target=target, k=k, error=str(exc)
                )

        pending: Dict[CacheKey, List[int]] = {}
        for index, entry in enumerate(normalized):
            if entry is None:
                continue
            source, target, k = entry
            key = make_cache_key(source, target, k, self._config, fingerprint)
            if use_cache and self._cache is not None:
                hit = self._cache.get(key)
                if hit is not None:
                    outcomes[index] = QueryOutcome(
                        source=source, target=target, k=k, result=hit, cached=True
                    )
                    continue
            pending.setdefault(key, []).append(index)

        # One computation per distinct uncached query; duplicates are filled
        # from the first occurrence afterwards.
        primaries: List[Tuple[CacheKey, int]] = [
            (key, indices[0]) for key, indices in pending.items()
        ]
        plan = plan_batch(
            [normalized[index] for _, index in primaries],
            min_group_size=self._min_group_size,
        )
        return _PreparedBatch(
            graph=graph,
            fingerprint=fingerprint,
            normalized=normalized,
            outcomes=outcomes,
            pending=pending,
            primaries=primaries,
            plan=plan,
            use_cache=use_cache,
        )

    def _group_tasks(
        self, prepared: _PreparedBatch, backend: ExecutorBackend
    ) -> List[Call]:
        """Build one task per planned group, in the backend's task form.

        In-process backends close over the engine (shared scratch pool and
        stats); the process backend gets module-level picklable payloads
        carrying the graph fingerprint for the worker-side staleness check
        plus whether the parent wants trace events shipped back.
        """
        if backend.requires_picklable_tasks:
            trace = self._tracer is not None
            return [
                Call(_process_run_group, (prepared.fingerprint, group, trace))
                for group in prepared.plan.groups
            ]
        graph = prepared.graph
        return [Call(self._run_group, (graph, group)) for group in prepared.plan.groups]

    def _finalize_batch(
        self,
        prepared: _PreparedBatch,
        group_results: List[object],
        started: float,
    ) -> BatchReport:
        """Slot group results back into input order and assemble the report."""
        normalized = prepared.normalized
        outcomes = prepared.outcomes
        pending = prepared.pending
        primaries = prepared.primaries
        use_cache = prepared.use_cache

        tracer = self._tracer
        for group, group_result in zip(prepared.plan.groups, group_results):
            if isinstance(group_result, GroupExecution):
                # Worker-side execution: fold the counter delta (and trace
                # events) into the parent before unwrapping the entries.
                if group_result.counters:
                    self._stats.merge_counters(group_result.counters)
                if group_result.events and tracer is not None:
                    tracer.extend(group_result.events)
                group_result = group_result.entries
            if isinstance(group_result, TaskError):
                # Defensive: group runners isolate per-query errors, so this
                # only fires on unexpected failures (a dead worker process,
                # an unpicklable payload) — blame every query of the group
                # rather than dropping the batch.
                group_result = [
                    (planned.index, None, group_result.error, 0.0, False)
                    for planned in group.queries
                ]
            for position, result, exc, latency, reused in group_result:
                key, outcome_index = primaries[position]
                source, target, k = normalized[outcome_index]
                if exc is not None:
                    outcome = QueryOutcome(
                        source=source,
                        target=target,
                        k=k,
                        error=f"{type(exc).__name__}: {exc}",
                        reused_backward=reused,
                        latency_seconds=latency,
                    )
                else:
                    outcome = QueryOutcome(
                        source=source,
                        target=target,
                        k=k,
                        result=result,
                        reused_backward=reused,
                        latency_seconds=latency,
                    )
                    if use_cache and self._cache is not None:
                        self._cache.put(key, result)
                outcomes[outcome_index] = outcome
                for duplicate_index in pending[key][1:]:
                    # Duplicates of a successful primary are served without
                    # recomputation (a hit); duplicates of a failed one
                    # repeat the error and must not inflate the hit rate.
                    outcomes[duplicate_index] = QueryOutcome(
                        source=source,
                        target=target,
                        k=k,
                        result=result,
                        error=outcome.error,
                        cached=outcome.error is None,
                        reused_backward=reused,
                    )

        report = BatchReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            wall_seconds=time.perf_counter() - started,
            planned_groups=len(prepared.plan.groups),
            shared_groups=prepared.plan.num_shared_groups,
            reused_backward_passes=prepared.plan.reused_backward_passes,
        )
        for outcome in report.outcomes:
            # Phase breakdowns ride inside results, so computed queries
            # record their per-phase histograms here in the parent — the
            # same site for every backend, in-process or pooled.
            computed = not outcome.cached and outcome.result is not None
            self._stats.record_query(
                outcome.latency_seconds,
                cached=outcome.cached,
                error=not outcome.ok,
                reused_backward=outcome.reused_backward,
                phases=outcome.result.phases.by_phase() if computed else None,
            )
            if outcome.cached:
                report.cache_hits += 1
            if not outcome.ok:
                report.errors += 1
        self._stats.record_batch()
        return report

    def _run_group(self, graph: DiGraph, group: QueryGroup) -> GroupResult:
        """In-process group runner: pooled scratch, shared stats and tracer."""
        return _execute_group(
            graph, self._config, group, self._scratch.borrow, tracer=self._tracer
        )

    @staticmethod
    def _normalize(query: QueryLike) -> Tuple[Vertex, Vertex, int]:
        """Coerce one query-like object to an ``(s, t, k)`` integer tuple.

        Raises :class:`QueryError` (never a bare ``ValueError``) so
        ``run_batch`` can isolate malformed queries per entry.
        """
        try:
            if isinstance(query, Query):
                return (int(query.source), int(query.target), int(query.k))
            if isinstance(query, dict):
                try:
                    return (
                        int(query["source"]),
                        int(query["target"]),
                        int(query["k"]),
                    )
                except KeyError as exc:
                    raise QueryError(
                        f"query mapping needs source/target/k keys, got {sorted(query)}"
                    ) from exc
            if isinstance(query, (tuple, list)) and len(query) == 3:
                source, target, k = query
                return (int(source), int(target), int(k))
        except (TypeError, ValueError) as exc:
            raise QueryError(f"non-integer query fields in {query!r}: {exc}") from exc
        raise QueryError(
            "queries must be (source, target, k) triples, Query objects, or "
            f"mappings with source/target/k keys; got {query!r}"
        )

    @staticmethod
    def _raw_fields(query: QueryLike) -> Tuple[object, object, object]:
        """Best-effort ``(source, target, k)`` extraction for error outcomes."""
        if isinstance(query, Query):
            return (query.source, query.target, query.k)
        if isinstance(query, dict):
            return (query.get("source"), query.get("target"), query.get("k", 0))
        if isinstance(query, (tuple, list)) and len(query) == 3:
            return (query[0], query[1], query[2])
        return (None, None, 0)

    def __repr__(self) -> str:
        return (
            f"SPGEngine(graph={self._graph.name!r}, "
            f"vertices={self._graph.num_vertices}, edges={self._graph.num_edges}, "
            f"backend={self._backend_name!r}, "
            f"cache={'off' if self._cache is None else len(self._cache)})"
        )
