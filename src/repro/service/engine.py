"""The SPG serving engine: cache + batch planner + concurrent executor.

:class:`SPGEngine` owns one :class:`~repro.graph.digraph.DiGraph` and one
:class:`~repro.core.eve.EVEConfig` and answers single queries
(:meth:`SPGEngine.query`), batches (:meth:`SPGEngine.run_batch`) and
streamed workloads (:meth:`SPGEngine.run_stream`).  Three guarantees hold
regardless of cache state, planning or parallelism:

* **identical answers** — every result equals what a cold per-query
  :func:`repro.core.eve.build_spg` on the same graph/config returns;
* **deterministic ordering** — ``run_batch`` returns outcomes in input
  order, whatever the thread pool does;
* **error isolation** — one bad query (unknown vertex, ``s == t``, ...)
  yields an errored :class:`QueryOutcome`; the rest of the batch is
  unaffected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.distances import backward_distance_map
from repro.core.eve import EVE, EVEConfig
from repro.core.result import SimplePathGraphResult
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.queries.workload import Query
from repro.service.cache import CacheKey, ResultCache, make_cache_key
from repro.service.executor import TaskError, run_tasks
from repro.service.planner import QueryGroup, plan_batch
from repro.service.scratch import ScratchPool
from repro.service.stats import EngineStats

__all__ = ["EngineConfig", "QueryOutcome", "BatchReport", "SPGEngine"]

QueryLike = object  # (s, t, k) tuple/list, Query, or {"source", "target", "k"} mapping


@dataclass(frozen=True)
class EngineConfig:
    """One bundle of every knob an :class:`SPGEngine` deployment exposes.

    Collects the EVE algorithm switches (notably ``strategy``, the
    Figure-11 distance-search ablation axis) and the serving-layer tuning in
    a single declarative object, so CLI flags, config files and tests can
    construct engines from data.  ``SPGEngine.from_config(graph, config)``
    is the companion constructor.
    """

    strategy: str = "adaptive"
    forward_looking: bool = True
    search_ordering: bool = True
    verify: bool = True
    cache_size: int = 1024
    max_workers: Optional[int] = None
    min_group_size: int = 2
    latency_window: int = 4096

    def eve_config(self) -> EVEConfig:
        """The :class:`~repro.core.eve.EVEConfig` slice of this config."""
        return EVEConfig(
            distance_strategy=self.strategy,
            forward_looking=self.forward_looking,
            search_ordering=self.search_ordering,
            verify=self.verify,
        )


@dataclass
class QueryOutcome:
    """The outcome of one query inside a batch.

    Exactly one of ``result`` / ``error`` is set.  ``cached`` covers both
    engine-cache hits and in-batch deduplication (the same query appearing
    twice in one batch is computed once).
    """

    source: Vertex
    target: Vertex
    k: int
    result: Optional[SimplePathGraphResult] = None
    error: Optional[str] = None
    cached: bool = False
    reused_backward: bool = False
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def edges(self) -> Set[Edge]:
        """The answer edge set (empty for errored queries)."""
        return self.result.edges if self.result is not None else set()


@dataclass
class BatchReport:
    """Outcomes of one batch, in input order, plus plan/cache accounting."""

    outcomes: List[QueryOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    planned_groups: int = 0
    shared_groups: int = 0
    reused_backward_passes: int = 0
    cache_hits: int = 0
    errors: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[QueryOutcome]:
        return iter(self.outcomes)

    def results(self) -> List[Optional[SimplePathGraphResult]]:
        """Per-query results in input order (``None`` for errored queries)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def num_ok(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)


class SPGEngine:
    """A serving engine for SPG queries over one (mostly static) graph.

    Parameters
    ----------
    graph:
        The graph to serve; swap it later with :meth:`set_graph`.
    config:
        EVE tuning switches shared by every query this engine answers.
    cache_size:
        Maximum LRU entries; ``0`` disables the result cache entirely.
    max_workers:
        Default thread-pool size for batches (``None`` = CPU count, capped).
        Pure-Python EVE is GIL-bound, so the wins come from caching and
        shared planning; the pool mainly keeps large heterogeneous batches
        responsive and exercises the same code paths an async/process
        backend will use.
    min_group_size:
        Smallest ``(target, k)`` group that precomputes a shared backward
        pass (must be >= 2).
    """

    def __init__(
        self,
        graph: DiGraph,
        config: Optional[EVEConfig] = None,
        *,
        cache_size: int = 1024,
        max_workers: Optional[int] = None,
        min_group_size: int = 2,
        latency_window: int = 4096,
    ) -> None:
        self._graph = graph
        self._config = config or EVEConfig()
        self._cache = ResultCache(cache_size) if cache_size > 0 else None
        self._stats = EngineStats(latency_window)
        self._scratch = ScratchPool(self._stats)
        self._max_workers = max_workers
        self._min_group_size = min_group_size
        self._swap_lock = Lock()
        # Validate eagerly so a bad value fails at construction time.
        plan_batch([], min_group_size=min_group_size)
        self._warm_graph(graph)

    @staticmethod
    def _warm_graph(graph: DiGraph) -> None:
        """Force the graph's lazy caches on the caller thread.

        The CSR views (and fingerprint) are built lazily and without
        synchronization; warming them here keeps a cold batch's worker
        threads from all racing to rebuild the same O(m) arrays.
        """
        graph.csr()
        graph.csr_reverse()
        graph.fingerprint()

    @classmethod
    def from_config(cls, graph: DiGraph, config: Optional[EngineConfig] = None) -> "SPGEngine":
        """Build an engine from one declarative :class:`EngineConfig`."""
        config = config or EngineConfig()
        return cls(
            graph,
            config.eve_config(),
            cache_size=config.cache_size,
            max_workers=config.max_workers,
            min_group_size=config.min_group_size,
            latency_window=config.latency_window,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        return self._graph

    @property
    def config(self) -> EVEConfig:
        return self._config

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def stats(self) -> EngineStats:
        return self._stats

    @property
    def scratch_pool(self) -> ScratchPool:
        return self._scratch

    def stats_snapshot(self) -> Dict[str, object]:
        """Engine counters plus cache counters, as one JSON-friendly dict."""
        snapshot = self._stats.snapshot()
        snapshot["cache"] = self._cache.stats() if self._cache is not None else None
        return snapshot

    # ------------------------------------------------------------------
    # Graph lifecycle
    # ------------------------------------------------------------------
    def set_graph(self, graph: DiGraph, *, clear_cache: bool = False) -> None:
        """Swap the served graph.

        Cache entries are keyed on the graph fingerprint, so entries of the
        old graph can never answer queries against the new one — they age
        out of the LRU naturally.  Pass ``clear_cache=True`` to drop them
        immediately instead (frees memory; swapping *back* to an equal
        graph then starts cold).
        """
        self._warm_graph(graph)
        with self._swap_lock:
            self._graph = graph
            if clear_cache and self._cache is not None:
                self._cache.clear()

    def clear_cache(self) -> None:
        """Drop every cached result."""
        if self._cache is not None:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: Vertex,
        target: Vertex,
        k: int,
        *,
        use_cache: bool = True,
    ) -> SimplePathGraphResult:
        """Answer one query through the cache; exceptions propagate."""
        graph = self._graph
        key = None
        if use_cache and self._cache is not None:
            key = make_cache_key(source, target, k, self._config, graph.fingerprint())
            hit = self._cache.get(key)
            if hit is not None:
                self._stats.record_query(0.0, cached=True)
                return hit
        started = time.perf_counter()
        try:
            with self._scratch.borrow() as scratch:
                result = EVE(graph, self._config).query(source, target, k, scratch=scratch)
        except Exception:
            self._stats.record_query(
                time.perf_counter() - started, cached=False, error=True
            )
            raise
        self._stats.record_query(time.perf_counter() - started, cached=False)
        if key is not None:
            self._cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Iterable[QueryLike],
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> BatchReport:
        """Answer a batch of queries with caching and shared-work planning.

        ``queries`` may hold ``(s, t, k)`` tuples,
        :class:`repro.queries.workload.Query` objects, or mappings with
        ``source`` / ``target`` / ``k`` keys.  Outcomes come back in input
        order; per-query failures — including malformed entries that cannot
        be normalised — are isolated into errored outcomes.
        """
        started = time.perf_counter()
        raw_queries = list(queries)
        graph = self._graph
        fingerprint = graph.fingerprint()
        workers = self._max_workers if max_workers is None else max_workers

        normalized: List[Optional[Tuple[Vertex, Vertex, int]]] = []
        outcomes: List[Optional[QueryOutcome]] = [None] * len(raw_queries)
        for index, query in enumerate(raw_queries):
            try:
                normalized.append(self._normalize(query))
            except QueryError as exc:
                # Malformed queries are isolated like any other bad query.
                normalized.append(None)
                source, target, k = self._raw_fields(query)
                outcomes[index] = QueryOutcome(
                    source=source, target=target, k=k, error=str(exc)
                )

        pending: Dict[CacheKey, List[int]] = {}
        for index, entry in enumerate(normalized):
            if entry is None:
                continue
            source, target, k = entry
            key = make_cache_key(source, target, k, self._config, fingerprint)
            if use_cache and self._cache is not None:
                hit = self._cache.get(key)
                if hit is not None:
                    outcomes[index] = QueryOutcome(
                        source=source, target=target, k=k, result=hit, cached=True
                    )
                    continue
            pending.setdefault(key, []).append(index)

        # One computation per distinct uncached query; duplicates are filled
        # from the first occurrence afterwards.
        primaries: List[Tuple[CacheKey, int]] = [
            (key, indices[0]) for key, indices in pending.items()
        ]
        plan = plan_batch(
            [normalized[index] for _, index in primaries],
            min_group_size=self._min_group_size,
        )
        tasks = [
            (lambda group=group: self._run_group(graph, group)) for group in plan.groups
        ]
        group_results = run_tasks(tasks, max_workers=workers)

        for group, group_result in zip(plan.groups, group_results):
            if isinstance(group_result, TaskError):
                # Defensive: _run_group isolates per-query errors itself, so
                # this only fires on unexpected failures — blame every query
                # of the group rather than dropping the batch.
                group_result = [
                    (planned.index, None, group_result.error, 0.0, False)
                    for planned in group.queries
                ]
            for position, result, exc, latency, reused in group_result:
                key, outcome_index = primaries[position]
                source, target, k = normalized[outcome_index]
                if exc is not None:
                    outcome = QueryOutcome(
                        source=source,
                        target=target,
                        k=k,
                        error=f"{type(exc).__name__}: {exc}",
                        reused_backward=reused,
                        latency_seconds=latency,
                    )
                else:
                    outcome = QueryOutcome(
                        source=source,
                        target=target,
                        k=k,
                        result=result,
                        reused_backward=reused,
                        latency_seconds=latency,
                    )
                    if use_cache and self._cache is not None:
                        self._cache.put(key, result)
                outcomes[outcome_index] = outcome
                for duplicate_index in pending[key][1:]:
                    # Duplicates of a successful primary are served without
                    # recomputation (a hit); duplicates of a failed one
                    # repeat the error and must not inflate the hit rate.
                    outcomes[duplicate_index] = QueryOutcome(
                        source=source,
                        target=target,
                        k=k,
                        result=result,
                        error=outcome.error,
                        cached=outcome.error is None,
                        reused_backward=reused,
                    )

        report = BatchReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            wall_seconds=time.perf_counter() - started,
            planned_groups=len(plan.groups),
            shared_groups=plan.num_shared_groups,
            reused_backward_passes=plan.reused_backward_passes,
        )
        for outcome in report.outcomes:
            self._stats.record_query(
                outcome.latency_seconds,
                cached=outcome.cached,
                error=not outcome.ok,
                reused_backward=outcome.reused_backward,
            )
            if outcome.cached:
                report.cache_hits += 1
            if not outcome.ok:
                report.errors += 1
        self._stats.record_batch()
        return report

    def run_stream(
        self,
        queries: Iterable[QueryLike],
        *,
        batch_size: int = 64,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> Iterator[QueryOutcome]:
        """Serve an unbounded query stream in bounded-memory chunks.

        Outcomes are yielded in input order; each chunk of ``batch_size``
        queries goes through the full batch pipeline (cache, planner,
        executor), so a stream with repeated or target-grouped queries gets
        the same wins as an explicit batch.
        """
        if batch_size < 1:
            raise QueryError(f"batch_size must be >= 1, got {batch_size}")
        chunk: List[QueryLike] = []
        for query in queries:
            chunk.append(query)
            if len(chunk) >= batch_size:
                yield from self.run_batch(
                    chunk, max_workers=max_workers, use_cache=use_cache
                )
                chunk = []
        if chunk:
            yield from self.run_batch(
                chunk, max_workers=max_workers, use_cache=use_cache
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_group(
        self, graph: DiGraph, group: QueryGroup
    ) -> List[Tuple[int, Optional[SimplePathGraphResult], Optional[BaseException], float, bool]]:
        """Run one planned group sequentially, isolating per-query errors.

        Returns ``(plan position, result, exception, latency, reused)``
        tuples.  The shared backward pass is computed once for groups the
        planner marked ``shared``; when that precomputation itself fails
        (e.g. the common target is not a vertex), each query falls through
        to the cold path and reports the error individually.
        """
        shared = None
        if group.shared:
            try:
                shared = backward_distance_map(graph, group.target, group.k)
            except Exception:
                shared = None
        engine = EVE(graph, self._config)
        out: List[
            Tuple[int, Optional[SimplePathGraphResult], Optional[BaseException], float, bool]
        ] = []
        for planned in group.queries:
            reused = shared is not None
            query_started = time.perf_counter()
            try:
                with self._scratch.borrow() as scratch:
                    result = engine.query(
                        planned.source,
                        planned.target,
                        planned.k,
                        shared_backward=shared,
                        scratch=scratch,
                    )
            except Exception as exc:  # noqa: BLE001 - per-query isolation
                out.append(
                    (planned.index, None, exc, time.perf_counter() - query_started, reused)
                )
            else:
                out.append(
                    (planned.index, result, None, time.perf_counter() - query_started, reused)
                )
        return out

    @staticmethod
    def _normalize(query: QueryLike) -> Tuple[Vertex, Vertex, int]:
        """Coerce one query-like object to an ``(s, t, k)`` integer tuple.

        Raises :class:`QueryError` (never a bare ``ValueError``) so
        ``run_batch`` can isolate malformed queries per entry.
        """
        try:
            if isinstance(query, Query):
                return (int(query.source), int(query.target), int(query.k))
            if isinstance(query, dict):
                try:
                    return (
                        int(query["source"]),
                        int(query["target"]),
                        int(query["k"]),
                    )
                except KeyError as exc:
                    raise QueryError(
                        f"query mapping needs source/target/k keys, got {sorted(query)}"
                    ) from exc
            if isinstance(query, (tuple, list)) and len(query) == 3:
                source, target, k = query
                return (int(source), int(target), int(k))
        except (TypeError, ValueError) as exc:
            raise QueryError(f"non-integer query fields in {query!r}: {exc}") from exc
        raise QueryError(
            "queries must be (source, target, k) triples, Query objects, or "
            f"mappings with source/target/k keys; got {query!r}"
        )

    @staticmethod
    def _raw_fields(query: QueryLike) -> Tuple[object, object, object]:
        """Best-effort ``(source, target, k)`` extraction for error outcomes."""
        if isinstance(query, Query):
            return (query.source, query.target, query.k)
        if isinstance(query, dict):
            return (query.get("source"), query.get("target"), query.get("k", 0))
        if isinstance(query, (tuple, list)) and len(query) == 3:
            return (query[0], query[1], query[2])
        return (None, None, 0)

    def __repr__(self) -> str:
        return (
            f"SPGEngine(graph={self._graph.name!r}, "
            f"vertices={self._graph.num_vertices}, edges={self._graph.num_edges}, "
            f"cache={'off' if self._cache is None else len(self._cache)})"
        )
