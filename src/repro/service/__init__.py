"""repro.service — a concurrent, caching batch query engine for SPG workloads.

The core library answers one ``<s, t, k>`` query at a time, cold.  Real
deployments (the paper's fraud-screening motivation) issue *batches* of
queries against one mostly-static graph, which is exactly the shape a
serving layer exploits.  This subsystem layers four things on top of
:class:`repro.core.eve.EVE` without changing any answer:

* a **result cache** (:class:`ResultCache`) — LRU keyed on
  ``(s, t, k, config, graph fingerprint)``, so repeated queries are free and
  a swapped graph can never serve stale entries;
* a **batch planner** (:func:`plan_batch`) — groups queries sharing
  ``(t, k)`` so the backward distance pass is computed once per group and
  reused via the hooks in :mod:`repro.core.distances`;
* **pluggable executor backends** (:mod:`repro.service.executor`) —
  ``serial``, ``thread``, ``process`` (a warm
  :class:`~concurrent.futures.ProcessPoolExecutor` that runs CPU-bound EVE
  queries truly in parallel) and ``async`` (awaitable fan-out for event-loop
  callers), all with deterministic result ordering and per-query error
  isolation, all producing identical batch reports;
* a **scratch pool** (:class:`ScratchPool`) — reusable
  :class:`~repro.core.eve.QueryScratch` bundles (flat distance/mark buffers
  for the CSR distance kernel plus the essential-propagation entry buffers),
  so cache misses allocate no per-query distance *or* propagation storage
  at all (process workers keep one bundle each).

:class:`SPGEngine` ties them together and keeps :class:`EngineStats`
(hit rate, latency quantiles and histograms — overall and per EVE phase —
queries served, scratch reuse), exposable as Prometheus text-format
exposition via :meth:`EngineStats.to_prometheus` (the CLI's
``--metrics-out``) and as phase-level trace spans via an attached
:class:`repro.telemetry.Tracer` (``--trace-out``); batches run
synchronously (:meth:`SPGEngine.run_batch` / :meth:`SPGEngine.run_stream`)
or from an event loop (:meth:`SPGEngine.run_batch_async` /
:meth:`SPGEngine.astream`).  :class:`ShardedSPGEngine`
(:mod:`repro.service.shard`) serves the same contract through a
vertex-range CSR partition: planner groups are routed to the shard owning
their target, shared backward passes run with halo frontier exchange
across shard slices, and process workers attach to a shared-memory CSR
segment zero-copy.  The subsystem also ships a command line
(``python -m repro.service``) that loads a dataset, reads JSON-lines
queries from a file or stdin, and emits JSON results; ``--strategy``
selects the Figure-11 distance-search ablation path, ``--backend`` the
executor backend and ``--shards`` partition-parallel serving for the whole
served workload.
"""

from repro.service.cache import CacheKey, ResultCache, make_cache_key
from repro.service.engine import (
    BatchReport,
    DeltaReport,
    EngineConfig,
    GroupExecution,
    QueryOutcome,
    SPGEngine,
)
from repro.service.executor import (
    BACKEND_ENV_VAR,
    EXECUTOR_BACKENDS,
    AsyncBackend,
    Call,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    TaskError,
    ThreadBackend,
    create_backend,
    default_worker_count,
    resolve_backend_name,
    run_tasks,
    run_tasks_async,
)
from repro.service.planner import BatchPlan, PlannedQuery, QueryGroup, plan_batch
from repro.service.scratch import ScratchPool
from repro.service.shard import SHARD_ENV_VAR, ShardedSPGEngine, resolve_shard_count
from repro.service.stats import EngineStats, LatencyWindow

__all__ = [
    "SPGEngine",
    "ShardedSPGEngine",
    "SHARD_ENV_VAR",
    "resolve_shard_count",
    "EngineConfig",
    "ScratchPool",
    "QueryOutcome",
    "BatchReport",
    "DeltaReport",
    "GroupExecution",
    "ResultCache",
    "CacheKey",
    "make_cache_key",
    "BatchPlan",
    "QueryGroup",
    "PlannedQuery",
    "plan_batch",
    "run_tasks",
    "run_tasks_async",
    "TaskError",
    "Call",
    "default_worker_count",
    "EXECUTOR_BACKENDS",
    "BACKEND_ENV_VAR",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "AsyncBackend",
    "create_backend",
    "resolve_backend_name",
    "EngineStats",
    "LatencyWindow",
]
