"""repro.service — a concurrent, caching batch query engine for SPG workloads.

The core library answers one ``<s, t, k>`` query at a time, cold.  Real
deployments (the paper's fraud-screening motivation) issue *batches* of
queries against one mostly-static graph, which is exactly the shape a
serving layer exploits.  This subsystem layers three things on top of
:class:`repro.core.eve.EVE` without changing any answer:

* a **result cache** (:class:`ResultCache`) — LRU keyed on
  ``(s, t, k, config, graph fingerprint)``, so repeated queries are free and
  a swapped graph can never serve stale entries;
* a **batch planner** (:func:`plan_batch`) — groups queries sharing
  ``(t, k)`` so the backward distance pass is computed once per group and
  reused via the hooks in :mod:`repro.core.distances`;
* a **concurrent executor** (:func:`run_tasks`) — a thread pool with
  deterministic result ordering and per-query error isolation;
* a **scratch pool** (:class:`ScratchPool`) — reusable flat distance/mark
  buffers for the CSR kernel, so cache misses allocate no per-query
  distance storage at all.

:class:`SPGEngine` ties them together and keeps :class:`EngineStats`
(hit rate, latency quantiles, queries served, scratch reuse).  The
subsystem also ships a command line (``python -m repro.service``) that
loads a dataset, reads JSON-lines queries from a file or stdin, and emits
JSON results; its ``--strategy`` flag selects the Figure-11 distance-search
ablation path for the whole served workload.
"""

from repro.service.cache import CacheKey, ResultCache, make_cache_key
from repro.service.engine import BatchReport, EngineConfig, QueryOutcome, SPGEngine
from repro.service.executor import TaskError, default_worker_count, run_tasks
from repro.service.planner import BatchPlan, PlannedQuery, QueryGroup, plan_batch
from repro.service.scratch import ScratchPool
from repro.service.stats import EngineStats, LatencyWindow

__all__ = [
    "SPGEngine",
    "EngineConfig",
    "ScratchPool",
    "QueryOutcome",
    "BatchReport",
    "ResultCache",
    "CacheKey",
    "make_cache_key",
    "BatchPlan",
    "QueryGroup",
    "PlannedQuery",
    "plan_batch",
    "run_tasks",
    "TaskError",
    "default_worker_count",
    "EngineStats",
    "LatencyWindow",
]
