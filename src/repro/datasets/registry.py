"""Registry of synthetic proxies for the 15 evaluation networks (Table 2).

Each entry keeps the paper's two-letter code, records the real network's
published statistics (for documentation and EXPERIMENTS.md), and knows how
to generate a scaled-down synthetic proxy whose density class (average
degree) and degree skew match the original.  The proxies preserve what
matters for the paper's comparisons: dense graphs (``ps``, ``ye``, ``wn``,
``uk``, ``hm``) make path counts explode with ``k`` so enumeration baselines
fall behind, while sparse graphs (``tw``, ``wt``, ``gg``) keep everything
cheap and the gap smaller.

Every generator takes a ``scale`` factor so tests can use tiny instances and
benchmarks can use larger ones, without changing the graph family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import DatasetError
from repro.graph import generators
from repro.graph.digraph import DiGraph

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset", "dataset_summary_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one evaluation network and its synthetic proxy.

    Attributes
    ----------
    code:
        The paper's two-letter dataset code (e.g. ``"wn"``).
    full_name:
        The real network's name as listed in Table 2.
    real_vertices / real_edges / real_avg_degree:
        Published statistics of the real network (documentation only).
    category:
        Domain of the real network (Economic, Biological, Web, Social, ...).
    base_vertices / target_avg_degree:
        Size and density of the synthetic proxy at ``scale=1.0``.
    family:
        Which generator family the proxy uses (``"dense-er"``,
        ``"power-law"``, ``"community"``, ``"sparse-er"``).
    """

    code: str
    full_name: str
    real_vertices: int
    real_edges: int
    real_avg_degree: float
    category: str
    base_vertices: int
    target_avg_degree: float
    family: str

    def generate(self, scale: float = 1.0, seed: Optional[int] = None) -> DiGraph:
        """Generate the synthetic proxy at the requested ``scale``."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        num_vertices = max(8, int(round(self.base_vertices * scale)))
        generator_seed = seed if seed is not None else _stable_seed(self.code)
        name = f"{self.code}-proxy"
        if self.family == "dense-er":
            return generators.erdos_renyi(
                num_vertices, self.target_avg_degree, seed=generator_seed, name=name
            )
        if self.family == "sparse-er":
            return generators.erdos_renyi(
                num_vertices, self.target_avg_degree, seed=generator_seed, name=name
            )
        if self.family == "power-law":
            edges_per_vertex = max(1, int(round(self.target_avg_degree)))
            return generators.power_law_cluster(
                num_vertices, edges_per_vertex, seed=generator_seed, name=name
            )
        if self.family == "community":
            community_size = max(4, int(round(self.target_avg_degree * 1.5)))
            num_communities = max(2, num_vertices // community_size)
            return generators.community_graph(
                num_communities,
                community_size,
                intra_probability=min(0.9, self.target_avg_degree / community_size),
                inter_edges_per_community=max(2, community_size // 2),
                seed=generator_seed,
                name=name,
            )
        raise DatasetError(f"unknown proxy family {self.family!r} for dataset {self.code!r}")


def _stable_seed(code: str) -> int:
    """Deterministic per-dataset seed derived from its code."""
    return sum((index + 1) * ord(char) for index, char in enumerate(code)) * 7919


# The real statistics below are copied from Table 2 of the paper; proxy
# sizes keep the same density *class* while staying laptop friendly.
DATASETS: Dict[str, DatasetSpec] = {
    spec.code: spec
    for spec in [
        DatasetSpec("ps", "econ-psmigr3", 3_100, 540_000, 172.0, "Economic",
                    300, 24.0, "dense-er"),
        DatasetSpec("ye", "bio-grid-yeast", 6_000, 314_000, 52.0, "Biological",
                    400, 16.0, "dense-er"),
        DatasetSpec("wn", "bio-WormNet-v3", 16_000, 763_000, 47.0, "Biological",
                    500, 14.0, "community"),
        DatasetSpec("uk", "web-uk-2005", 130_000, 12_000_000, 91.0, "Web",
                    600, 18.0, "community"),
        DatasetSpec("sf", "web-Stanford", 282_000, 13_000_000, 46.0, "Web",
                    700, 10.0, "power-law"),
        DatasetSpec("bk", "web-baidu-baike", 416_000, 3_300_000, 8.0, "Web",
                    800, 5.0, "power-law"),
        DatasetSpec("tw", "twitter-social", 465_000, 835_000, 2.0, "Miscellaneous",
                    900, 2.0, "sparse-er"),
        DatasetSpec("bs", "web-BerkStan", 685_000, 7_600_000, 11.0, "Web",
                    800, 6.0, "power-law"),
        DatasetSpec("gg", "web-Google", 876_000, 5_100_000, 6.0, "Web",
                    900, 4.0, "power-law"),
        DatasetSpec("hm", "bn-human-Jung2015", 976_000, 146_000_000, 150.0, "Biological",
                    400, 22.0, "dense-er"),
        DatasetSpec("wt", "wikiTalk", 2_400_000, 5_000_000, 2.0, "Miscellaneous",
                    1_000, 2.0, "sparse-er"),
        DatasetSpec("lj", "soc-LiveJournal1", 4_800_000, 68_000_000, 14.0, "Social",
                    800, 8.0, "power-law"),
        DatasetSpec("dl", "dbpedia-link", 18_000_000, 137_000_000, 7.0, "Miscellaneous",
                    900, 5.0, "power-law"),
        DatasetSpec("fr", "soc-friendster", 66_000_000, 1_800_000_000, 28.0, "Social",
                    700, 12.0, "dense-er"),
        DatasetSpec("hg", "web-cc12-hostgraph", 89_000_000, 2_000_000_000, 23.0, "Web",
                    700, 10.0, "community"),
    ]
}


def dataset_names() -> List[str]:
    """Return the dataset codes in the order of Table 2."""
    return list(DATASETS.keys())


def load_dataset(code: str, scale: float = 1.0, seed: Optional[int] = None) -> DiGraph:
    """Generate the synthetic proxy for dataset ``code`` (Table 2 key)."""
    try:
        spec = DATASETS[code]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset code {code!r}; known codes: {', '.join(DATASETS)}"
        ) from exc
    return spec.generate(scale=scale, seed=seed)


def dataset_summary_table(scale: float = 1.0) -> List[Dict[str, object]]:
    """Return one row per dataset comparing real vs proxy statistics."""
    rows: List[Dict[str, object]] = []
    for spec in DATASETS.values():
        proxy = spec.generate(scale=scale)
        rows.append(
            {
                "code": spec.code,
                "real_name": spec.full_name,
                "real_|V|": spec.real_vertices,
                "real_|E|": spec.real_edges,
                "real_d_avg": spec.real_avg_degree,
                "proxy_|V|": proxy.num_vertices,
                "proxy_|E|": proxy.num_edges,
                "proxy_d_avg": round(proxy.average_degree(), 2),
                "category": spec.category,
            }
        )
    return rows
