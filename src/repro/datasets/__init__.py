"""Datasets: synthetic proxies for the paper's 15 real networks.

The evaluation graphs of Table 2 (SNAP / KONECT / NetworkRepository
downloads of up to two billion edges) cannot ship with a reproduction, so
:mod:`repro.datasets.registry` builds seeded synthetic stand-ins matched on
density class and degree skew at laptop scale, keyed by the paper's
two-letter dataset codes (``ps``, ``ye``, ``wn`` ...).

:mod:`repro.datasets.transaction` generates the timestamped transaction
network with planted short cycles used for the fraud-detection case study
(Section 6.9 / Figure 13).
"""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    dataset_summary_table,
    load_dataset,
)
from repro.datasets.transaction import TransactionNetwork, generate_transaction_network

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "dataset_summary_table",
    "load_dataset",
    "TransactionNetwork",
    "generate_transaction_network",
]
