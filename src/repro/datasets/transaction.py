"""Temporal transaction network generator for the fraud-detection case study.

Section 6.9 of the paper studies a transaction network from an e-commerce
company: for a flagged transaction ``e(t, s)`` at time ``T0``, all vertices
and edges participating in ``(k+1)``-hop-constrained simple cycles through
the flagged edge — restricted to transactions within the last ``dT`` days —
are extracted by generating ``SPG_k(s, t)`` on the time-filtered graph.

The real data is proprietary, so this module builds a synthetic temporal
transaction network with *planted fraud rings*: groups of accounts that move
money around short cycles inside a narrow time window, embedded in a large
volume of legitimate background transactions.  The planted rings give the
case-study experiment a known ground truth (which accounts should appear in
the extracted simple path graph).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._types import Edge, Vertex
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["Transaction", "TransactionNetwork", "generate_transaction_network"]


@dataclass(frozen=True)
class Transaction:
    """One money transfer: ``source`` pays ``target`` at ``timestamp`` (days)."""

    source: Vertex
    target: Vertex
    timestamp: float
    amount: float = 0.0


@dataclass
class TransactionNetwork:
    """A temporal multigraph of transactions plus planted fraud rings.

    Attributes
    ----------
    num_accounts:
        Number of account vertices.
    transactions:
        Every generated transaction (legitimate and fraudulent).
    fraud_rings:
        One list of account ids per planted ring (the ground truth).
    flagged_edge:
        The ``(t, s)`` closing edge of the first planted ring together with
        its timestamp — the starting point of the case-study query.
    """

    num_accounts: int
    transactions: List[Transaction] = field(default_factory=list)
    fraud_rings: List[List[Vertex]] = field(default_factory=list)
    flagged_edge: Optional[Tuple[Vertex, Vertex, float]] = None

    # ------------------------------------------------------------------
    def snapshot(
        self,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
        name: str = "transactions",
    ) -> DiGraph:
        """Return the static graph of transactions within ``[start, end]``.

        Parallel transactions between the same accounts collapse to a single
        edge (simple cycles only care about connectivity, Section 6.9).
        """
        edges: Set[Edge] = set()
        for txn in self.transactions:
            if start_time is not None and txn.timestamp < start_time:
                continue
            if end_time is not None and txn.timestamp > end_time:
                continue
            edges.add((txn.source, txn.target))
        return DiGraph(self.num_accounts, edges, name=name)

    def window_around_flag(self, window_days: float) -> DiGraph:
        """Snapshot of the ``window_days`` days preceding the flagged edge."""
        if self.flagged_edge is None:
            raise DatasetError("network has no flagged edge; generate with fraud rings")
        _, _, flag_time = self.flagged_edge
        return self.snapshot(
            start_time=flag_time - window_days,
            end_time=flag_time,
            name=f"transactions-last-{window_days:g}-days",
        )

    def fraud_accounts(self) -> Set[Vertex]:
        """Union of all planted fraud-ring accounts (ground truth)."""
        accounts: Set[Vertex] = set()
        for ring in self.fraud_rings:
            accounts.update(ring)
        return accounts


def generate_transaction_network(
    num_accounts: int = 500,
    num_transactions: int = 4000,
    num_fraud_rings: int = 3,
    ring_size: int = 4,
    horizon_days: float = 30.0,
    fraud_window_days: float = 2.0,
    seed: int = 0,
) -> TransactionNetwork:
    """Generate a synthetic temporal transaction network with planted rings.

    Legitimate transactions connect uniformly random account pairs at
    uniformly random times over ``horizon_days``.  Each fraud ring is a
    short simple cycle of ``ring_size`` accounts whose transactions all fall
    inside a ``fraud_window_days`` window near the end of the horizon; the
    first ring's closing edge becomes the flagged transaction ``e(t, s)``.
    """
    if num_accounts < ring_size * max(1, num_fraud_rings):
        raise DatasetError(
            "num_accounts too small to embed the requested fraud rings"
        )
    if ring_size < 2:
        raise DatasetError(f"ring_size must be >= 2, got {ring_size}")
    rng = random.Random(seed)
    network = TransactionNetwork(num_accounts=num_accounts)

    # Background (legitimate) traffic.
    for _ in range(num_transactions):
        source = rng.randrange(num_accounts)
        target = rng.randrange(num_accounts)
        if source == target:
            continue
        timestamp = rng.uniform(0.0, horizon_days)
        amount = rng.uniform(1.0, 500.0)
        network.transactions.append(Transaction(source, target, timestamp, amount))

    # Planted fraud rings: short cycles in a narrow, recent time window.
    available = list(range(num_accounts))
    rng.shuffle(available)
    window_start = horizon_days - fraud_window_days
    for ring_index in range(num_fraud_rings):
        ring = [available.pop() for _ in range(ring_size)]
        network.fraud_rings.append(ring)
        base_time = window_start + rng.uniform(0.0, fraud_window_days / 2)
        for position in range(ring_size):
            source = ring[position]
            target = ring[(position + 1) % ring_size]
            timestamp = base_time + position * (fraud_window_days / (2 * ring_size))
            amount = rng.uniform(1000.0, 5000.0)
            network.transactions.append(Transaction(source, target, timestamp, amount))
        if ring_index == 0:
            # The ring-closing edge (last -> first) is the flagged transaction
            # e(t, s): searching SPG_k(s, t) recovers the rest of the ring.
            closing_time = base_time + (ring_size - 1) * (
                fraud_window_days / (2 * ring_size)
            )
            network.flagged_edge = (ring[-1], ring[0], closing_time)

    network.transactions.sort(key=lambda txn: txn.timestamp)
    return network
