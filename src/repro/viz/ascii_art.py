"""Plain-text rendering of small graphs and query results.

Used by the examples to show results directly in a terminal without any
plotting dependency.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro._types import Vertex
from repro.core.result import SimplePathGraphResult
from repro.graph.digraph import DiGraph

__all__ = ["render_adjacency", "render_result_summary"]


def render_adjacency(
    graph: DiGraph,
    label: Optional[Callable[[Vertex], str]] = None,
    max_vertices: int = 50,
) -> str:
    """Return an adjacency-list sketch: one ``u -> v, w, ...`` line per vertex."""
    labeler = label or str
    lines: List[str] = [f"{graph.name}: |V|={graph.num_vertices} |E|={graph.num_edges}"]
    shown = 0
    for u in graph.vertices():
        neighbors = graph.out_neighbors(u)
        if not neighbors:
            continue
        targets = ", ".join(labeler(v) for v in neighbors)
        lines.append(f"  {labeler(u)} -> {targets}")
        shown += 1
        if shown >= max_vertices:
            lines.append(f"  ... ({graph.num_vertices - shown} more vertices)")
            break
    return "\n".join(lines)


def render_result_summary(
    result: SimplePathGraphResult,
    label: Optional[Callable[[Vertex], str]] = None,
) -> str:
    """Return a human-readable summary of a simple-path-graph query result."""
    labeler = label or str
    lines = [
        f"SPG_{result.k}({labeler(result.source)}, {labeler(result.target)}) "
        f"computed by {result.algorithm}",
        f"  edges in answer      : {result.num_edges}",
        f"  edges in upper bound : {result.num_upper_bound_edges}",
        f"  vertices in answer   : {len(result.vertices)}",
        f"  redundant ratio      : {result.redundant_ratio():.4%}",
        f"  total time           : {result.phases.total_seconds * 1000:.2f} ms",
        f"  peak retained items  : {result.space.peak}",
    ]
    if result.edges:
        sample = sorted(result.edges)[:10]
        rendered = ", ".join(f"{labeler(u)}->{labeler(v)}" for u, v in sample)
        suffix = " ..." if result.num_edges > 10 else ""
        lines.append(f"  sample edges         : {rendered}{suffix}")
    return "\n".join(lines)
