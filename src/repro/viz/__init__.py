"""Visualisation helpers for simple path graphs.

The relation-visualisation use case (RelFinder-style, Section 1.1) displays
the simple path graph between two entities instead of listing all paths.
This package renders query results to Graphviz DOT (:mod:`repro.viz.dot`)
and to a quick ASCII adjacency sketch (:mod:`repro.viz.ascii_art`) so the
examples can show results without any plotting dependency.
"""

from repro.viz.ascii_art import render_adjacency, render_result_summary
from repro.viz.dot import result_to_dot, to_dot

__all__ = ["to_dot", "result_to_dot", "render_adjacency", "render_result_summary"]
