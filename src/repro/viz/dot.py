"""Graphviz DOT export of graphs and simple-path-graph query results."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from repro._types import Edge, Vertex
from repro.core.result import SimplePathGraphResult
from repro.graph.digraph import DiGraph

__all__ = ["to_dot", "result_to_dot"]


def _default_label(vertex: Vertex) -> str:
    return str(vertex)


def to_dot(
    graph: DiGraph,
    name: str = "G",
    highlight_vertices: Optional[Set[Vertex]] = None,
    highlight_edges: Optional[Set[Edge]] = None,
    label: Optional[Callable[[Vertex], str]] = None,
) -> str:
    """Render ``graph`` as a Graphviz DOT string.

    Highlighted vertices are drawn filled; highlighted edges are drawn bold.
    Only vertices incident to at least one edge are emitted, which keeps the
    output readable for subgraphs of large graphs.
    """
    labeler = label or _default_label
    highlight_vertices = highlight_vertices or set()
    highlight_edges = highlight_edges or set()
    used: Set[Vertex] = set()
    for u, v in graph.edges():
        used.add(u)
        used.add(v)
    used |= highlight_vertices
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for vertex in sorted(used):
        attributes = [f'label="{labeler(vertex)}"']
        if vertex in highlight_vertices:
            attributes.append("style=filled")
            attributes.append("fillcolor=lightblue")
        lines.append(f"  v{vertex} [{', '.join(attributes)}];")
    for u, v in sorted(graph.edges()):
        attributes = []
        if (u, v) in highlight_edges:
            attributes.append("penwidth=2.5")
            attributes.append("color=crimson")
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  v{u} -> v{v}{suffix};")
    lines.append("}")
    return "\n".join(lines)


def result_to_dot(
    result: SimplePathGraphResult,
    graph: DiGraph,
    label: Optional[Callable[[Vertex], str]] = None,
) -> str:
    """Render a query result: the SPG edges bold inside their subgraph."""
    subgraph = result.to_graph(graph)
    return to_dot(
        subgraph,
        name=f"SPG{result.k}",
        highlight_vertices={result.source, result.target},
        highlight_edges=set(result.edges),
        label=label,
    )
