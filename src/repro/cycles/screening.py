"""Batch fraud screening over a temporal transaction network.

The case study of Section 6.9 investigates one flagged transaction.  A
production anti-fraud pipeline screens *every* recent transaction: for each
candidate edge ``e(t, s)`` it asks whether the edge closes a short simple
cycle inside the recent time window, and if so extracts the participating
accounts.  :class:`FraudScreener` implements that pipeline on top of
:func:`repro.cycles.cycle_graph.constrained_cycle_graph`, i.e. on top of
EVE — one SPG query per screened transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.eve import EVEConfig
from repro.cycles.cycle_graph import constrained_cycle_graph
from repro.datasets.transaction import Transaction, TransactionNetwork
from repro.exceptions import QueryError

__all__ = ["SuspiciousEdge", "ScreeningReport", "FraudScreener"]


@dataclass(frozen=True)
class SuspiciousEdge:
    """One screened transaction that closes at least one short cycle."""

    edge: Edge
    timestamp: float
    cycle_edges: int
    involved_accounts: Tuple[Vertex, ...]


@dataclass
class ScreeningReport:
    """Outcome of screening a batch of transactions."""

    window_days: float
    max_cycle_length: int
    screened: int = 0
    suspicious: List[SuspiciousEdge] = field(default_factory=list)

    @property
    def num_suspicious(self) -> int:
        """Number of transactions that closed at least one short cycle."""
        return len(self.suspicious)

    def suspicious_accounts(self) -> Set[Vertex]:
        """Union of all accounts involved in any detected cycle."""
        accounts: Set[Vertex] = set()
        for finding in self.suspicious:
            accounts.update(finding.involved_accounts)
        return accounts

    def precision_recall(self, true_accounts: Set[Vertex]) -> Tuple[float, float]:
        """Precision/recall of the flagged accounts against a ground truth."""
        flagged = self.suspicious_accounts()
        if not flagged:
            return (0.0, 0.0)
        true_positives = len(flagged & true_accounts)
        precision = true_positives / len(flagged)
        recall = true_positives / len(true_accounts) if true_accounts else 0.0
        return (precision, recall)


class FraudScreener:
    """Screens recent transactions of a temporal network for short cycles.

    Parameters
    ----------
    network:
        The temporal transaction network to screen.
    max_cycle_length:
        Maximum cycle length (in transactions) considered fraudulent.
    window_days:
        Length of the sliding time window: only transactions at most this
        many days older than the screened transaction are considered.
    """

    def __init__(
        self,
        network: TransactionNetwork,
        max_cycle_length: int = 6,
        window_days: float = 7.0,
        config: Optional[EVEConfig] = None,
    ) -> None:
        if max_cycle_length < 2:
            raise QueryError(f"max_cycle_length must be >= 2, got {max_cycle_length}")
        if window_days <= 0:
            raise QueryError(f"window_days must be positive, got {window_days}")
        self.network = network
        self.max_cycle_length = max_cycle_length
        self.window_days = window_days
        self.config = config

    # ------------------------------------------------------------------
    def screen_transaction(self, transaction: Transaction) -> Optional[SuspiciousEdge]:
        """Screen one transaction; return a finding if it closes a cycle."""
        window_graph = self.network.snapshot(
            start_time=transaction.timestamp - self.window_days,
            end_time=transaction.timestamp,
            name="screening-window",
        )
        edge = (transaction.source, transaction.target)
        if not window_graph.has_edge(*edge):
            return None
        cycles = constrained_cycle_graph(
            window_graph, edge, self.max_cycle_length, config=self.config
        )
        if not cycles.has_cycles:
            return None
        return SuspiciousEdge(
            edge=edge,
            timestamp=transaction.timestamp,
            cycle_edges=cycles.num_edges,
            involved_accounts=tuple(sorted(cycles.vertices)),
        )

    def screen_recent(
        self,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> ScreeningReport:
        """Screen every transaction with timestamp >= ``since`` (newest last).

        ``limit`` caps the number of screened transactions (useful for
        keeping demo runtimes bounded); the most recent transactions are
        screened first.
        """
        report = ScreeningReport(
            window_days=self.window_days, max_cycle_length=self.max_cycle_length
        )
        candidates: Sequence[Transaction] = [
            txn
            for txn in self.network.transactions
            if since is None or txn.timestamp >= since
        ]
        ordered = sorted(candidates, key=lambda txn: txn.timestamp, reverse=True)
        if limit is not None:
            ordered = ordered[:limit]
        for transaction in ordered:
            report.screened += 1
            finding = self.screen_transaction(transaction)
            if finding is not None:
                report.suspicious.append(finding)
        return report
