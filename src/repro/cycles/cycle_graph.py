"""Hop-constrained simple cycle graphs through a given edge.

A simple cycle of length at most ``k + 1`` through a directed edge
``e(t, s)`` is exactly ``e(t, s)`` followed by a simple path from ``s``
back to ``t`` of length at most ``k`` — so the subgraph of all such cycles
is ``SPG_k(s, t)`` plus the edge itself.  This module wraps that reduction
and also enumerates the individual cycles when they are needed (e.g. to
rank fraud cases by cycle length or count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.eve import EVE, EVEConfig
from repro.core.result import SimplePathGraphResult
from repro.enumeration.pathenum import PathEnum
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import edge_induced_subgraph

__all__ = ["CycleGraphResult", "constrained_cycle_graph", "constrained_cycles"]

Cycle = Tuple[Vertex, ...]


@dataclass
class CycleGraphResult:
    """All vertices/edges on simple cycles of length <= ``max_cycle_length``
    through ``anchor_edge``."""

    anchor_edge: Edge
    max_cycle_length: int
    edges: Set[Edge] = field(default_factory=set)
    path_graph: Optional[SimplePathGraphResult] = None

    @property
    def vertices(self) -> Set[Vertex]:
        """Vertices incident to at least one cycle edge."""
        found: Set[Vertex] = set()
        for u, v in self.edges:
            found.add(u)
            found.add(v)
        return found

    @property
    def has_cycles(self) -> bool:
        """True when at least one constrained simple cycle exists.

        The edge set is empty exactly when no simple path closes the anchor
        edge within the budget, so cycle existence reduces to non-emptiness.
        """
        return bool(self.edges)

    @property
    def num_edges(self) -> int:
        """Number of edges participating in constrained cycles."""
        return len(self.edges)

    def to_graph(self, graph: DiGraph) -> DiGraph:
        """Materialise the cycle graph as a subgraph of ``graph``."""
        t, s = self.anchor_edge
        return edge_induced_subgraph(
            graph, self.edges, name=f"cycles<= {self.max_cycle_length} via ({t},{s})"
        )


def constrained_cycle_graph(
    graph: DiGraph,
    anchor_edge: Edge,
    max_cycle_length: int,
    config: Optional[EVEConfig] = None,
) -> CycleGraphResult:
    """Return the graph of simple cycles through ``anchor_edge``.

    Parameters
    ----------
    anchor_edge:
        The edge ``(t, s)`` every reported cycle must traverse.
    max_cycle_length:
        Maximum number of edges in a cycle (``k + 1`` in the paper's
        phrasing); must be at least 2.
    """
    tail, head = anchor_edge
    if not graph.has_edge(tail, head):
        raise QueryError(f"anchor edge {anchor_edge} is not present in the graph")
    if max_cycle_length < 2:
        raise QueryError(
            f"max_cycle_length must be at least 2, got {max_cycle_length}"
        )
    # Cycles through (t, s) = (t, s) + simple path s -> t of length <= k.
    hop_budget = max_cycle_length - 1
    result = EVE(graph, config).query(head, tail, hop_budget)
    edges: Set[Edge] = set(result.edges)
    if edges:
        edges.add(anchor_edge)
    return CycleGraphResult(
        anchor_edge=anchor_edge,
        max_cycle_length=max_cycle_length,
        edges=edges,
        path_graph=result,
    )


def constrained_cycles(
    graph: DiGraph,
    anchor_edge: Edge,
    max_cycle_length: int,
    config: Optional[EVEConfig] = None,
) -> Iterator[Cycle]:
    """Enumerate the simple cycles through ``anchor_edge`` (<= ``max_cycle_length`` edges).

    Each cycle is reported as a vertex tuple starting at the anchor edge's
    head ``s`` and ending at its tail ``t`` (closing the cycle through the
    anchor edge is implicit).  Enumeration runs PathEnum restricted to the
    cycle graph, so the work is proportional to the cycles that exist.
    """
    cycle_graph = constrained_cycle_graph(graph, anchor_edge, max_cycle_length, config)
    if not cycle_graph.edges:
        return
    tail, head = anchor_edge
    search_space = cycle_graph.to_graph(graph)
    enumerator = PathEnum(search_space)
    yield from enumerator.iter_paths(head, tail, max_cycle_length - 1)
