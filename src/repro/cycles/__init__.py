"""Hop-constrained simple cycle analysis built on simple path graphs.

The paper's fraud-detection application (Sections 1.1 and 6.9) is really a
*cycle* problem: for a flagged transaction ``e(t, s)``, find every vertex
and edge participating in a simple cycle of length at most ``k + 1``
through that edge.  Because any such cycle is the flagged edge plus a
``k``-hop-constrained s-t simple path, the cycle graph is exactly
``SPG_k(s, t)`` plus the flagged edge.

This package turns that observation into a small API:

* :func:`~repro.cycles.cycle_graph.constrained_cycle_graph` — the cycle
  graph through one edge;
* :func:`~repro.cycles.cycle_graph.constrained_cycles` — enumerate the
  cycles themselves (delegating to any path enumerator restricted to the
  cycle graph);
* :class:`~repro.cycles.screening.FraudScreener` — batch screening of a
  temporal transaction network: every recent transaction is tested for
  participation in short cycles inside a sliding time window.
"""

from repro.cycles.cycle_graph import (
    CycleGraphResult,
    constrained_cycle_graph,
    constrained_cycles,
)
from repro.cycles.screening import FraudScreener, ScreeningReport, SuspiciousEdge

__all__ = [
    "CycleGraphResult",
    "constrained_cycle_graph",
    "constrained_cycles",
    "FraudScreener",
    "ScreeningReport",
    "SuspiciousEdge",
]
