"""Shared type aliases used across the :mod:`repro` package.

The whole library identifies vertices by dense non-negative integers
(``0 .. n-1``).  Edges are ordered pairs of vertex ids.  Keeping these
aliases in one place makes signatures self-documenting without pulling in
heavyweight typing machinery.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

Vertex = int
Edge = Tuple[Vertex, Vertex]
EdgeList = Sequence[Edge]
EdgeIterable = Iterable[Edge]

__all__ = ["Vertex", "Edge", "EdgeList", "EdgeIterable"]
