"""repro.telemetry — phase-level query telemetry for the serving stack.

Two small, dependency-free layers:

* **tracing** (:mod:`repro.telemetry.tracer`) — a :class:`Tracer` records
  monotonic-clock spans (one event per EVE phase per cache miss, plus a
  summary event per query) into a bounded buffer and exports them as JSONL
  for offline analysis.  The hot path pays exactly one ``is None`` check
  per phase when tracing is disabled — :meth:`repro.core.eve.EVE.query`
  takes ``tracer=None`` and skips every telemetry call.
* **Prometheus exposition** (:mod:`repro.telemetry.prometheus`) —
  text-format rendering helpers (counters, gauges, histograms with
  explicit buckets) used by
  :meth:`repro.service.stats.EngineStats.to_prometheus`, plus a strict
  text-format parser (:func:`parse_exposition`) that the tests use to hold
  every exposition to the Prometheus grammar.

Neither layer imports the service or core packages, so any module may
depend on telemetry without creating a cycle.
"""

from repro.telemetry.prometheus import (
    MetricSample,
    parse_exposition,
    render_counter,
    render_gauge,
    render_histogram,
)
from repro.telemetry.tracer import (
    NOOP_TRACER,
    NoopTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "TraceEvent",
    "MetricSample",
    "parse_exposition",
    "render_counter",
    "render_gauge",
    "render_histogram",
]
