"""Low-overhead span recording for phase-level query telemetry.

A :class:`Tracer` collects :class:`TraceEvent` records — named spans with a
monotonic start offset, a duration, a wall-clock completion time and a flat
attribute mapping — into a bounded thread-safe buffer.  Producers either

* time a block themselves and call :meth:`Tracer.record` with the measured
  ``started``/``duration`` (the EVE query driver does this: its phases are
  already timed for :class:`repro.core.result.PhaseStats`, so tracing adds
  no extra clock reads), or
* wrap a block in the :meth:`Tracer.span` context manager and let the span
  measure itself.

Events are plain picklable objects on purpose: process-pool workers build a
local tracer per task and ship the drained events back to the parent engine
inside the task result (see :class:`repro.service.engine.GroupExecution`),
so traces from worker-side execution land in the same buffer as in-process
spans.

When tracing is off the driver holds ``None`` (or :data:`NOOP_TRACER`) and
every telemetry site reduces to one attribute/None check — the disabled
hot path stays within noise of the untraced engine, which the throughput
benchmark asserts.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Union

__all__ = ["TraceEvent", "Tracer", "NoopTracer", "NOOP_TRACER"]

#: Default bound on retained events: one batch of a few thousand misses
#: traces completely, while a long-lived engine cannot grow without bound.
DEFAULT_CAPACITY = 65_536


@dataclass
class TraceEvent:
    """One completed span.

    Attributes
    ----------
    name:
        Span name, e.g. ``"phase.distance"`` or ``"query"``.
    started:
        ``time.perf_counter()`` at span start — monotonic, comparable only
        within one process (workers' offsets are not the parent's).
    duration:
        Span length in seconds (monotonic-clock difference).
    wall_time:
        ``time.time()`` at span *completion*, for cross-process ordering
        and human-readable export.
    attributes:
        Flat, JSON-friendly span attributes (query endpoints, index sizes,
        verification counters, ...).
    """

    name: str
    started: float
    duration: float
    wall_time: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The JSONL export form: one flat object per event."""
        return {
            "name": self.name,
            "started": self.started,
            "duration_seconds": self.duration,
            "wall_time": self.wall_time,
            "attributes": dict(self.attributes),
        }


class _Span:
    """A live span handed out by :meth:`Tracer.span`.

    Attributes may be attached mid-flight with :meth:`set`; the span records
    itself into its tracer when the context manager exits.
    """

    __slots__ = ("name", "attributes", "started")

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self.started = time.perf_counter()

    def set(self, **attributes: object) -> None:
        """Attach (or overwrite) span attributes."""
        self.attributes.update(attributes)


class Tracer:
    """A bounded, thread-safe buffer of trace events.

    Parameters
    ----------
    capacity:
        Maximum retained events; recording beyond it drops the *oldest*
        events (the buffer is a ring) and counts them in :attr:`dropped`,
        so a forgotten long-running trace degrades instead of exhausting
        memory.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._events: Deque[TraceEvent] = deque()
        self._lock = threading.Lock()
        self._dropped = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events discarded because the buffer was full."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        started: float,
        duration: float,
        **attributes: object,
    ) -> TraceEvent:
        """Record one already-measured span and return its event."""
        event = TraceEvent(
            name=name,
            started=started,
            duration=duration,
            wall_time=time.time(),
            attributes=attributes,
        )
        self.append(event)
        return event

    def append(self, event: TraceEvent) -> None:
        """Add one pre-built event (used when merging worker-side events)."""
        with self._lock:
            if len(self._events) >= self._capacity:
                self._events.popleft()
                self._dropped += 1
            self._events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Merge a sequence of pre-built events (e.g. from a pool worker)."""
        for event in events:
            self.append(event)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[_Span]:
        """Measure a block as one span; always records, even on exceptions.

        The span records even when the block raises so a trace never shows
        a phase silently vanishing; the exception propagates unchanged.
        """
        live = _Span(name, dict(attributes))
        try:
            yield live
        finally:
            self.record(
                live.name,
                live.started,
                time.perf_counter() - live.started,
                **live.attributes,
            )

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """A point-in-time copy of the retained events (oldest first)."""
        with self._lock:
            return list(self._events)

    def drain(self) -> List[TraceEvent]:
        """Return the retained events (oldest first) and clear the buffer."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
            return events

    def clear(self) -> None:
        """Drop every retained event and reset the dropped counter."""
        with self._lock:
            self._events.clear()
            self._dropped = 0

    # ------------------------------------------------------------------
    def export_jsonl(self, sink: Union[str, io.TextIOBase]) -> int:
        """Write the retained events as JSON lines; returns the event count.

        ``sink`` is a path or an open text handle.  Path writes are atomic:
        events are serialised into a temporary file in the target directory
        and ``os.replace``-d into place only once every event has been
        written, so a crash (or an unserialisable span attribute) mid-write
        leaves any previous export intact instead of destroying it with a
        truncate-on-open.  Events stay in the buffer — pair with
        :meth:`drain` for incremental exports.
        """
        events = self.events()
        if isinstance(sink, str):
            return self._export_path(sink, events)
        return self._write_jsonl(sink, events)

    def _export_path(self, path: str, events: List[TraceEvent]) -> int:
        """Serialise ``events`` to ``path`` via a same-directory temp file."""
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                count = self._write_jsonl(handle, events)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        os.replace(tmp_path, path)
        return count

    @staticmethod
    def _write_jsonl(handle, events: List[TraceEvent]) -> int:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
        return len(events)

    def __repr__(self) -> str:
        return (
            f"Tracer(events={len(self)}, capacity={self._capacity}, "
            f"dropped={self.dropped})"
        )


class _NoopSpan:
    """The span handed out by :class:`NoopTracer` — attribute sink only."""

    __slots__ = ()

    def set(self, **attributes: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """A tracer that records nothing.

    Drop-in for :class:`Tracer` anywhere a tracer is *required*; code that
    takes ``tracer=None`` (the EVE driver, the engine) should prefer the
    ``None`` check — it is one comparison instead of a method call.
    """

    enabled = False
    capacity = 0
    dropped = 0

    def record(self, name, started, duration, **attributes) -> Optional[TraceEvent]:
        return None

    def append(self, event: TraceEvent) -> None:
        pass

    def extend(self, events: Iterable[TraceEvent]) -> None:
        pass

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[_NoopSpan]:
        yield _NOOP_SPAN

    def events(self) -> List[TraceEvent]:
        return []

    def drain(self) -> List[TraceEvent]:
        return []

    def clear(self) -> None:
        pass

    def export_jsonl(self, sink) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NoopTracer()"


#: Shared no-op instance for callers that need *a* tracer object.
NOOP_TRACER = NoopTracer()
