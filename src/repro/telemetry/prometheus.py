"""Prometheus text-format exposition: rendering helpers and a strict parser.

The render helpers produce `text format version 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ output —
``# HELP`` / ``# TYPE`` headers followed by samples — for the three metric
shapes the engine exports:

* :func:`render_counter` — monotonically increasing totals (by convention
  the metric name ends in ``_total``);
* :func:`render_gauge` — point-in-time values (hit ratio, pool sizes);
* :func:`render_histogram` — cumulative ``_bucket{le=...}`` samples with
  explicit bounds plus the ``_sum`` / ``_count`` pair.

:func:`parse_exposition` is the other direction: a strict parser for the
same grammar (metric-name and label-name character sets, label-value escape
sequences, float values, ``NaN``/``Inf`` literals, one ``TYPE`` per metric
and only before its samples).  It exists so tests can hold
``EngineStats.to_prometheus()`` to the grammar instead of eyeballing
strings — it is not a scrape client.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricSample",
    "escape_help",
    "escape_label_value",
    "format_sample",
    "render_counter",
    "render_gauge",
    "render_histogram",
    "parse_exposition",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _check_metric_name(name: str) -> str:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid Prometheus metric name {name!r}")
    return name


def _check_label_name(name: str) -> str:
    if not _LABEL_NAME.match(name) or name.startswith("__"):
        raise ValueError(f"invalid Prometheus label name {name!r}")
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the text format (backslash, quote, newline)."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only, per the format)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers stay integral, specials use Go names."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ValueError("metric values must be numbers, not booleans")
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def format_sample(
    name: str, value: float, labels: Optional[Mapping[str, str]] = None
) -> str:
    """Render one sample line ``name{labels} value``."""
    _check_metric_name(name)
    if labels:
        rendered = ",".join(
            f'{_check_label_name(key)}="{escape_label_value(str(val))}"'
            for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _header(name: str, help_text: str, metric_type: str) -> List[str]:
    _check_metric_name(name)
    return [
        f"# HELP {name} {escape_help(help_text)}",
        f"# TYPE {name} {metric_type}",
    ]


def render_counter(
    name: str,
    help_text: str,
    value: float,
    labels: Optional[Mapping[str, str]] = None,
) -> List[str]:
    """Render one counter metric (header + a single sample)."""
    return _header(name, help_text, "counter") + [format_sample(name, value, labels)]


def render_gauge(
    name: str,
    help_text: str,
    value: float,
    labels: Optional[Mapping[str, str]] = None,
) -> List[str]:
    """Render one gauge metric (header + a single sample)."""
    return _header(name, help_text, "gauge") + [format_sample(name, value, labels)]


def render_histogram(
    name: str,
    help_text: str,
    series: Sequence[
        Tuple[Optional[Mapping[str, str]], Sequence[float], Sequence[int], float, int]
    ],
) -> List[str]:
    """Render one histogram metric, possibly with several labelled series.

    ``series`` holds ``(labels, bounds, cumulative_counts, sum, count)``
    tuples: ``bounds`` are the explicit upper bucket bounds (ascending,
    excluding ``+Inf``) and ``cumulative_counts`` the matching cumulative
    observation counts.  The mandatory ``+Inf`` bucket (equal to ``count``),
    ``_sum`` and ``_count`` samples are appended per series.
    """
    lines = _header(name, help_text, "histogram")
    for labels, bounds, cumulative, total_sum, count in series:
        base = dict(labels) if labels else {}
        if len(bounds) != len(cumulative):
            raise ValueError(
                f"histogram {name}: {len(bounds)} bounds but "
                f"{len(cumulative)} cumulative counts"
            )
        previous = 0
        for bound, cum in zip(bounds, cumulative):
            if cum < previous:
                raise ValueError(
                    f"histogram {name}: bucket counts must be cumulative "
                    f"(le={bound!r} dropped to {cum} from {previous})"
                )
            previous = cum
            lines.append(
                format_sample(
                    f"{name}_bucket", cum, {**base, "le": _format_value(bound)}
                )
            )
        if previous > count:
            raise ValueError(
                f"histogram {name}: finite buckets hold {previous} observations "
                f"but count is {count}"
            )
        lines.append(format_sample(f"{name}_bucket", count, {**base, "le": "+Inf"}))
        lines.append(format_sample(f"{name}_sum", total_sum, base or None))
        lines.append(format_sample(f"{name}_count", count, base or None))
    return lines


# ----------------------------------------------------------------------
# Parsing (grammar validation for tests and the CI trajectory check)
# ----------------------------------------------------------------------
@dataclass
class MetricSample:
    """One parsed sample line."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0


_SAMPLE_VALUE = re.compile(r"^[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|Inf|NaN)$")


def _parse_labels(raw: str, line_number: int) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block."""
    labels: Dict[str, str] = {}
    position = 0
    length = len(raw)
    while position < length:
        match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", raw[position:])
        if match is None:
            raise ValueError(f"line {line_number}: bad label name at {raw[position:]!r}")
        name = match.group(0)
        position += match.end()
        if position >= length or raw[position] != "=":
            raise ValueError(f"line {line_number}: expected '=' after label {name!r}")
        position += 1
        if position >= length or raw[position] != '"':
            raise ValueError(f"line {line_number}: label {name!r} value must be quoted")
        position += 1
        value_chars: List[str] = []
        while position < length and raw[position] != '"':
            char = raw[position]
            if char == "\\":
                position += 1
                if position >= length:
                    raise ValueError(f"line {line_number}: dangling escape in label value")
                escape = raw[position]
                if escape == "n":
                    value_chars.append("\n")
                elif escape in ('"', "\\"):
                    value_chars.append(escape)
                else:
                    raise ValueError(
                        f"line {line_number}: invalid escape \\{escape} in label value"
                    )
            else:
                value_chars.append(char)
            position += 1
        if position >= length:
            raise ValueError(f"line {line_number}: unterminated label value")
        position += 1  # closing quote
        if name in labels:
            raise ValueError(f"line {line_number}: duplicate label {name!r}")
        labels[name] = "".join(value_chars)
        if position < length:
            if raw[position] != ",":
                raise ValueError(
                    f"line {line_number}: expected ',' between labels, got {raw[position]!r}"
                )
            position += 1
    return labels


def parse_exposition(text: str) -> List[MetricSample]:
    """Parse (and validate) a Prometheus text-format exposition.

    Returns every sample in order.  Raises :class:`ValueError` on any
    grammar violation: malformed names or label blocks, non-numeric values,
    a ``TYPE`` line after samples of its metric or repeated for it, or an
    unknown metric type.  Histogram *semantics* (bucket monotonicity, the
    ``+Inf`` bucket) are deliberately left to callers — the grammar does
    not require them, the tests do.
    """
    samples: List[MetricSample] = []
    typed: Dict[str, str] = {}
    seen_samples: Dict[str, bool] = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                # Free-form comment: legal, skipped.
                continue
            if parts[1] == "HELP":
                if len(parts) < 3:
                    raise ValueError(f"line {line_number}: HELP needs a metric name")
                _check_metric_name(parts[2])
                continue
            if len(parts) != 4:
                raise ValueError(f"line {line_number}: TYPE needs a name and a type")
            _, _, name, metric_type = parts
            _check_metric_name(name)
            if metric_type not in _VALID_TYPES:
                raise ValueError(
                    f"line {line_number}: unknown metric type {metric_type!r}"
                )
            if name in typed:
                raise ValueError(f"line {line_number}: repeated TYPE for {name!r}")
            if seen_samples.get(name):
                raise ValueError(
                    f"line {line_number}: TYPE for {name!r} after its samples"
                )
            typed[name] = metric_type
            continue
        # Sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if match is None:
            raise ValueError(f"line {line_number}: bad metric name in {line!r}")
        name = match.group(1)
        rest = line[match.end():]
        labels: Dict[str, str] = {}
        if rest.startswith("{"):
            closing = rest.rfind("}")
            if closing < 0:
                raise ValueError(f"line {line_number}: unterminated label block")
            labels = _parse_labels(rest[1:closing], line_number)
            rest = rest[closing + 1:]
        fields = rest.split()
        if len(fields) not in (1, 2):
            raise ValueError(
                f"line {line_number}: expected 'value [timestamp]', got {rest!r}"
            )
        if not _SAMPLE_VALUE.match(fields[0]):
            raise ValueError(f"line {line_number}: bad sample value {fields[0]!r}")
        if len(fields) == 2 and not re.match(r"^-?\d+$", fields[1]):
            raise ValueError(f"line {line_number}: bad timestamp {fields[1]!r}")
        value = float(fields[0])
        # A histogram/summary's _bucket/_sum/_count samples belong to the
        # typed family name.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and typed.get(base) in ("histogram", "summary"):
                family = base
                break
        seen_samples[family] = True
        samples.append(MetricSample(name=name, labels=labels, value=value))
    return samples


def samples_by_name(samples: Iterable[MetricSample]) -> Dict[str, List[MetricSample]]:
    """Group parsed samples by metric name (test convenience)."""
    grouped: Dict[str, List[MetricSample]] = {}
    for sample in samples:
        grouped.setdefault(sample.name, []).append(sample)
    return grouped
