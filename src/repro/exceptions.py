"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  Input
validation problems use the more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class VertexError(GraphError):
    """Raised when a vertex id is out of range or otherwise invalid."""


class EdgeError(GraphError):
    """Raised when an edge is invalid (e.g. endpoints out of range)."""


class QueryError(ReproError):
    """Raised when a query ``<s, t, k>`` is malformed.

    Examples include ``s == t``, a non-positive hop constraint, or vertex
    ids that do not exist in the graph.
    """


class DatasetError(ReproError):
    """Raised when a named dataset cannot be generated or located."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is configured inconsistently."""


__all__ = [
    "ReproError",
    "GraphError",
    "VertexError",
    "EdgeError",
    "QueryError",
    "DatasetError",
    "ExperimentError",
]
