"""TDFS: DFS with per-step reachability certification (Rizzi et al. 2014).

TDFS guarantees that every vertex pushed on the DFS stack lies on at least
one output path.  It achieves this by running, at every extension step, a
backward breadth-first search from ``t`` restricted to the graph minus the
current stack and bounded by the remaining hop budget; only out-neighbours
certified to still reach ``t`` are explored.  The delay per output path is
polynomial, at the price of an ``O(|E|)`` check per DFS node — which is why
the paper lists its total complexity as ``O(delta * k * |E|)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Set

from repro._types import Vertex
from repro.enumeration.base import Path, PathEnumerator

__all__ = ["TDFS"]


class TDFS(PathEnumerator):
    """Polynomial-delay DFS with stack-aware backward reachability checks."""

    name = "TDFS"

    def _distances_to_target_avoiding(
        self, target: Vertex, blocked: Set[Vertex], max_depth: int
    ) -> Dict[Vertex, int]:
        """Backward BFS from ``target`` in ``G \\ blocked`` bounded by ``max_depth``.

        ``target`` itself is never considered blocked (it terminates paths).
        """
        graph = self.graph
        distances: Dict[Vertex, int] = {target: 0}
        queue: deque = deque([target])
        while queue:
            vertex = queue.popleft()
            depth = distances[vertex]
            if depth >= max_depth:
                continue
            for previous in graph.in_neighbors(vertex):
                if previous in distances or previous in blocked:
                    continue
                distances[previous] = depth + 1
                queue.append(previous)
        return distances

    def iter_paths(self, source: Vertex, target: Vertex, k: int) -> Iterator[Path]:
        graph = self.graph
        space = self.space
        stack: List[Vertex] = [source]
        on_stack: Set[Vertex] = {source}
        space.allocate(1, category="stack")

        def explore(vertex: Vertex) -> Iterator[Path]:
            if vertex == target:
                yield tuple(stack)
                return
            remaining = k - (len(stack) - 1)
            if remaining <= 0:
                return
            # Certify which out-neighbours can still reach t without reusing
            # stack vertices and within the remaining budget.
            blocked = set(on_stack)
            blocked.discard(target)
            reach = self._distances_to_target_avoiding(target, blocked, remaining - 1)
            space.allocate(len(reach), category="certification")
            for neighbor in graph.out_neighbors(vertex):
                if neighbor in on_stack:
                    continue
                distance = reach.get(neighbor)
                if distance is None or distance > remaining - 1:
                    continue
                stack.append(neighbor)
                on_stack.add(neighbor)
                space.allocate(1, category="stack")
                yield from explore(neighbor)
                stack.pop()
                on_stack.discard(neighbor)
                space.release(1, category="stack")
            space.release(len(reach), category="certification")

        yield from explore(source)
