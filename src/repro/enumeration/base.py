"""Common interface for hop-constrained s-t simple path enumerators."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.space import SpaceMeter
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["Path", "EnumerationResult", "PathEnumerator"]

Path = Tuple[Vertex, ...]


@dataclass
class EnumerationResult:
    """All k-hop-constrained s-t simple paths found for one query.

    ``paths`` stores every path as a tuple of vertices (``s`` first, ``t``
    last).  ``space`` reports the peak number of retained items inside the
    enumerator (partial paths, stacks, index entries), which is the quantity
    Figures 9/10(a) compare across algorithms.  ``truncated`` is set when a
    time budget stopped the enumeration early (the paper's ``INF`` cut-off).
    """

    source: Vertex
    target: Vertex
    k: int
    paths: List[Path] = field(default_factory=list)
    space: SpaceMeter = field(default_factory=SpaceMeter)
    seconds: float = 0.0
    algorithm: str = "enumerator"
    truncated: bool = False

    @property
    def count(self) -> int:
        """Number of simple paths found."""
        return len(self.paths)

    def edges(self) -> Set[Edge]:
        """Union of the edges of all paths (the enumeration-based SPG)."""
        found: Set[Edge] = set()
        for path in self.paths:
            for i in range(len(path) - 1):
                found.add((path[i], path[i + 1]))
        return found

    def vertices(self) -> Set[Vertex]:
        """Union of the vertices of all paths."""
        found: Set[Vertex] = set()
        for path in self.paths:
            found.update(path)
        return found

    def lengths_histogram(self) -> dict:
        """Return ``{length: number of paths}``."""
        histogram: dict = {}
        for path in self.paths:
            length = len(path) - 1
            histogram[length] = histogram.get(length, 0) + 1
        return histogram


class PathEnumerator(abc.ABC):
    """Base class for hop-constrained s-t simple path enumerators.

    Subclasses implement :meth:`iter_paths`; :meth:`enumerate` wraps it with
    validation, timing and result packaging.
    """

    name = "enumerator"

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self.space = SpaceMeter()

    # ------------------------------------------------------------------
    def enumerate(
        self,
        source: Vertex,
        target: Vertex,
        k: int,
        time_budget: Optional[float] = None,
    ) -> EnumerationResult:
        """Enumerate all simple paths from ``source`` to ``target`` within ``k`` hops.

        ``time_budget`` (seconds) cooperatively stops the enumeration once
        exceeded; the result is then marked ``truncated`` — mirroring the
        paper's practice of reporting ``INF`` for runs over the time limit.
        """
        self.validate(source, target, k)
        self.space = SpaceMeter()
        started = time.perf_counter()
        paths: List[Path] = []
        truncated = False
        for path in self.iter_paths(source, target, k):
            paths.append(path)
            if time_budget is not None and time.perf_counter() - started > time_budget:
                truncated = True
                break
        elapsed = time.perf_counter() - started
        return EnumerationResult(
            source=source,
            target=target,
            k=k,
            paths=paths,
            space=self.space,
            seconds=elapsed,
            algorithm=self.name,
            truncated=truncated,
        )

    def count_paths(
        self,
        source: Vertex,
        target: Vertex,
        k: int,
        time_budget: Optional[float] = None,
    ) -> int:
        """Count paths without retaining them (used by Figure 2(b))."""
        self.validate(source, target, k)
        self.space = SpaceMeter()
        started = time.perf_counter()
        total = 0
        for _ in self.iter_paths(source, target, k):
            total += 1
            if time_budget is not None and time.perf_counter() - started > time_budget:
                break
        return total

    @abc.abstractmethod
    def iter_paths(self, source: Vertex, target: Vertex, k: int) -> Iterator[Path]:
        """Yield each k-hop-constrained s-t simple path exactly once."""

    # ------------------------------------------------------------------
    def validate(self, source: Vertex, target: Vertex, k: int) -> None:
        """Raise :class:`QueryError` for malformed queries."""
        self.graph.check_vertex(source)
        self.graph.check_vertex(target)
        if source == target:
            raise QueryError("source and target must be distinct")
        if k < 1:
            raise QueryError(f"hop constraint k must be >= 1, got {k}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self.graph.name!r})"
