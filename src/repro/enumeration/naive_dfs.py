"""Naive depth-bounded DFS enumeration.

The straightforward solution mentioned in Section 1.2: explore every simple
path from ``s`` of length at most ``k`` and report those ending at ``t``.
No pruning beyond the hop budget is applied, so the running time is
``O(|V|^k)`` in the worst case.  This is the weakest baseline and is used in
tests as an easily-auditable reference implementation.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro._types import Vertex
from repro.enumeration.base import Path, PathEnumerator

__all__ = ["NaiveDFS"]


class NaiveDFS(PathEnumerator):
    """Depth-bounded DFS with no pruning."""

    name = "NaiveDFS"

    def iter_paths(self, source: Vertex, target: Vertex, k: int) -> Iterator[Path]:
        graph = self.graph
        space = self.space
        stack: List[Vertex] = [source]
        on_stack: Set[Vertex] = {source}
        space.allocate(1, category="stack")

        def explore(vertex: Vertex) -> Iterator[Path]:
            if vertex == target:
                yield tuple(stack)
                return
            if len(stack) - 1 >= k:
                return
            for neighbor in graph.out_neighbors(vertex):
                if neighbor in on_stack:
                    continue
                stack.append(neighbor)
                on_stack.add(neighbor)
                space.allocate(1, category="stack")
                yield from explore(neighbor)
                stack.pop()
                on_stack.discard(neighbor)
                space.release(1, category="stack")

        yield from explore(source)
