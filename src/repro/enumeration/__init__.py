"""Hop-constrained s-t simple path enumeration baselines.

The paper compares EVE against generating ``SPG_k(s, t)`` by enumerating all
k-hop-constrained s-t simple paths with state-of-the-art enumerators and
unioning their edges.  This package re-implements those enumerators:

* :class:`~repro.enumeration.naive_dfs.NaiveDFS` — depth-bounded DFS with no
  pruning (the textbook straw man).
* :class:`~repro.enumeration.tdfs.TDFS` — Rizzi et al.'s polynomial-delay DFS
  that re-checks reachability of ``t`` under the current stack.
* :class:`~repro.enumeration.bcdfs.BCDFS` — barrier-pruned DFS in the style
  of Peng et al. (VLDB 2019), with blocker-dependency unblocking.
* :class:`~repro.enumeration.join.JoinEnumerator` — JOIN: enumerate forward
  and backward partial paths and concatenate them at a middle cut.
* :class:`~repro.enumeration.pathenum.PathEnum` — PathEnum (SIGMOD 2021):
  a light-weight distance index plus a cost-based choice between index-DFS
  and index-JOIN.

All enumerators share the :class:`~repro.enumeration.base.PathEnumerator`
interface and can run on any :class:`~repro.graph.digraph.DiGraph`,
including subgraphs such as ``SPG_k`` or ``G^k_st`` (used for the Table 4
and Table 5 speedup experiments).
"""

from repro.enumeration.base import EnumerationResult, PathEnumerator
from repro.enumeration.bcdfs import BCDFS
from repro.enumeration.join import JoinEnumerator
from repro.enumeration.naive_dfs import NaiveDFS
from repro.enumeration.pathenum import PathEnum
from repro.enumeration.spg_via_enumeration import EnumerationSPGBuilder
from repro.enumeration.tdfs import TDFS

__all__ = [
    "PathEnumerator",
    "EnumerationResult",
    "NaiveDFS",
    "TDFS",
    "BCDFS",
    "JoinEnumerator",
    "PathEnum",
    "EnumerationSPGBuilder",
]
