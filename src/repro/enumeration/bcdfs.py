"""BC-DFS: barrier-pruned DFS enumeration (Peng et al., VLDB 2019 style).

BC-DFS augments distance-pruned DFS with *barriers*: when the search from a
vertex ``v`` with ``r`` remaining hops fails to emit any path, it records
``bar[v] = r`` so later visits with at most ``r`` remaining hops are pruned
immediately.  Because failures may be caused by vertices currently on the
stack, each barrier also records the set of stack vertices ("blockers") the
failed exploration actually touched.  A barrier is only trusted while all of
its blockers are still on the stack; when a blocker is popped, every barrier
depending on it is reset (Johnson-style unblocking).  This keeps the pruning
sound: a barrier with blocker set ``B`` certifies "no simple path from ``v``
to ``t`` within ``r`` hops avoids ``B``", which remains true for any stack
containing ``B``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro._types import Vertex
from repro.core.distances import bounded_bfs
from repro.enumeration.base import Path, PathEnumerator

__all__ = ["BCDFS"]


class BCDFS(PathEnumerator):
    """Barrier-pruned DFS with blocker-dependency tracking."""

    name = "BC-DFS"

    def iter_paths(self, source: Vertex, target: Vertex, k: int) -> Iterator[Path]:
        graph = self.graph
        space = self.space

        # Static pruning index: exact distance to t, bounded by k.
        dist_to_target = bounded_bfs(graph, target, k, reverse=True)
        dist_get = dist_to_target.get
        space.allocate(len(dist_to_target), category="distance-index")

        barrier: Dict[Vertex, int] = {}
        barrier_blockers: Dict[Vertex, Set[Vertex]] = {}
        blocked_by: Dict[Vertex, Set[Vertex]] = {}

        stack: List[Vertex] = [source]
        on_stack: Set[Vertex] = {source}
        space.allocate(1, category="stack")

        def reset_dependents(popped: Vertex) -> None:
            """Reset every barrier that depended on ``popped`` being on the stack."""
            dependents = blocked_by.pop(popped, None)
            if not dependents:
                return
            for vertex in dependents:
                if vertex in barrier:
                    del barrier[vertex]
                barrier_blockers.pop(vertex, None)

        def explore(vertex: Vertex, remaining: int) -> Iterator[Tuple[bool, Path]]:
            """Yield ``(True, path)`` events; the final event's flag reports success."""
            found = False
            blockers: Set[Vertex] = set()
            for neighbor in graph.out_neighbors(vertex):
                if neighbor == target:
                    if remaining >= 1:
                        found = True
                        yield True, tuple(stack) + (target,)
                    continue
                if remaining - 1 < 1:
                    continue
                if neighbor in on_stack:
                    blockers.add(neighbor)
                    continue
                distance = dist_get(neighbor)
                if distance is None or distance > remaining - 1:
                    continue
                if barrier.get(neighbor, 0) >= remaining - 1:
                    blockers |= barrier_blockers.get(neighbor, set())
                    continue
                stack.append(neighbor)
                on_stack.add(neighbor)
                space.allocate(1, category="stack")
                child_found = False
                for ok, path in explore(neighbor, remaining - 1):
                    child_found = child_found or ok
                    if ok:
                        yield True, path
                stack.pop()
                on_stack.discard(neighbor)
                space.release(1, category="stack")
                reset_dependents(neighbor)
                if child_found:
                    found = True
                else:
                    blockers |= barrier_blockers.get(neighbor, set())
            if not found:
                barrier[vertex] = max(barrier.get(vertex, 0), remaining)
                barrier_blockers[vertex] = set(blockers)
                space.allocate(1, category="barrier")
                for blocker in blockers:
                    blocked_by.setdefault(blocker, set()).add(vertex)

        if dist_get(source) is None and source != target:
            return
        for ok, path in explore(source, k):
            if ok:
                yield path
