"""Baseline SPG generation: enumerate all paths, union their edges.

This is the "straightforward solution" of Section 1.2 and the way the
baselines of Figure 8 produce ``SPG_k(s, t)``: run a hop-constrained s-t
simple path enumerator (JOIN, PathEnum, ...) and insert every edge of every
output path into the answer set.  Its cost is proportional to the number of
paths, which grows exponentially with ``k`` on dense graphs — exactly the
behaviour EVE is designed to avoid.
"""

from __future__ import annotations

import time
from typing import Optional, Type

from repro._types import Vertex
from repro.core.result import PhaseStats, SimplePathGraphResult
from repro.enumeration.base import PathEnumerator
from repro.graph.digraph import DiGraph

__all__ = ["EnumerationSPGBuilder"]


class EnumerationSPGBuilder:
    """Builds ``SPG_k(s, t)`` by unioning the edges of enumerated paths.

    Parameters
    ----------
    graph:
        The input graph (or a restricted search space such as ``G^k_st``).
    enumerator_class:
        Any :class:`~repro.enumeration.base.PathEnumerator` subclass.
    time_budget:
        Optional per-query seconds after which the enumeration is stopped
        and the result marked inexact (the paper's ``INF`` cut-off).
    """

    def __init__(
        self,
        graph: DiGraph,
        enumerator_class: Type[PathEnumerator],
        time_budget: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.enumerator_class = enumerator_class
        self.enumerator = enumerator_class(graph)
        self.time_budget = time_budget

    @property
    def name(self) -> str:
        """Algorithm name used in reports (e.g. ``SPG[PathEnum]``)."""
        return f"SPG[{self.enumerator.name}]"

    def query(self, source: Vertex, target: Vertex, k: int) -> SimplePathGraphResult:
        """Return ``SPG_k(source, target)`` computed by full enumeration."""
        started = time.perf_counter()
        enumeration = self.enumerator.enumerate(
            source, target, k, time_budget=self.time_budget
        )
        elapsed = time.perf_counter() - started
        edges = enumeration.edges()
        phases = PhaseStats()
        phases.verification_seconds = elapsed
        return SimplePathGraphResult(
            source=source,
            target=target,
            k=k,
            edges=edges,
            upper_bound_edges=set(edges),
            labels={},
            phases=phases,
            space=enumeration.space,
            exact=not enumeration.truncated,
            algorithm=self.name,
        )
