"""JOIN: enumerate partial paths and concatenate them at a middle cut.

The JOIN algorithm of Peng et al. improves response time by splitting every
s-t simple path at its middle hop: forward partial paths from ``s`` and
backward partial paths into ``t`` are enumerated (with distance pruning) and
joined on their shared middle vertex, checking vertex-disjointness of the
two halves.  Storing the partial paths makes JOIN the most space-hungry
baseline (Figure 9), but joining can be faster than a single deep DFS when
the path count is moderate.

A path of length ``l`` is generated exactly once: from the forward partial
of length ``ceil(l/2)`` and the backward partial of length ``floor(l/2)``
meeting at the vertex in position ``ceil(l/2)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Set, Tuple

from repro._types import Vertex
from repro.core.distances import bounded_bfs
from repro.enumeration.base import Path, PathEnumerator

__all__ = ["JoinEnumerator"]


class JoinEnumerator(PathEnumerator):
    """Middle-cut join enumeration of hop-constrained s-t simple paths."""

    name = "JOIN"

    # ------------------------------------------------------------------
    def _partial_paths(
        self,
        start: Vertex,
        excluded: Vertex,
        max_hops: int,
        prune_distances: Mapping[Vertex, int],
        total_budget: int,
        reverse: bool,
    ) -> Dict[Tuple[Vertex, int], List[Path]]:
        """Enumerate simple partial paths from ``start`` grouped by (endpoint, length).

        ``reverse=True`` walks in-edges, which enumerates partial paths *into*
        ``start`` (used for the backward half).  ``prune_distances`` holds the
        distance from each vertex to the *other* endpoint and prunes
        extensions that cannot fit in ``total_budget`` hops overall.
        """
        graph = self.graph
        space = self.space
        prune_get = prune_distances.get
        groups: Dict[Tuple[Vertex, int], List[Path]] = {}
        stack: List[Vertex] = [start]
        on_stack: Set[Vertex] = {start}

        def record(vertex: Vertex) -> None:
            length = len(stack) - 1
            key = (vertex, length)
            groups.setdefault(key, []).append(tuple(stack))
            space.allocate(len(stack), category="partial-paths")

        def explore(vertex: Vertex) -> None:
            depth = len(stack) - 1
            if depth >= max_hops:
                return
            neighbors = (
                graph.in_neighbors(vertex) if reverse else graph.out_neighbors(vertex)
            )
            for neighbor in neighbors:
                if neighbor in on_stack or neighbor == excluded:
                    continue
                other_side = prune_get(neighbor)
                if other_side is None or depth + 1 + other_side > total_budget:
                    continue
                stack.append(neighbor)
                on_stack.add(neighbor)
                record(neighbor)
                explore(neighbor)
                stack.pop()
                on_stack.discard(neighbor)

        explore(start)
        return groups

    # ------------------------------------------------------------------
    def iter_paths(self, source: Vertex, target: Vertex, k: int) -> Iterator[Path]:
        graph = self.graph
        space = self.space

        dist_to_target = bounded_bfs(graph, target, k, reverse=True)
        dist_from_source = bounded_bfs(graph, source, k, reverse=False)
        space.allocate(len(dist_to_target) + len(dist_from_source), category="distance-index")

        # Length-1 path (the only split whose middle vertex is t itself).
        if graph.has_edge(source, target):
            yield (source, target)
        if k < 2:
            return

        forward_budget = (k + 1) // 2
        backward_budget = k // 2
        forward_groups = self._partial_paths(
            start=source,
            excluded=target,
            max_hops=forward_budget,
            prune_distances=dist_to_target,
            total_budget=k,
            reverse=False,
        )
        backward_groups = self._partial_paths(
            start=target,
            excluded=source,
            max_hops=backward_budget,
            prune_distances=dist_from_source,
            total_budget=k,
            reverse=True,
        )

        for length in range(2, k + 1):
            forward_hops = (length + 1) // 2
            backward_hops = length - forward_hops
            for (middle, hops), prefixes in forward_groups.items():
                if hops != forward_hops:
                    continue
                suffixes = backward_groups.get((middle, backward_hops))
                if not suffixes:
                    continue
                for prefix in prefixes:
                    prefix_vertices = set(prefix)
                    for suffix in suffixes:
                        # suffix is stored from t backwards: (t, ..., middle)
                        joined = True
                        for vertex in suffix[:-1]:
                            if vertex in prefix_vertices:
                                joined = False
                                break
                        if joined:
                            yield prefix + tuple(reversed(suffix[:-1]))
