"""PathEnum: index-backed enumeration with a cost-based optimizer.

PathEnum (Sun et al., SIGMOD 2021) is the state-of-the-art hop-constrained
s-t simple path enumerator the paper compares against and later accelerates
with ``SPG_k``.  The algorithm has three ingredients, all reproduced here:

1. **Light-weight online index** — a per-query distance index (forward from
   ``s`` and backward from ``t``) restricted to the candidate space
   ``dist(s, u) + 1 + dist(v, t) <= k``; the candidate adjacency lists are
   sorted by increasing distance to ``t`` so promising extensions come
   first.
2. **Cost-based optimizer** — walk-count dynamic programming over the
   candidate graph estimates the work of a pruned DFS versus a middle-cut
   join; the cheaper strategy is chosen per query.
3. **Executors** — an index-pruned DFS and an index-backed join, both
   enumerating each simple path exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro._types import Vertex
from repro.core.distances import DistanceIndex, compute_distance_index
from repro.enumeration.base import Path, PathEnumerator

__all__ = ["PathEnum", "PathEnumIndex"]

_CAP = 10**12  # walk-count cap to avoid huge integers in the estimator


class PathEnumIndex:
    """Per-query candidate graph: distances plus pruned, sorted adjacency."""

    def __init__(self, graph, source: Vertex, target: Vertex, k: int) -> None:
        self.source = source
        self.target = target
        self.k = k
        self.distances: DistanceIndex = compute_distance_index(
            graph, source, target, k, strategy="adaptive"
        )
        from_source = self.distances.from_source
        to_target = self.distances.to_target
        out_adjacency: Dict[Vertex, List[Vertex]] = {}
        in_adjacency: Dict[Vertex, List[Vertex]] = {}
        edge_count = 0
        for u, dist_su in from_source.items():
            if dist_su + 1 > k:
                continue
            for v in graph.out_neighbors(u):
                dist_vt = to_target.get(v)
                if dist_vt is None or dist_su + 1 + dist_vt > k:
                    continue
                out_adjacency.setdefault(u, []).append(v)
                in_adjacency.setdefault(v, []).append(u)
                edge_count += 1
        for u, neighbors in out_adjacency.items():
            neighbors.sort(key=lambda v: to_target.get(v, k + 1))
        for v, neighbors in in_adjacency.items():
            neighbors.sort(key=lambda u: from_source.get(u, k + 1))
        self.out_adjacency = out_adjacency
        self.in_adjacency = in_adjacency
        self.num_edges = edge_count

    def size(self) -> int:
        """Number of stored index entries (for space accounting)."""
        return self.distances.size() + 2 * self.num_edges


class PathEnum(PathEnumerator):
    """Index + cost-based optimizer enumeration of s-t simple paths."""

    name = "PathEnum"

    def __init__(self, graph, force_strategy: Optional[str] = None) -> None:
        super().__init__(graph)
        if force_strategy not in (None, "dfs", "join"):
            raise ValueError("force_strategy must be None, 'dfs' or 'join'")
        self.force_strategy = force_strategy
        self.last_strategy: Optional[str] = None
        # Number of neighbour expansions performed by the last enumeration;
        # a machine-independent measure of search work (used by Table 4).
        self.expansions = 0

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _walk_counts(
        self,
        adjacency: Dict[Vertex, List[Vertex]],
        start: Vertex,
        max_depth: int,
    ) -> List[Dict[Vertex, int]]:
        """``counts[d][v]`` = number of length-``d`` walks from ``start`` to ``v``."""
        counts: List[Dict[Vertex, int]] = [{start: 1}]
        for depth in range(1, max_depth + 1):
            layer: Dict[Vertex, int] = {}
            for vertex, amount in counts[depth - 1].items():
                for neighbor in adjacency.get(vertex, ()):
                    layer[neighbor] = min(_CAP, layer.get(neighbor, 0) + amount)
            counts.append(layer)
        return counts

    def _choose_strategy(self, index: PathEnumIndex, k: int) -> str:
        """Estimate DFS vs JOIN cost from walk counts and pick the cheaper."""
        if self.force_strategy is not None:
            return self.force_strategy
        forward_counts = self._walk_counts(index.out_adjacency, index.source, k)
        backward_counts = self._walk_counts(index.in_adjacency, index.target, k)
        dfs_cost = sum(sum(layer.values()) for layer in forward_counts)
        forward_budget = (k + 1) // 2
        backward_budget = k - forward_budget
        forward_reach: Dict[Vertex, int] = {}
        for depth in range(forward_budget + 1):
            for vertex, amount in forward_counts[depth].items():
                forward_reach[vertex] = min(_CAP, forward_reach.get(vertex, 0) + amount)
        backward_reach: Dict[Vertex, int] = {}
        for depth in range(backward_budget + 1):
            for vertex, amount in backward_counts[depth].items():
                backward_reach[vertex] = min(_CAP, backward_reach.get(vertex, 0) + amount)
        join_cost = sum(
            amount * backward_reach.get(vertex, 0)
            for vertex, amount in forward_reach.items()
        )
        join_cost += sum(forward_reach.values()) + sum(backward_reach.values())
        return "join" if join_cost < dfs_cost else "dfs"

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _dfs(self, index: PathEnumIndex, k: int) -> Iterator[Path]:
        source, target = index.source, index.target
        to_target = index.distances.to_target
        out_adjacency = index.out_adjacency
        space = self.space
        stack: List[Vertex] = [source]
        on_stack: Set[Vertex] = {source}

        def explore(vertex: Vertex) -> Iterator[Path]:
            depth = len(stack) - 1
            for neighbor in out_adjacency.get(vertex, ()):
                self.expansions += 1
                if neighbor == target:
                    if depth + 1 <= k:
                        yield tuple(stack) + (target,)
                    continue
                if neighbor in on_stack:
                    continue
                distance = to_target.get(neighbor)
                if distance is None or depth + 1 + distance > k:
                    continue
                stack.append(neighbor)
                on_stack.add(neighbor)
                space.allocate(1, category="stack")
                yield from explore(neighbor)
                stack.pop()
                on_stack.discard(neighbor)
                space.release(1, category="stack")

        yield from explore(source)

    def _join(self, index: PathEnumIndex, k: int) -> Iterator[Path]:
        source, target = index.source, index.target
        space = self.space
        to_target = index.distances.to_target
        from_source = index.distances.from_source

        if target in index.out_adjacency.get(source, ()):
            yield (source, target)
        if k < 2:
            return

        forward_budget = (k + 1) // 2
        backward_budget = k // 2
        forward_groups = self._partials(
            index.out_adjacency, source, target, forward_budget, to_target, k
        )
        backward_groups = self._partials(
            index.in_adjacency, target, source, backward_budget, from_source, k
        )
        for length in range(2, k + 1):
            forward_hops = (length + 1) // 2
            backward_hops = length - forward_hops
            for (middle, hops), prefixes in forward_groups.items():
                if hops != forward_hops:
                    continue
                suffixes = backward_groups.get((middle, backward_hops))
                if not suffixes:
                    continue
                for prefix in prefixes:
                    prefix_vertices = set(prefix)
                    for suffix in suffixes:
                        self.expansions += 1
                        if any(vertex in prefix_vertices for vertex in suffix[:-1]):
                            continue
                        yield prefix + tuple(reversed(suffix[:-1]))

    def _partials(
        self,
        adjacency: Dict[Vertex, List[Vertex]],
        start: Vertex,
        excluded: Vertex,
        max_hops: int,
        other_distance: Dict[Vertex, int],
        total_budget: int,
    ) -> Dict[Tuple[Vertex, int], List[Path]]:
        space = self.space
        groups: Dict[Tuple[Vertex, int], List[Path]] = {}
        stack: List[Vertex] = [start]
        on_stack: Set[Vertex] = {start}

        def explore(vertex: Vertex) -> None:
            depth = len(stack) - 1
            if depth >= max_hops:
                return
            for neighbor in adjacency.get(vertex, ()):
                self.expansions += 1
                if neighbor in on_stack or neighbor == excluded:
                    continue
                distance = other_distance.get(neighbor)
                if distance is None or depth + 1 + distance > total_budget:
                    continue
                stack.append(neighbor)
                on_stack.add(neighbor)
                groups.setdefault((neighbor, depth + 1), []).append(tuple(stack))
                space.allocate(depth + 2, category="partial-paths")
                explore(neighbor)
                stack.pop()
                on_stack.discard(neighbor)

        explore(start)
        return groups

    # ------------------------------------------------------------------
    def iter_paths(self, source: Vertex, target: Vertex, k: int) -> Iterator[Path]:
        self.expansions = 0
        index = PathEnumIndex(self.graph, source, target, k)
        self.space.allocate(index.size(), category="index")
        self.expansions += index.num_edges
        if index.distances.shortest_st_distance() > k:
            self.last_strategy = "dfs"
            return
        strategy = self._choose_strategy(index, k)
        self.last_strategy = strategy
        if strategy == "join":
            yield from self._join(index, k)
        else:
            yield from self._dfs(index, k)
