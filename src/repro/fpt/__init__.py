"""Fixed-parameter tractable machinery (Theorem 2.7).

The paper proves that SPG generation is FPT by reducing the membership test
of each edge to the Directed k-(s,t)-Path problem on an edge-subdivided
auxiliary graph and invoking a colour-coding solver.  This package
implements both pieces — the randomized colour-coding detector
(:mod:`repro.fpt.color_coding`) and the edge-subdivision reduction — mainly
as an executable companion to the theorem and as an extra cross-check for
small graphs in the test suite.
"""

from repro.fpt.color_coding import (
    ColorCodingDetector,
    fpt_edge_in_spg,
    fpt_spg,
    subdivide_except,
)

__all__ = ["ColorCodingDetector", "subdivide_except", "fpt_edge_in_spg", "fpt_spg"]
