"""Colour-coding k-path detection and the Theorem 2.7 reduction.

Theorem 2.7 of the paper shows the SPG-generation problem is fixed-parameter
tractable: membership of an edge ``e(u, v)`` in ``SPG_k(s, t)`` reduces to
the Directed k-(s,t)-Path problem on an auxiliary graph obtained by
*subdividing* every edge except ``e(u, v)``; an s-t simple path of odd
length ``k'`` in the auxiliary graph corresponds to an s-t simple path of
length ``(k' + 1) / 2`` through ``e(u, v)`` in the original graph.

Two detectors are provided for the exact-length simple path test:

* a deterministic dynamic program over vertex subsets (exponential in the
  number of vertices, fine for the small graphs used in tests), and
* the classic randomized colour-coding algorithm (Alon, Yuster, Zwick),
  exponential only in the path length.

As the paper notes (and [46] observed experimentally), the FPT route has a
noticeable failure rate and is far slower than EVE in practice; it is kept
as an executable companion to the theorem and as an extra oracle for tests.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Set, Tuple

from repro._types import Edge, Vertex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["subdivide_except", "ColorCodingDetector", "fpt_edge_in_spg", "fpt_spg"]


def subdivide_except(graph: DiGraph, kept_edge: Edge) -> DiGraph:
    """Subdivide every edge of ``graph`` except ``kept_edge``.

    Each edge ``(a, b) != kept_edge`` is replaced by ``(a, w)`` and
    ``(w, b)`` for a fresh vertex ``w``; the kept edge stays intact, so any
    odd-length s-t simple path in the result must traverse it.
    """
    if not graph.has_edge(*kept_edge):
        raise QueryError(f"edge {kept_edge} is not present in the graph")
    edges: List[Edge] = []
    next_vertex = graph.num_vertices
    for u, v in graph.edges():
        if (u, v) == kept_edge:
            edges.append((u, v))
            continue
        middle = next_vertex
        next_vertex += 1
        edges.append((u, middle))
        edges.append((middle, v))
    return DiGraph(next_vertex, edges, name=f"{graph.name}-subdivided")


class ColorCodingDetector:
    """Detects s-t simple paths of an exact hop length.

    ``method`` may be ``"auto"`` (subset DP for small graphs, colour coding
    otherwise), ``"exact"`` or ``"color-coding"``.
    """

    def __init__(
        self,
        graph: DiGraph,
        method: str = "auto",
        seed: int = 0,
        trials: Optional[int] = None,
        exact_vertex_limit: int = 22,
    ) -> None:
        if method not in ("auto", "exact", "color-coding"):
            raise QueryError(f"unknown detection method {method!r}")
        self.graph = graph
        self.method = method
        self.seed = seed
        self.trials = trials
        self.exact_vertex_limit = exact_vertex_limit

    # ------------------------------------------------------------------
    def exists_path(self, source: Vertex, target: Vertex, length: int) -> bool:
        """True when an s-t simple path with exactly ``length`` edges exists."""
        self.graph.check_vertex(source)
        self.graph.check_vertex(target)
        if length < 1 or source == target:
            return False
        method = self.method
        if method == "auto":
            method = (
                "exact"
                if self.graph.num_vertices <= self.exact_vertex_limit
                else "color-coding"
            )
        if method == "exact":
            return self._exists_exact(source, target, length)
        return self._exists_color_coding(source, target, length)

    # ------------------------------------------------------------------
    def _exists_exact(self, source: Vertex, target: Vertex, length: int) -> bool:
        """Subset DP: reachable[(v, visited_mask)] for paths starting at source."""
        if length >= self.graph.num_vertices:
            return False
        graph = self.graph
        start_mask = 1 << source
        current: Set[Tuple[Vertex, int]] = {(source, start_mask)}
        for _ in range(length):
            nxt: Set[Tuple[Vertex, int]] = set()
            for vertex, mask in current:
                for neighbor in graph.out_neighbors(vertex):
                    bit = 1 << neighbor
                    if mask & bit:
                        continue
                    nxt.add((neighbor, mask | bit))
            current = nxt
            if not current:
                return False
        return any(vertex == target for vertex, _ in current)

    def _exists_color_coding(self, source: Vertex, target: Vertex, length: int) -> bool:
        """Randomized colour coding with enough trials for ~95% success."""
        graph = self.graph
        num_colors = length + 1
        trials = self.trials
        if trials is None:
            # Probability a fixed path is colourful is (k+1)!/(k+1)^(k+1) ~ e^-(k+1).
            trials = int(math.ceil(3.0 * math.exp(num_colors)))
        rng = random.Random(self.seed)
        full_mask = (1 << num_colors) - 1
        for _ in range(trials):
            colors: Dict[Vertex, int] = {
                v: rng.randrange(num_colors) for v in graph.vertices()
            }
            # DP over (vertex, used colour set) for colourful walks from source.
            current: Dict[Vertex, Set[int]] = {source: {1 << colors[source]}}
            for _ in range(length):
                nxt: Dict[Vertex, Set[int]] = {}
                for vertex, masks in current.items():
                    for neighbor in graph.out_neighbors(vertex):
                        bit = 1 << colors[neighbor]
                        for mask in masks:
                            if mask & bit:
                                continue
                            nxt.setdefault(neighbor, set()).add(mask | bit)
                current = nxt
                if not current:
                    break
            if target in current and full_mask in current[target]:
                return True
        return False


def fpt_edge_in_spg(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    edge: Edge,
    method: str = "auto",
    seed: int = 0,
) -> bool:
    """Decide ``edge in SPG_k(source, target)`` via the Theorem 2.7 reduction."""
    if not graph.has_edge(*edge):
        return False
    auxiliary = subdivide_except(graph, edge)
    detector = ColorCodingDetector(auxiliary, method=method, seed=seed)
    for odd_length in range(1, 2 * k, 2):
        if detector.exists_path(source, target, odd_length):
            return True
    return False


def fpt_spg(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    method: str = "auto",
    seed: int = 0,
) -> Set[Edge]:
    """Compute ``SPG_k(s, t)`` edge-by-edge with the FPT reduction (slow)."""
    return {
        edge
        for edge in graph.edges()
        if fpt_edge_in_spg(graph, source, target, k, edge, method=method, seed=seed)
    }
