"""k-hop reachability primitives.

The workload generators only issue queries whose target is reachable from
the source within ``k`` hops; other pairs are filtered out by a k-hop
reachability check, mirroring the paper's setup (Section 6.1).  A meet-in-
the-middle bi-directional BFS keeps the check cheap even for larger ``k``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro._types import Vertex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["k_hop_distance", "is_k_hop_reachable"]


def k_hop_distance(
    graph: DiGraph, source: Vertex, target: Vertex, k: int
) -> Optional[int]:
    """Return ``dist(source, target)`` if it is at most ``k``, else ``None``.

    Uses bi-directional BFS: the forward and backward waves are expanded
    alternately (smaller frontier first) until they meet or the combined
    depth exceeds ``k``.
    """
    graph.check_vertex(source)
    graph.check_vertex(target)
    if k < 0:
        raise QueryError(f"hop budget must be non-negative, got {k}")
    if source == target:
        return 0

    forward: Dict[Vertex, int] = {source: 0}
    backward: Dict[Vertex, int] = {target: 0}
    forward_frontier = [source]
    backward_frontier = [target]
    forward_depth = 0
    backward_depth = 0
    best: Optional[int] = None

    while forward_frontier and backward_frontier and forward_depth + backward_depth < k:
        expand_forward = len(forward_frontier) <= len(backward_frontier)
        if expand_forward:
            forward_depth += 1
            next_frontier = []
            for vertex in forward_frontier:
                for neighbor in graph.out_neighbors(vertex):
                    if neighbor in forward:
                        continue
                    forward[neighbor] = forward_depth
                    next_frontier.append(neighbor)
                    if neighbor in backward:
                        total = forward_depth + backward[neighbor]
                        if best is None or total < best:
                            best = total
            forward_frontier = next_frontier
        else:
            backward_depth += 1
            next_frontier = []
            for vertex in backward_frontier:
                for neighbor in graph.in_neighbors(vertex):
                    if neighbor in backward:
                        continue
                    backward[neighbor] = backward_depth
                    next_frontier.append(neighbor)
                    if neighbor in forward:
                        total = backward_depth + forward[neighbor]
                        if best is None or total < best:
                            best = total
            backward_frontier = next_frontier
        if best is not None and best <= forward_depth + backward_depth:
            # No shorter meeting point can appear once both waves passed it.
            break

    if best is not None and best <= k:
        return best
    if best is None and target in forward:
        return forward[target]
    return None


def is_k_hop_reachable(graph: DiGraph, source: Vertex, target: Vertex, k: int) -> bool:
    """True when ``target`` is reachable from ``source`` within ``k`` hops."""
    return k_hop_distance(graph, source, target, k) is not None
