"""Query workload generation and k-hop reachability.

The paper's experiments issue 1000 random queries per graph and hop
constraint, restricted to pairs ``(s, t)`` where ``t`` is reachable from
``s`` within ``k`` hops (Section 6.1), plus a distance-stratified workload
for Figure 10(b).  This package reproduces both workload generators and the
k-hop reachability primitive they rely on.
"""

from repro.queries.reachability import is_k_hop_reachable, k_hop_distance
from repro.queries.workload import (
    Query,
    QueryWorkload,
    distance_stratified_queries,
    random_reachable_queries,
    target_grouped_queries,
    workloads_to_batch,
)

__all__ = [
    "Query",
    "QueryWorkload",
    "is_k_hop_reachable",
    "k_hop_distance",
    "random_reachable_queries",
    "distance_stratified_queries",
    "target_grouped_queries",
    "workloads_to_batch",
]
