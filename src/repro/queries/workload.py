"""Random query workload generation (Section 6.1).

Two workloads are used by the paper's experiments:

* **random reachable queries** — for each hop constraint ``k``, pairs
  ``(s, t)`` drawn uniformly at random such that ``t`` is reachable from
  ``s`` within ``k`` hops (1000 per graph in the paper; configurable here);
* **distance-stratified queries** — for Figure 10(b), queries grouped by the
  exact shortest distance ``dist(s, t)`` in ``1 .. k``.

Both generators are deterministic given a seed, so benchmark runs are
repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro._types import Vertex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.queries.reachability import k_hop_distance

__all__ = [
    "Query",
    "QueryWorkload",
    "random_reachable_queries",
    "distance_stratified_queries",
    "target_grouped_queries",
    "workloads_to_batch",
]


@dataclass(frozen=True)
class Query:
    """One ``<s, t, k>`` query, optionally annotated with ``dist(s, t)``."""

    source: Vertex
    target: Vertex
    k: int
    distance: Optional[int] = None

    def as_tuple(self) -> tuple:
        """Return ``(source, target, k)``."""
        return (self.source, self.target, self.k)


@dataclass
class QueryWorkload:
    """A named batch of queries over one graph."""

    graph_name: str
    k: int
    queries: List[Query]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def as_batch(self) -> List[Tuple[Vertex, Vertex, int]]:
        """Return the workload as ``(s, t, k)`` triples.

        Adapter for the service layer:
        ``SPGEngine.run_batch(workload.as_batch())``.
        """
        return [query.as_tuple() for query in self.queries]


def random_reachable_queries(
    graph: DiGraph,
    k: int,
    count: int,
    seed: int = 0,
    max_attempts_factor: int = 200,
) -> QueryWorkload:
    """Draw ``count`` random query pairs reachable within ``k`` hops.

    Sources are drawn uniformly among vertices with at least one out-edge;
    the target is chosen by a short random walk of length ``<= k`` from the
    source (guaranteeing reachability) and then validated with the exact
    k-hop reachability test.  Raises :class:`QueryError` when the graph is
    too sparse to produce the requested number of queries.
    """
    if count < 0:
        raise QueryError(f"count must be non-negative, got {count}")
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    rng = random.Random(seed)
    sources = [u for u in graph.vertices() if graph.out_degree(u) > 0]
    if not sources and count > 0:
        raise QueryError(f"graph {graph.name!r} has no edges; cannot generate queries")
    queries: List[Query] = []
    attempts = 0
    max_attempts = max(count * max_attempts_factor, 1000)
    while len(queries) < count and attempts < max_attempts:
        attempts += 1
        source = sources[rng.randrange(len(sources))]
        # Random walk of length <= k to pick a (likely reachable) target.
        current = source
        steps = rng.randint(1, k)
        for _ in range(steps):
            neighbors = graph.out_neighbors(current)
            if not neighbors:
                break
            current = neighbors[rng.randrange(len(neighbors))]
        target = current
        if target == source:
            continue
        distance = k_hop_distance(graph, source, target, k)
        if distance is None:
            continue
        queries.append(Query(source=source, target=target, k=k, distance=distance))
    if len(queries) < count:
        raise QueryError(
            f"could only generate {len(queries)}/{count} reachable queries "
            f"on graph {graph.name!r} (k={k})"
        )
    return QueryWorkload(graph_name=graph.name, k=k, queries=queries)


def distance_stratified_queries(
    graph: DiGraph,
    k: int,
    per_distance: int,
    seed: int = 0,
    distances: Optional[List[int]] = None,
    max_attempts_factor: int = 400,
) -> Dict[int, QueryWorkload]:
    """Generate ``per_distance`` queries for each shortest distance in ``1..k``.

    Used by the Figure 10(b) experiment ("effect of distances between query
    pairs").  Returns ``{distance: workload}``; distances for which the graph
    cannot produce enough pairs are returned with fewer queries rather than
    failing, matching how sparse graphs behave in practice.
    """
    if per_distance < 0:
        raise QueryError(f"per_distance must be non-negative, got {per_distance}")
    wanted = distances if distances is not None else list(range(1, k + 1))
    rng = random.Random(seed)
    sources = [u for u in graph.vertices() if graph.out_degree(u) > 0]
    buckets: Dict[int, List[Query]] = {d: [] for d in wanted}
    if sources and per_distance > 0:
        attempts = 0
        max_attempts = max(per_distance * len(wanted) * max_attempts_factor, 1000)
        while attempts < max_attempts and any(
            len(bucket) < per_distance for bucket in buckets.values()
        ):
            attempts += 1
            source = sources[rng.randrange(len(sources))]
            current = source
            steps = rng.randint(1, k)
            for _ in range(steps):
                neighbors = graph.out_neighbors(current)
                if not neighbors:
                    break
                current = neighbors[rng.randrange(len(neighbors))]
            if current == source:
                continue
            distance = k_hop_distance(graph, source, current, k)
            if distance is None or distance not in buckets:
                continue
            bucket = buckets[distance]
            if len(bucket) < per_distance:
                bucket.append(Query(source=source, target=current, k=k, distance=distance))
    return {
        d: QueryWorkload(graph_name=graph.name, k=k, queries=bucket)
        for d, bucket in buckets.items()
    }


def target_grouped_queries(
    graph: DiGraph,
    k: int,
    num_targets: int,
    sources_per_target: int,
    seed: int = 0,
    max_attempts_factor: int = 200,
) -> QueryWorkload:
    """Draw queries where many sources share few targets.

    This is the shape of production screening workloads (many candidate
    accounts checked against the same hub) and the best case for the
    service layer's batch planner, which computes the backward pass once
    per ``(target, k)`` group.  Targets are drawn among vertices with at
    least one in-edge; sources are found by random backward walks of length
    ``<= k`` and validated with the exact k-hop reachability test.  Targets
    that cannot produce ``sources_per_target`` distinct sources are skipped,
    and a :class:`QueryError` is raised when the graph cannot fill
    ``num_targets`` groups.
    """
    if num_targets < 0 or sources_per_target < 0:
        raise QueryError("num_targets and sources_per_target must be non-negative")
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    rng = random.Random(seed)
    targets = [v for v in graph.vertices() if graph.in_degree(v) > 0]
    if not targets and num_targets * sources_per_target > 0:
        raise QueryError(f"graph {graph.name!r} has no edges; cannot generate queries")
    rng.shuffle(targets)
    queries: List[Query] = []
    groups_filled = 0
    for target in targets:
        if groups_filled >= num_targets:
            break
        found: List[Query] = []
        seen_sources = set()
        attempts = 0
        max_attempts = max(sources_per_target * max_attempts_factor, 100)
        while len(found) < sources_per_target and attempts < max_attempts:
            attempts += 1
            current = target
            steps = rng.randint(1, k)
            for _ in range(steps):
                neighbors = graph.in_neighbors(current)
                if not neighbors:
                    break
                current = neighbors[rng.randrange(len(neighbors))]
            source = current
            if source == target or source in seen_sources:
                continue
            distance = k_hop_distance(graph, source, target, k)
            if distance is None:
                continue
            seen_sources.add(source)
            found.append(Query(source=source, target=target, k=k, distance=distance))
        if len(found) == sources_per_target:
            queries.extend(found)
            groups_filled += 1
    if groups_filled < num_targets:
        raise QueryError(
            f"could only fill {groups_filled}/{num_targets} target groups "
            f"on graph {graph.name!r} (k={k}, {sources_per_target} sources each)"
        )
    return QueryWorkload(graph_name=graph.name, k=k, queries=queries)


def workloads_to_batch(
    workloads: Iterable[QueryWorkload],
) -> List[Tuple[Vertex, Vertex, int]]:
    """Concatenate several workloads into one ``(s, t, k)`` batch.

    Useful for serving mixed-``k`` traffic through one
    ``SPGEngine.run_batch`` call; the planner still groups by ``(t, k)``.
    """
    batch: List[Tuple[Vertex, Vertex, int]] = []
    for workload in workloads:
        batch.extend(workload.as_batch())
    return batch
