"""Batched edge mutations applied to immutable graphs as CSR overlays.

Everything in this library treats :class:`~repro.graph.digraph.DiGraph`
as immutable: caches, scratch pools, shard sets and warm worker pools all
key on the whole-graph fingerprint.  That is the right contract for query
evaluation, but the motivating fraud-screening scenario interleaves
hop-constrained path queries with *streams of new transactions* — and
rebuilding an entire graph (re-validating every edge, re-sorting the
fingerprint, reflattening both CSR views) for a handful of new edges is
exactly the wrong cost model.

This module adds a delta layer that preserves the immutability contract:

* :class:`GraphDelta` — a validated, deduplicated batch of edge inserts
  and deletes.
* :func:`apply_delta` — applies a delta to a graph and returns a **new**
  :class:`DeltaOverlayView`.  The input graph is never mutated; in-flight
  readers of the old graph are undisturbed.
* :class:`DeltaOverlayView` — a full :class:`DiGraph` whose storage is
  built by *overlaying* the delta on the previous graph's arrays: rows of
  untouched vertices are shared by reference, the CSR views are spliced
  from the previous CSR at slice-copy speed (no per-edge Python loop, no
  re-validation, no fingerprint sort), and the fingerprint is a **lineage
  hash** chained from the previous epoch in O(|delta| log |delta|).
  ``compact()`` folds the overlay bookkeeping away once it grows past a
  threshold, resetting the lineage root.

Fingerprint lineage
-------------------
A view's fingerprint is ``H(tag, root_fingerprint, n, overlay)`` where
``root_fingerprint`` is the content fingerprint of the last compacted
ancestor and ``overlay`` is the *net* insert/delete sets relative to that
root.  The tuple ``(root, overlay)`` determines the graph content
uniquely, so distinct fingerprints still imply distinct graphs — the
property every cache and staleness guard actually relies on.  The one
deliberate deviation from :meth:`DiGraph.fingerprint` is that a lineage
fingerprint differs from the *content* fingerprint of an equal
from-scratch graph: that can only cause a cold cache (over-invalidation),
never a stale hit.  Deltas that cancel out exactly (net overlay empty)
collapse back to the root fingerprint, so a no-op round trip keeps every
cache entry and warm pool valid.
"""

from __future__ import annotations

import hashlib
from array import array
from struct import pack
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro._types import Edge, Vertex
from repro.exceptions import EdgeError, GraphError
from repro.graph.digraph import CSR, DiGraph

__all__ = ["GraphDelta", "DeltaOverlayView", "apply_delta"]

#: Domain tag for lineage fingerprints; keeps them disjoint from content
#: fingerprints (which hash a bare ``n`` + edge stream) by construction.
_LINEAGE_TAG = b"repro-delta-v1"


def _check_endpoint(value: object, edge: object) -> int:
    """Return ``value`` as a vertex id, rejecting bools and non-ints.

    Mirrors the strict ingestion rules from the service layer: ``True`` is
    not vertex 1 and ``2.9`` is not vertex 2.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise GraphError(f"edge {edge!r} has a non-integer endpoint {value!r}")
    return value


class GraphDelta:
    """A validated batch of edge inserts and deletes.

    Duplicates are collapsed (first occurrence wins, order preserved so
    adjacency-append order stays deterministic), self loops are dropped —
    they can never participate in a simple path between distinct
    endpoints, matching :class:`DiGraph` construction — and an edge
    appearing in both lists is rejected as ambiguous.  Endpoint *range*
    validation happens at apply time, where the target graph's vertex
    count is known.

    Examples
    --------
    >>> delta = GraphDelta(inserts=[(0, 1), (0, 1), (2, 2)], deletes=[(3, 4)])
    >>> delta.inserts, delta.deletes
    (((0, 1),), ((3, 4),))
    >>> delta.num_inserts, delta.num_deletes, delta.dropped_self_loops
    (1, 1, 1)
    """

    __slots__ = ("_inserts", "_deletes", "_dropped_self_loops")

    def __init__(
        self,
        inserts: Iterable[Sequence[object]] = (),
        deletes: Iterable[Sequence[object]] = (),
    ) -> None:
        self._dropped_self_loops = 0
        self._inserts = self._normalize(inserts, "insert")
        self._deletes = self._normalize(deletes, "delete")
        overlap = set(self._inserts) & set(self._deletes)
        if overlap:
            raise GraphError(
                f"edges {sorted(overlap)} appear in both inserts and deletes"
            )

    def _normalize(
        self, pairs: Iterable[Sequence[object]], kind: str
    ) -> Tuple[Edge, ...]:
        seen: Set[Edge] = set()
        edges: List[Edge] = []
        for pair in pairs:
            if not isinstance(pair, (tuple, list)) or len(pair) != 2:
                raise GraphError(f"{kind} entry {pair!r} is not a (u, v) pair")
            u = _check_endpoint(pair[0], pair)
            v = _check_endpoint(pair[1], pair)
            if u == v:
                self._dropped_self_loops += 1
                continue
            edge = (u, v)
            if edge in seen:
                continue
            seen.add(edge)
            edges.append(edge)
        return tuple(edges)

    # ------------------------------------------------------------------
    @property
    def inserts(self) -> Tuple[Edge, ...]:
        """Edges to insert, deduplicated, in submission order."""
        return self._inserts

    @property
    def deletes(self) -> Tuple[Edge, ...]:
        """Edges to delete, deduplicated, in submission order."""
        return self._deletes

    @property
    def num_inserts(self) -> int:
        return len(self._inserts)

    @property
    def num_deletes(self) -> int:
        return len(self._deletes)

    @property
    def dropped_self_loops(self) -> int:
        """Self loops silently dropped during normalization."""
        return self._dropped_self_loops

    @property
    def is_empty(self) -> bool:
        return not self._inserts and not self._deletes

    def touched_vertices(self) -> Set[Vertex]:
        """Every endpoint named by the delta."""
        touched: Set[Vertex] = set()
        for u, v in self._inserts:
            touched.add(u)
            touched.add(v)
        for u, v in self._deletes:
            touched.add(u)
            touched.add(v)
        return touched

    def validate_for(self, graph: DiGraph) -> None:
        """Raise :class:`EdgeError` if any endpoint is outside ``graph``."""
        n = graph.num_vertices
        for edge in self._inserts + self._deletes:
            u, v = edge
            if not (0 <= u < n) or not (0 <= v < n):
                raise EdgeError(
                    f"delta edge ({u}, {v}) has endpoints outside [0, {n})"
                )

    def __repr__(self) -> str:
        return (
            f"GraphDelta(inserts={len(self._inserts)}, "
            f"deletes={len(self._deletes)})"
        )


def _lineage_fingerprint(
    root_fingerprint: str,
    num_vertices: int,
    overlay_inserts: FrozenSet[Edge],
    overlay_deletes: FrozenSet[Edge],
) -> str:
    """Hash-chain a fingerprint from a root fingerprint plus a net overlay."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(_LINEAGE_TAG)
    hasher.update(root_fingerprint.encode("ascii"))
    hasher.update(pack("<qqq", num_vertices, len(overlay_inserts), len(overlay_deletes)))
    for edge in sorted(overlay_inserts):
        hasher.update(pack("<qq", *edge))
    hasher.update(b"/")
    for edge in sorted(overlay_deletes):
        hasher.update(pack("<qq", *edge))
    return hasher.hexdigest()


def _splice_csr(
    base: CSR, changed_rows: Dict[Vertex, Sequence[Vertex]], num_vertices: int
) -> CSR:
    """Rebuild a CSR pair with ``changed_rows`` replaced, splicing the rest.

    Untouched runs of ``targets`` are copied with a single ``array`` slice
    (one memcpy, no per-element boxing); untouched runs of ``offsets`` are
    sliced wholesale while the cumulative length shift is zero and
    list-comprehension-shifted after the first resized row.  Cost is
    O(n + m) in C-level copies plus O(changed degree) Python work —
    measured well under a from-scratch ``_build_csr`` over rebuilt
    adjacency, and far under full ``DiGraph`` construction.
    """
    base_offsets, base_targets = base
    offsets = array("q", [0])
    targets = array("q")
    shift = 0
    prev = 0
    for u in sorted(changed_rows):
        if prev < u:
            targets.extend(base_targets[base_offsets[prev]:base_offsets[u]])
            if shift == 0:
                offsets.extend(base_offsets[prev + 1:u + 1])
            else:
                offsets.extend([off + shift for off in base_offsets[prev + 1:u + 1]])
        row = changed_rows[u]
        targets.extend(row)
        shift += len(row) - (base_offsets[u + 1] - base_offsets[u])
        offsets.append(base_offsets[u + 1] + shift)
        prev = u + 1
    if prev < num_vertices:
        targets.extend(base_targets[base_offsets[prev]:base_offsets[num_vertices]])
        if shift == 0:
            offsets.extend(base_offsets[prev + 1:num_vertices + 1])
        else:
            offsets.extend(
                [off + shift for off in base_offsets[prev + 1:num_vertices + 1]]
            )
    return offsets, targets


class DeltaOverlayView(DiGraph):
    """A :class:`DiGraph` built by overlaying a delta on a previous epoch.

    A view is a *complete, independent* graph — every kernel, partitioner,
    pickler and shared-memory segment consumes it exactly like a base
    graph — but its storage is derived from the previous epoch instead of
    rebuilt: adjacency rows of untouched vertices are shared by reference,
    the CSR views are spliced from the previous CSR arrays, and the
    fingerprint is a lineage hash (see the module docstring).  The view
    does **not** retain a reference to the previous graph object, so
    retired epochs are garbage-collected as soon as their last in-flight
    query completes; only immutable rows survive, shared.

    Construct views with :func:`apply_delta`, never directly.
    """

    __slots__ = (
        "_root_fingerprint",
        "_overlay_inserts",
        "_overlay_deletes",
        "_applied_inserts",
        "_applied_deletes",
    )

    # ------------------------------------------------------------------
    # Overlay bookkeeping
    # ------------------------------------------------------------------
    @property
    def root_fingerprint(self) -> str:
        """Content fingerprint of the last compacted ancestor."""
        return self._root_fingerprint

    @property
    def overlay_inserts(self) -> FrozenSet[Edge]:
        """Net edges present here but absent from the lineage root."""
        return self._overlay_inserts

    @property
    def overlay_deletes(self) -> FrozenSet[Edge]:
        """Net edges absent here but present in the lineage root."""
        return self._overlay_deletes

    @property
    def overlay_size(self) -> int:
        """Net overlay magnitude; drives the engine's compaction policy."""
        return len(self._overlay_inserts) + len(self._overlay_deletes)

    @property
    def applied_inserts(self) -> Tuple[Edge, ...]:
        """Edges this apply step actually added (absent in the previous epoch)."""
        return self._applied_inserts

    @property
    def applied_deletes(self) -> Tuple[Edge, ...]:
        """Edges this apply step actually removed (present in the previous epoch)."""
        return self._applied_deletes

    @property
    def is_noop(self) -> bool:
        """True when the apply step changed nothing (all edges were no-ops)."""
        return not self._applied_inserts and not self._applied_deletes

    # ------------------------------------------------------------------
    def compact(self, name: Optional[str] = None) -> DiGraph:
        """Fold the overlay away into a plain :class:`DiGraph`.

        The merged storage already lives on this view, so compaction is
        O(1): it strips the overlay bookkeeping (resetting the lineage
        root for future deltas) and shares every structural field.  The
        compacted graph deliberately **keeps the lineage fingerprint** so
        result caches and warm worker pools keyed on it survive
        compaction — see the module docstring for why that is sound.
        """
        graph = DiGraph._shell(self._n, name or self.name)
        graph._out = self._out
        graph._in = self._in
        graph._edge_set = self._edge_set
        graph._m = self._m
        graph._fingerprint = self._fingerprint
        graph._csr = self._csr
        graph._csr_rev = self._csr_rev
        graph._max_degree = self._max_degree
        return graph

    # ------------------------------------------------------------------
    # Pickling: a worker only needs DiGraph behaviour, so the inherited
    # compact CSR payload is reused and the overlay bookkeeping is
    # re-initialized to a detached (empty-overlay) state on arrival.  The
    # lineage fingerprint travels in the base payload, so staleness guards
    # keep working across the process boundary.
    # ------------------------------------------------------------------
    def __setstate__(self, state: Dict[str, object]) -> None:
        super().__setstate__(state)
        self._root_fingerprint = self.fingerprint()
        self._overlay_inserts = frozenset()
        self._overlay_deletes = frozenset()
        self._applied_inserts = ()
        self._applied_deletes = ()

    def __repr__(self) -> str:
        return (
            f"DeltaOverlayView(name={self.name!r}, vertices={self._n}, "
            f"edges={self._m}, overlay={self.overlay_size})"
        )


def _merged_rows(
    rows: List[List[Vertex]],
    deletes_by_key: Dict[Vertex, Set[Vertex]],
    inserts_by_key: Dict[Vertex, List[Vertex]],
) -> Dict[Vertex, List[Vertex]]:
    """Return fresh merged rows for every touched vertex (others untouched)."""
    merged: Dict[Vertex, List[Vertex]] = {}
    for key in set(deletes_by_key) | set(inserts_by_key):
        base_row = rows[key]
        dropped = deletes_by_key.get(key)
        if dropped:
            row = [other for other in base_row if other not in dropped]
        else:
            row = list(base_row)
        added = inserts_by_key.get(key)
        if added:
            row.extend(added)
        merged[key] = row
    return merged


def apply_delta(
    graph: DiGraph, delta: GraphDelta, *, name: Optional[str] = None
) -> DeltaOverlayView:
    """Apply ``delta`` to ``graph`` and return a new :class:`DeltaOverlayView`.

    ``graph`` is not mutated.  Inserting an edge that already exists and
    deleting an edge that does not are idempotent no-ops (the effective
    subsets are exposed as :attr:`DeltaOverlayView.applied_inserts` /
    :attr:`~DeltaOverlayView.applied_deletes`), so replaying a
    transaction stream is safe.  Applying to a graph that is itself a
    view merges the net overlays relative to the shared lineage root —
    views never chain, so read cost does not grow with epoch count.

    Raises :class:`EdgeError` if any endpoint is out of range.
    """
    delta.validate_for(graph)
    n = graph.num_vertices
    prev_edges = graph._edge_set

    applied_inserts = tuple(e for e in delta.inserts if e not in prev_edges)
    applied_deletes = tuple(e for e in delta.deletes if e in prev_edges)

    # Merge adjacency: shared row pointers for untouched vertices, fresh
    # rows only where the delta actually lands.
    del_out: Dict[Vertex, Set[Vertex]] = {}
    del_in: Dict[Vertex, Set[Vertex]] = {}
    for u, v in applied_deletes:
        del_out.setdefault(u, set()).add(v)
        del_in.setdefault(v, set()).add(u)
    ins_out: Dict[Vertex, List[Vertex]] = {}
    ins_in: Dict[Vertex, List[Vertex]] = {}
    for u, v in applied_inserts:
        ins_out.setdefault(u, []).append(v)
        ins_in.setdefault(v, []).append(u)

    merged_out = _merged_rows(graph._out, del_out, ins_out)
    merged_in = _merged_rows(graph._in, del_in, ins_in)

    out_rows = list(graph._out)
    in_rows = list(graph._in)
    for u, row in merged_out.items():
        out_rows[u] = row
    for v, row in merged_in.items():
        in_rows[v] = row

    edge_set = set(prev_edges)
    edge_set.difference_update(applied_deletes)
    edge_set.update(applied_inserts)

    # Net overlay relative to the lineage root.  An applied insert that the
    # root already had (it sits in the previous overlay's delete set)
    # un-deletes; symmetrically for applied deletes of overlay-added edges.
    if isinstance(graph, DeltaOverlayView):
        root_fingerprint = graph._root_fingerprint
        overlay_inserts = set(graph._overlay_inserts)
        overlay_deletes = set(graph._overlay_deletes)
    else:
        root_fingerprint = graph.fingerprint()
        overlay_inserts = set()
        overlay_deletes = set()
    for edge in applied_inserts:
        if edge in overlay_deletes:
            overlay_deletes.remove(edge)
        else:
            overlay_inserts.add(edge)
    for edge in applied_deletes:
        if edge in overlay_inserts:
            overlay_inserts.remove(edge)
        else:
            overlay_deletes.add(edge)

    view = DeltaOverlayView._shell(n, name or graph.name)
    view._out = out_rows
    view._in = in_rows
    view._edge_set = edge_set
    view._m = len(edge_set)
    view._root_fingerprint = root_fingerprint
    view._overlay_inserts = frozenset(overlay_inserts)
    view._overlay_deletes = frozenset(overlay_deletes)
    view._applied_inserts = applied_inserts
    view._applied_deletes = applied_deletes
    if not overlay_inserts and not overlay_deletes:
        # The net overlay cancelled out: content-identical to the root, so
        # reuse its fingerprint and every keyed cache stays warm.
        view._fingerprint = root_fingerprint
    else:
        view._fingerprint = _lineage_fingerprint(
            root_fingerprint, n, view._overlay_inserts, view._overlay_deletes
        )
    if applied_inserts or applied_deletes:
        view._csr = _splice_csr(graph.csr(), merged_out, n)
        view._csr_rev = _splice_csr(graph.csr_reverse(), merged_in, n)
    else:
        view._csr = graph._csr
        view._csr_rev = graph._csr_rev
    return view
