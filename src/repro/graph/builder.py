"""Incremental construction of :class:`~repro.graph.digraph.DiGraph` objects.

Real-world edge lists use arbitrary vertex labels (strings, sparse ids).
:class:`GraphBuilder` accepts any hashable labels, relabels them to a dense
``0 .. n-1`` range, drops self loops and duplicate edges, and finally
produces an immutable :class:`DiGraph` together with the label mapping.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro._types import Edge
from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder", "build_graph"]


class GraphBuilder:
    """Accumulates edges with arbitrary hashable labels and builds a graph.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edge("s", "a")
    >>> b.add_edge("a", "t")
    >>> g = b.build(name="toy")
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> b.vertex_id("t")
    2
    """

    def __init__(self) -> None:
        self._labels: Dict[Hashable, int] = {}
        self._reverse_labels: List[Hashable] = []
        self._edges: List[Edge] = []
        self._dropped_self_loops = 0

    # ------------------------------------------------------------------
    def add_vertex(self, label: Hashable) -> int:
        """Register ``label`` (if new) and return its dense vertex id."""
        existing = self._labels.get(label)
        if existing is not None:
            return existing
        vertex_id = len(self._reverse_labels)
        self._labels[label] = vertex_id
        self._reverse_labels.append(label)
        return vertex_id

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Add a directed edge between two (possibly new) labelled vertices."""
        if source == target:
            self._dropped_self_loops += 1
            return
        u = self.add_vertex(source)
        v = self.add_vertex(target)
        self._edges.append((u, v))

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Add many edges at once."""
        for source, target in edges:
            self.add_edge(source, target)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of distinct vertex labels seen so far."""
        return len(self._reverse_labels)

    @property
    def num_edges(self) -> int:
        """Number of edges added so far (before deduplication)."""
        return len(self._edges)

    @property
    def dropped_self_loops(self) -> int:
        """Number of self loops that were silently dropped."""
        return self._dropped_self_loops

    def vertex_id(self, label: Hashable) -> int:
        """Return the dense id previously assigned to ``label``."""
        try:
            return self._labels[label]
        except KeyError as exc:
            raise GraphError(f"unknown vertex label: {label!r}") from exc

    def vertex_label(self, vertex_id: int) -> Hashable:
        """Return the original label for a dense vertex id."""
        if not (0 <= vertex_id < len(self._reverse_labels)):
            raise GraphError(f"unknown vertex id: {vertex_id}")
        return self._reverse_labels[vertex_id]

    def label_mapping(self) -> Dict[Hashable, int]:
        """Return a copy of the label -> id mapping."""
        return dict(self._labels)

    # ------------------------------------------------------------------
    def build(self, name: str = "graph") -> DiGraph:
        """Return the immutable :class:`DiGraph` accumulated so far."""
        return DiGraph(len(self._reverse_labels), self._edges, name=name)


def build_graph(
    edges: Iterable[Tuple[Hashable, Hashable]],
    name: str = "graph",
    builder: Optional[GraphBuilder] = None,
) -> Tuple[DiGraph, GraphBuilder]:
    """Build a graph from labelled edges and return it with its builder.

    The returned builder keeps the label mapping so callers can translate
    results (e.g. edges of a simple path graph) back to the original labels.
    """
    graph_builder = builder if builder is not None else GraphBuilder()
    graph_builder.add_edges(edges)
    return graph_builder.build(name=name), graph_builder
