"""Subgraph extraction helpers.

Simple path graphs, upper-bound graphs and ``G^k_st`` are all edge-induced
subgraphs of the input graph.  The helpers here keep the *original* vertex
ids (so results remain directly comparable to the input graph), which is
what the paper's definitions require: ``SPG_k(s, t)`` is a subgraph of ``G``.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro._types import Edge, Vertex
from repro.graph.digraph import DiGraph

__all__ = ["edge_induced_subgraph", "vertex_induced_subgraph"]


def edge_induced_subgraph(
    graph: DiGraph, edges: Iterable[Edge], name: str = "subgraph"
) -> DiGraph:
    """Return the subgraph of ``graph`` containing exactly ``edges``.

    Vertex ids are preserved; the result has the same ``num_vertices`` as the
    input graph so vertex ids remain valid, but only the selected edges.
    Edges missing from the parent graph are filtered silently to support
    label arrays computed over candidate spaces; the survivors are known
    valid, so construction skips per-edge re-validation.
    """
    selected = (e for e in edges if graph.has_edge(*e))
    return DiGraph._from_trusted_edges(graph.num_vertices, selected, name=name)


def vertex_induced_subgraph(
    graph: DiGraph, vertices: Iterable[Vertex], name: str = "subgraph"
) -> DiGraph:
    """Return the subgraph induced by ``vertices`` (ids preserved)."""
    keep: Set[Vertex] = set(vertices)
    edges = (
        (u, v)
        for u in sorted(keep)
        if graph.has_vertex(u)
        for v in graph.out_neighbors(u)
        if v in keep
    )
    return DiGraph._from_trusted_edges(graph.num_vertices, edges, name=name)
