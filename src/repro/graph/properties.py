"""Structural statistics of directed graphs.

Mirrors the per-dataset statistics reported in Table 2 of the paper
(|V|, |E|, ``d_avg``, ``d_max``) plus a few quantities used by tests and
experiment reports (reachability sizes, strongly connected components).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro._types import Vertex
from repro.graph.digraph import DiGraph

__all__ = [
    "GraphSummary",
    "summarize",
    "strongly_connected_components",
    "largest_scc_size",
    "reachable_set",
    "degree_histogram",
]


@dataclass(frozen=True)
class GraphSummary:
    """Compact description of a graph, matching Table 2's columns."""

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    max_out_degree: int
    max_in_degree: int

    def as_row(self) -> Dict[str, object]:
        """Return the summary as a plain dictionary (for table rendering)."""
        return {
            "name": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "d_avg": round(self.average_degree, 2),
            "d_max": self.max_degree,
        }


def summarize(graph: DiGraph) -> GraphSummary:
    """Compute the :class:`GraphSummary` of ``graph``."""
    max_out = 0
    max_in = 0
    for u in graph.vertices():
        max_out = max(max_out, graph.out_degree(u))
        max_in = max(max_in, graph.in_degree(u))
    return GraphSummary(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        max_degree=max(max_out, max_in),
        max_out_degree=max_out,
        max_in_degree=max_in,
    )


def strongly_connected_components(graph: DiGraph) -> List[List[Vertex]]:
    """Return the strongly connected components (iterative Tarjan).

    Implemented without recursion so it works on long path-like graphs
    without hitting CPython's recursion limit.
    """
    n = graph.num_vertices
    index_counter = 0
    indices: List[int] = [-1] * n
    lowlinks: List[int] = [0] * n
    on_stack: List[bool] = [False] * n
    stack: List[Vertex] = []
    components: List[List[Vertex]] = []

    for root in range(n):
        if indices[root] != -1:
            continue
        # Each work item is (vertex, iterator position over out-neighbours).
        work: List[List[int]] = [[root, 0]]
        while work:
            v, neighbor_index = work[-1]
            if neighbor_index == 0:
                indices[v] = index_counter
                lowlinks[v] = index_counter
                index_counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            out = graph.out_neighbors(v)
            while neighbor_index < len(out):
                w = out[neighbor_index]
                neighbor_index += 1
                if indices[w] == -1:
                    work[-1][1] = neighbor_index
                    work.append([w, 0])
                    advanced = True
                    break
                if on_stack[w]:
                    lowlinks[v] = min(lowlinks[v], indices[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[v])
            if lowlinks[v] == indices[v]:
                component: List[Vertex] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return components


def largest_scc_size(graph: DiGraph) -> int:
    """Return the size of the largest strongly connected component."""
    components = strongly_connected_components(graph)
    return max((len(c) for c in components), default=0)


def reachable_set(graph: DiGraph, source: Vertex, max_hops: int | None = None) -> List[Vertex]:
    """Return vertices reachable from ``source`` within ``max_hops`` hops.

    ``max_hops=None`` means unbounded reachability.
    """
    graph.check_vertex(source)
    visited = {source}
    frontier = deque([(source, 0)])
    order: List[Vertex] = [source]
    while frontier:
        vertex, depth = frontier.popleft()
        if max_hops is not None and depth >= max_hops:
            continue
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                frontier.append((neighbor, depth + 1))
    return order


def degree_histogram(graph: DiGraph, direction: str = "out") -> Dict[int, int]:
    """Return ``{degree: count}`` for the chosen direction (``out``/``in``)."""
    if direction not in ("out", "in"):
        raise ValueError("direction must be 'out' or 'in'")
    histogram: Dict[int, int] = {}
    for u in graph.vertices():
        degree = graph.out_degree(u) if direction == "out" else graph.in_degree(u)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
