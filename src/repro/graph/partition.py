"""Vertex-range graph partitioning: CSR shard slices for partition-parallel serving.

A :class:`~repro.graph.digraph.DiGraph` whose CSR views are already flat
``(offsets, targets)`` arrays partitions *for free*: a shard is nothing but
a contiguous vertex range ``[lo, hi)`` together with the slice of each CSR
view covering that range.  The target arrays are shared zero-copy with the
parent graph (:class:`memoryview` slices — no per-shard edge copies), only
the per-shard offset arrays are rebased, so partitioning a graph costs
O(n + cut edges) fresh memory however many shards are cut.

Three objects are exported:

:class:`GraphShard`
    One vertex range with its local forward/backward ``(offsets, targets)``
    slice pair, an explicit cut-edge (halo) table listing every owned edge
    whose head lives on another shard, and a stable fingerprint derived
    from the parent graph's :meth:`~repro.graph.digraph.DiGraph.fingerprint`.
:class:`ShardSet`
    The full partition: owner lookup in O(1), frontier routing for the
    level-synchronous halo exchange, and
    :meth:`ShardSet.backward_distance_map` — the partition-parallel twin of
    :func:`repro.core.distances.backward_distance_map`, answer-identical by
    construction (and held to it by ``tests/test_sharding.py``).
:func:`partition_graph`
    The partitioner.

Invariants (property-tested):

* every vertex belongs to exactly one shard;
* every edge is either *local* to exactly one shard (both endpoints owned)
  or appears in exactly one shard's cut table (the shard owning its tail);
* shard fingerprints change exactly when the parent fingerprint or the
  shard count changes.
"""

from __future__ import annotations

import hashlib
from array import array
from struct import pack
from typing import TYPE_CHECKING, Iterable, Iterator, List, Sequence, Tuple

from repro._types import Edge, Vertex
from repro.exceptions import GraphError, VertexError
from repro.graph.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distances import BackwardDistanceMap

# repro.core.distances hosts the slice kernels but itself imports the graph
# layer, so the kernel binding is resolved lazily on first use (and cached)
# instead of at module import time.
_csr_slice_expand = None


def _slice_expand_kernel():
    global _csr_slice_expand
    if _csr_slice_expand is None:
        from repro.core.distances import csr_slice_expand

        _csr_slice_expand = csr_slice_expand
    return _csr_slice_expand

__all__ = [
    "GraphShard",
    "ShardSet",
    "partition_graph",
    "partition_ranges",
    "owner_of",
    "shard_fingerprint",
    "shard_set_fingerprint",
]


# ----------------------------------------------------------------------
# Range arithmetic (pure functions, usable without building a partition)
# ----------------------------------------------------------------------
def partition_ranges(num_vertices: int, num_shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` vertex ranges, one per shard.

    The first ``num_vertices % num_shards`` shards hold one extra vertex;
    when there are more shards than vertices the trailing shards are empty.
    """
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1, got {num_shards}")
    if num_vertices < 0:
        raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
    base, remainder = divmod(num_vertices, num_shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for shard_id in range(num_shards):
        hi = lo + base + (1 if shard_id < remainder else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def owner_of(num_vertices: int, num_shards: int, vertex: Vertex) -> int:
    """Shard id owning ``vertex`` under :func:`partition_ranges` — O(1).

    Pure arithmetic on ``(num_vertices, num_shards)``: callers that only
    need routing (e.g. building process-pool task payloads) never have to
    materialise a :class:`ShardSet`.
    """
    if not 0 <= vertex < num_vertices:
        raise VertexError(f"vertex {vertex} is not in [0, {num_vertices})")
    base, remainder = divmod(num_vertices, num_shards)
    if base == 0:
        return vertex
    boundary = remainder * (base + 1)
    if vertex < boundary:
        return vertex // (base + 1)
    return remainder + (vertex - boundary) // base


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def shard_set_fingerprint(parent_fingerprint: str, num_shards: int) -> str:
    """Stable fingerprint of one whole partition.

    Derived from the parent graph fingerprint and the shard count only, so
    it changes exactly when either does — the serving layer keys result
    caches and process-pool staleness checks on it.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(parent_fingerprint.encode("ascii"))
    hasher.update(pack("<q", num_shards))
    return hasher.hexdigest()


def shard_fingerprint(
    parent_fingerprint: str, num_shards: int, shard_id: int, lo: int, hi: int
) -> str:
    """Stable fingerprint of one shard (parent fingerprint + placement)."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(parent_fingerprint.encode("ascii"))
    hasher.update(pack("<qqqq", num_shards, shard_id, lo, hi))
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# One shard
# ----------------------------------------------------------------------
class GraphShard:
    """One contiguous vertex range of a partitioned graph.

    The local CSR slice pair covers exactly the owned vertices: the target
    arrays are zero-copy :class:`memoryview` slices of the parent CSR (ids
    stay *global*), the offset arrays are rebased so
    ``out_targets[out_offsets[u - lo]:out_offsets[u - lo + 1]]`` are the
    out-neighbours of an owned vertex ``u``.  ``cut_edges()`` lists every
    owned edge whose head is owned by another shard — the halo this shard
    hands to its neighbours during a frontier exchange.
    """

    __slots__ = (
        "shard_id",
        "num_shards",
        "lo",
        "hi",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_targets",
        "fingerprint",
        "_cut",
    )

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        lo: int,
        hi: int,
        out_offsets: Sequence[int],
        out_targets: Sequence[Vertex],
        in_offsets: Sequence[int],
        in_targets: Sequence[Vertex],
        fingerprint: str,
    ) -> None:
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.lo = lo
        self.hi = hi
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_targets = in_targets
        self.fingerprint = fingerprint
        # The cut table is derivable from the out slice by an O(edges)
        # scan that no serving path needs, so it is built on first access
        # — keeping partitioning (engine construction, graph swaps, and
        # above all per-worker pool initialisation) free of it.
        self._cut: "array | None" = None

    def _cut_table(self) -> array:
        """Flattened (tail, head) pairs of the halo table, built lazily.

        16 bytes per cut edge instead of a boxed tuple each — partitions
        of well-mixed graphs cut most edges.
        """
        if self._cut is None:
            lo = self.lo
            hi = self.hi
            offsets = self.out_offsets
            targets = self.out_targets
            cut = array("q")
            append = cut.append
            for local in range(hi - lo):
                for head in targets[offsets[local]:offsets[local + 1]]:
                    if not lo <= head < hi:
                        append(lo + local)
                        append(head)
            self._cut = cut
        return self._cut

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices this shard owns."""
        return self.hi - self.lo

    @property
    def num_edges(self) -> int:
        """Number of out-edges whose tail this shard owns (local + cut)."""
        return len(self.out_targets)

    @property
    def num_cut_edges(self) -> int:
        """Number of owned out-edges whose head lives on another shard."""
        return len(self._cut_table()) // 2

    @property
    def num_local_edges(self) -> int:
        """Number of owned out-edges with both endpoints on this shard."""
        return self.num_edges - self.num_cut_edges

    def owns(self, vertex: Vertex) -> bool:
        """True when ``vertex`` falls in this shard's ``[lo, hi)`` range."""
        return self.lo <= vertex < self.hi

    def vertices(self) -> range:
        """The owned vertex ids."""
        return range(self.lo, self.hi)

    def out_neighbors(self, vertex: Vertex) -> Sequence[Vertex]:
        """Out-neighbours (global ids) of an owned vertex, adjacency order."""
        self._check_owned(vertex)
        local = vertex - self.lo
        return self.out_targets[self.out_offsets[local]:self.out_offsets[local + 1]]

    def in_neighbors(self, vertex: Vertex) -> Sequence[Vertex]:
        """In-neighbours (global ids) of an owned vertex, adjacency order."""
        self._check_owned(vertex)
        local = vertex - self.lo
        return self.in_targets[self.in_offsets[local]:self.in_offsets[local + 1]]

    def cut_edges(self) -> Iterator[Edge]:
        """Iterate the halo table: owned edges whose head is remote."""
        cut = self._cut_table()
        for index in range(0, len(cut), 2):
            yield (cut[index], cut[index + 1])

    def _check_owned(self, vertex: Vertex) -> None:
        if not self.owns(vertex):
            raise VertexError(
                f"vertex {vertex} is not owned by shard {self.shard_id} "
                f"[{self.lo}, {self.hi})"
            )

    # ------------------------------------------------------------------
    def expand_backward(
        self,
        frontier: Sequence[Vertex],
        depth: int,
        dist: List[int],
        stamp: List[int],
        epoch: int,
        out: List[Vertex],
    ) -> None:
        """Expand owned frontier vertices one hop on the reverse slice.

        Newly discovered vertices (global ids, possibly owned by other
        shards — the outgoing halo) are appended to ``out``; see
        :func:`repro.core.distances.csr_slice_expand`.
        """
        _slice_expand_kernel()(
            self.in_offsets, self.in_targets, self.lo,
            frontier, depth, dist, stamp, epoch, out,
        )

    def expand_forward(
        self,
        frontier: Sequence[Vertex],
        depth: int,
        dist: List[int],
        stamp: List[int],
        epoch: int,
        out: List[Vertex],
    ) -> None:
        """Forward twin of :meth:`expand_backward` (out-edge slice)."""
        _slice_expand_kernel()(
            self.out_offsets, self.out_targets, self.lo,
            frontier, depth, dist, stamp, epoch, out,
        )

    # ------------------------------------------------------------------
    # Pickling: materialise the zero-copy views (a shard shipped on its own
    # must not drag the parent arrays' memory semantics across processes).
    # ------------------------------------------------------------------
    def __getstate__(self) -> Tuple:
        return (
            self.shard_id,
            self.num_shards,
            self.lo,
            self.hi,
            array("q", self.out_offsets),
            array("q", self.out_targets),
            array("q", self.in_offsets),
            array("q", self.in_targets),
            self.fingerprint,
            self._cut,
        )

    def __setstate__(self, state: Tuple) -> None:
        (
            self.shard_id,
            self.num_shards,
            self.lo,
            self.hi,
            self.out_offsets,
            self.out_targets,
            self.in_offsets,
            self.in_targets,
            self.fingerprint,
            self._cut,
        ) = state

    def __repr__(self) -> str:
        return (
            f"GraphShard(id={self.shard_id}/{self.num_shards}, "
            f"range=[{self.lo}, {self.hi}), edges={self.num_edges}, "
            f"cut={self.num_cut_edges})"
        )


# ----------------------------------------------------------------------
# The partition
# ----------------------------------------------------------------------
class ShardSet:
    """All shards of one graph plus O(1) routing between them.

    Keeps a reference to the parent graph (the target slices alias its CSR
    arrays), the parent fingerprint, and the derived partition fingerprint
    used by the serving layer for cache keys and worker staleness checks.
    """

    __slots__ = (
        "graph",
        "num_shards",
        "shards",
        "parent_fingerprint",
        "fingerprint",
        "_base",
        "_remainder",
        "_boundary",
    )

    def __init__(self, graph: DiGraph, shards: List[GraphShard]) -> None:
        self.graph = graph
        self.num_shards = len(shards)
        self.shards = shards
        self.parent_fingerprint = graph.fingerprint()
        self.fingerprint = shard_set_fingerprint(self.parent_fingerprint, self.num_shards)
        base, remainder = divmod(graph.num_vertices, self.num_shards)
        self._base = base
        self._remainder = remainder
        self._boundary = remainder * (base + 1)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def check_vertex(self, vertex: Vertex) -> None:
        """Raise :class:`VertexError` exactly like the parent graph would."""
        self.graph.check_vertex(vertex)

    def owner(self, vertex: Vertex) -> int:
        """Shard id owning ``vertex`` (O(1) range arithmetic)."""
        return owner_of(self.graph.num_vertices, self.num_shards, vertex)

    def shard_for(self, vertex: Vertex) -> GraphShard:
        """The shard owning ``vertex``."""
        return self.shards[self.owner(vertex)]

    def route(
        self, frontier: Iterable[Vertex]
    ) -> List[Tuple[GraphShard, List[Vertex]]]:
        """Split a BFS frontier into per-shard buckets — the halo exchange.

        Every frontier vertex is handed to the shard owning it (in shard-id
        order, preserving frontier order within each bucket), which is the
        level-synchronous exchange step of the distributed backward pass.
        Empty buckets are dropped.
        """
        shards = self.shards
        if self.num_shards == 1:
            bucket = list(frontier)
            return [(shards[0], bucket)] if bucket else []
        # Inlined :func:`owner_of` (same arithmetic, cached divmod): this
        # runs once per frontier vertex per BFS level, where a function
        # call per vertex is measurable.
        base = self._base
        remainder = self._remainder
        boundary = self._boundary
        buckets: List[List[Vertex]] = [[] for _ in shards]
        if base == 0:
            for vertex in frontier:
                buckets[vertex].append(vertex)
        else:
            for vertex in frontier:
                if vertex < boundary:
                    buckets[vertex // (base + 1)].append(vertex)
                else:
                    buckets[remainder + (vertex - boundary) // base].append(vertex)
        return [
            (shard, bucket)
            for shard, bucket in zip(shards, buckets)
            if bucket
        ]

    def backward_distance_map(self, target: Vertex, k: int) -> "BackwardDistanceMap":
        """Partition-parallel backward pass for ``(target, k)``.

        Answer-identical to
        :func:`repro.core.distances.backward_distance_map` on the parent
        graph; see :func:`repro.core.distances.sharded_backward_distance_map`.
        """
        from repro.core.distances import sharded_backward_distance_map

        return sharded_backward_distance_map(self, target, k)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_shards

    def __iter__(self) -> Iterator[GraphShard]:
        return iter(self.shards)

    def __getitem__(self, shard_id: int) -> GraphShard:
        return self.shards[shard_id]

    # Re-partitioning on unpickle keeps every invariant (and re-aliases the
    # slice views onto the unpickled graph's own CSR arrays).
    def __reduce__(self) -> Tuple:
        return (partition_graph, (self.graph, self.num_shards))

    def __repr__(self) -> str:
        return (
            f"ShardSet(graph={self.graph.name!r}, shards={self.num_shards}, "
            f"vertices={self.num_vertices}, cut_edges="
            f"{sum(shard.num_cut_edges for shard in self.shards)})"
        )


# ----------------------------------------------------------------------
# The partitioner
# ----------------------------------------------------------------------
def _slice_csr(
    offsets: Sequence[int],
    targets_view: "memoryview",
    lo: int,
    hi: int,
) -> Tuple[array, Sequence[Vertex]]:
    """Rebase ``offsets[lo..hi]`` to zero and slice the matching targets."""
    base = offsets[lo]
    local_offsets = array("q", (offsets[index] - base for index in range(lo, hi + 1)))
    return local_offsets, targets_view[base:offsets[hi]]


def partition_graph(graph: DiGraph, num_shards: int) -> ShardSet:
    """Partition ``graph`` into ``num_shards`` vertex-range CSR shards.

    The partition is deterministic (balanced contiguous ranges), zero-copy
    on the edge arrays, and safe to build on any graph whose CSR views are
    index-able flat buffers — including the shared-memory-backed views of
    :class:`repro.graph.shm.CSRGraphView`, where the shard slices alias the
    shared segment directly.
    """
    ranges = partition_ranges(graph.num_vertices, num_shards)
    forward_offsets, forward_targets = graph.csr()
    backward_offsets, backward_targets = graph.csr_reverse()
    forward_view = memoryview(forward_targets)
    backward_view = memoryview(backward_targets)
    parent_fingerprint = graph.fingerprint()

    shards: List[GraphShard] = []
    for shard_id, (lo, hi) in enumerate(ranges):
        out_offsets, out_targets = _slice_csr(forward_offsets, forward_view, lo, hi)
        in_offsets, in_targets = _slice_csr(backward_offsets, backward_view, lo, hi)
        shards.append(
            GraphShard(
                shard_id=shard_id,
                num_shards=num_shards,
                lo=lo,
                hi=hi,
                out_offsets=out_offsets,
                out_targets=out_targets,
                in_offsets=in_offsets,
                in_targets=in_targets,
                fingerprint=shard_fingerprint(
                    parent_fingerprint, num_shards, shard_id, lo, hi
                ),
            )
        )
    return ShardSet(graph, shards)
