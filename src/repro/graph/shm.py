"""Shared-memory CSR graph segments: zero-copy graph state for process pools.

The ``process`` executor backend historically shipped the served graph to
every worker by pickling its CSR views (PR 3).  That is one full copy of
the edge arrays *per worker*, plus an O(m) adjacency rebuild on arrival.
This module removes both costs for ``spawn``/``forkserver`` pools:

* :class:`SharedGraphSegment` (creator side) packs both CSR views —
  ``csr()`` and ``csr_reverse()`` — into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` block and hands out a
  tiny picklable :class:`SharedGraphDescriptor`;
* :func:`attach_shared_graph` (worker side) maps the block and wraps it in
  a :class:`CSRGraphView` — a :class:`~repro.graph.digraph.DiGraph` whose
  adjacency is served **directly from the shared buffers** through
  ``memoryview`` slices.  No unpickling, no adjacency lists, no edge set:
  per-worker memory for the graph is O(1) however large the graph is.

Lifecycle rules (regression-tested):

* the segment is unlinked **exactly once**, on :meth:`SharedGraphSegment.close`
  or the GC finalizer of a dropped-without-close owner, whichever fires
  first (``weakref.finalize`` guarantees at-most-once);
* workers attach *untracked* — the creator owns the unlink, so worker
  processes must not register the block with their own
  ``resource_tracker`` (doing so produces bogus "leaked shared_memory"
  warnings at worker exit on Python < 3.13);
* :meth:`AttachedGraphSegment.close` drops the views before closing the
  mapping so interpreter teardown in workers stays silent.
"""

from __future__ import annotations

import gc
import weakref
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro._types import Edge, Vertex
from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = [
    "SharedGraphDescriptor",
    "SharedGraphSegment",
    "AttachedGraphSegment",
    "CSRGraphView",
    "attach_shared_graph",
    "shared_memory_available",
]

_ITEM_SIZE = 8  # array('q') / memoryview format 'q'


def shared_memory_available() -> bool:
    """True when :mod:`multiprocessing.shared_memory` can allocate here."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - always present on CPython >= 3.8
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=_ITEM_SIZE)
    except Exception:  # pragma: no cover - exotic platform / sandbox
        return False
    probe.close()
    probe.unlink()
    return True


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """Everything a worker needs to attach to a shared graph segment.

    A few dozen bytes however large the graph: the segment name, the array
    layout (element counts of the four CSR arrays, in block order), and the
    graph identity (vertex count, name, fingerprint) the worker must serve.
    """

    segment_name: str
    num_vertices: int
    graph_name: str
    fingerprint: str
    #: element counts: (fwd offsets, fwd targets, rev offsets, rev targets)
    lengths: Tuple[int, int, int, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.lengths) * _ITEM_SIZE


def _destroy_segment(shm) -> None:
    """Close-and-unlink helper shared by ``close()`` and the GC finalizer."""
    try:
        shm.close()
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup raced
            pass


class SharedGraphSegment:
    """Creator-side owner of one shared-memory block holding both CSR views.

    Building the segment copies each CSR array into the block once; workers
    then attach zero-copy.  The creating process owns the block: it must
    stay alive (and the segment un-closed) while any pool worker may still
    attach.  ``close()`` is idempotent and the block is also reclaimed by a
    GC finalizer when the owner is dropped without ``close()`` — in both
    cases the underlying block is unlinked exactly once.
    """

    def __init__(self, graph: DiGraph) -> None:
        from multiprocessing import shared_memory

        arrays = (*graph.csr(), *graph.csr_reverse())
        lengths = tuple(len(block) for block in arrays)
        total = max(_ITEM_SIZE, sum(lengths) * _ITEM_SIZE)
        shm = shared_memory.SharedMemory(create=True, size=total)
        cursor = 0
        buffer = shm.buf
        for block in arrays:
            raw = block.tobytes() if isinstance(block, array) else bytes(block)
            buffer[cursor:cursor + len(raw)] = raw
            cursor += len(raw)
        self.descriptor = SharedGraphDescriptor(
            segment_name=shm.name,
            num_vertices=graph.num_vertices,
            graph_name=graph.name,
            fingerprint=graph.fingerprint(),
            lengths=lengths,
        )
        self._shm = shm
        self._finalizer = weakref.finalize(self, _destroy_segment, shm)

    @property
    def name(self) -> str:
        return self.descriptor.segment_name

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unmap and unlink the block (idempotent, unlinks at most once)."""
        self._finalizer()

    def __enter__(self) -> "SharedGraphSegment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SharedGraphSegment(name={self.name!r}, "
            f"bytes={self.descriptor.total_bytes}, closed={self.closed})"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _attach_untracked(name: str):
    """Open an existing segment without registering it for auto-unlink.

    The creating process owns the block's lifetime; an attaching worker
    that lets ``resource_tracker`` adopt it would either warn about a
    "leak" at worker exit or — because parent and pool workers talk to the
    *same* tracker process — clobber the creator's registration.  Python
    3.13 exposes ``track=False`` for exactly this; earlier versions get the
    equivalent by suppressing the register call during attach (attaching
    after the fact and calling ``unregister`` is *not* equivalent: the
    tracker cache is a set shared with the creator, so unregistering here
    would erase the creator's entry and make its eventual unlink complain).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _register_except_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - not hit in attach
            original_register(resource_name, rtype)

    resource_tracker.register = _register_except_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class AttachedGraphSegment:
    """A worker's handle on one attached segment: the view graph + cleanup.

    ``close()`` drops the graph (and with it every memoryview into the
    block), garbage-collects so no buffer exports remain, then unmaps.
    Workers register it via ``atexit`` so interpreter teardown never trips
    over exported buffers; the block itself is *not* unlinked here — that
    is the creator's job.
    """

    def __init__(self, shm, graph: "CSRGraphView") -> None:
        self._shm = shm
        self.graph: Optional["CSRGraphView"] = graph

    def close(self) -> None:
        self.graph = None
        gc.collect()
        try:
            self._shm.close()
        except BufferError:
            # A caller still holds views into the block (e.g. a shard set
            # outliving its attachment).  Disarm the handle instead of
            # letting SharedMemory.__del__ retry and warn at GC time: the
            # mmap object stays alive exactly as long as the exported views
            # do, and its pages are reclaimed with them (or at exit).
            shm = self._shm
            shm._mmap = None
            fd = getattr(shm, "_fd", -1)
            if fd >= 0:
                try:
                    import os

                    os.close(fd)
                finally:
                    shm._fd = -1

    def __repr__(self) -> str:
        return f"AttachedGraphSegment(name={self._shm.name!r}, open={self.graph is not None})"


def attach_shared_graph(descriptor: SharedGraphDescriptor) -> AttachedGraphSegment:
    """Attach to a segment and build the zero-copy graph view over it."""
    shm = _attach_untracked(descriptor.segment_name)
    words = memoryview(shm.buf)[:descriptor.total_bytes].cast("q")
    blocks: List[memoryview] = []
    cursor = 0
    for length in descriptor.lengths:
        blocks.append(words[cursor:cursor + length])
        cursor += length
    graph = CSRGraphView(
        descriptor.num_vertices,
        (blocks[0], blocks[1]),
        (blocks[2], blocks[3]),
        fingerprint=descriptor.fingerprint,
        name=descriptor.graph_name,
    )
    graph._keepalive = shm
    return AttachedGraphSegment(shm, graph)


# ----------------------------------------------------------------------
# The zero-copy graph view
# ----------------------------------------------------------------------
class CSRGraphView(DiGraph):
    """A :class:`DiGraph` served directly from flat CSR buffers.

    Unlike a regular ``DiGraph``, the adjacency lists and edge set are
    **never materialised**: every neighbourhood query slices the underlying
    ``(offsets, targets)`` buffers (typically memoryviews into a
    :class:`SharedGraphSegment`), so holding the view costs O(1) memory on
    top of the buffers.  The distance kernels and the EVE phases only read
    adjacency through :meth:`out_neighbors` / :meth:`in_neighbors` /
    :meth:`csr` / :meth:`csr_reverse`, all of which this class serves from
    the buffers — a view answers every query identically to the graph it
    mirrors (differential-tested in ``tests/test_sharding.py``).

    Set-like operations (``edge_set``, equality, hashing) still work but
    materialise edges on the fly; they are O(m) conveniences for tests and
    tooling, not serving-path operations.
    """

    #: keeps the attached SharedMemory mapping alive for as long as any
    #: consumer holds the view (the buffers alias its pages).
    __slots__ = ("_keepalive",)

    def __init__(
        self,
        num_vertices: int,
        csr: Tuple[Sequence[int], Sequence[Vertex]],
        csr_rev: Tuple[Sequence[int], Sequence[Vertex]],
        fingerprint: Optional[str] = None,
        name: str = "csr-view",
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        offsets, targets = csr
        rev_offsets, rev_targets = csr_rev
        if len(offsets) != num_vertices + 1 or len(rev_offsets) != num_vertices + 1:
            raise GraphError(
                f"CSR offsets must have num_vertices + 1 = {num_vertices + 1} "
                f"entries, got {len(offsets)} forward / {len(rev_offsets)} reverse"
            )
        if len(targets) != len(rev_targets):
            raise GraphError(
                "forward and reverse CSR views disagree on the edge count: "
                f"{len(targets)} vs {len(rev_targets)}"
            )
        self._n = int(num_vertices)
        self.name = name
        self._out = None  # never materialised; see class docstring
        self._in = None
        self._edge_set = None
        self._m = len(targets)
        self._fingerprint = fingerprint
        self._csr = (offsets, targets)
        self._csr_rev = (rev_offsets, rev_targets)
        self._max_degree = None
        self._keepalive = None

    # ------------------------------------------------------------------
    # Adjacency straight from the buffers
    # ------------------------------------------------------------------
    def out_neighbors(self, u: Vertex) -> Sequence[Vertex]:
        offsets, targets = self._csr
        return targets[offsets[u]:offsets[u + 1]]

    def in_neighbors(self, u: Vertex) -> Sequence[Vertex]:
        offsets, targets = self._csr_rev
        return targets[offsets[u]:offsets[u + 1]]

    def out_degree(self, u: Vertex) -> int:
        offsets = self._csr[0]
        return offsets[u + 1] - offsets[u]

    def in_degree(self, u: Vertex) -> int:
        offsets = self._csr_rev[0]
        return offsets[u + 1] - offsets[u]

    def degree(self, u: Vertex) -> int:
        return self.out_degree(u) + self.in_degree(u)

    def max_degree(self) -> int:
        if self._max_degree is None:
            best = 0
            for offsets in (self._csr[0], self._csr_rev[0]):
                previous = offsets[0]
                for index in range(1, len(offsets)):
                    current = offsets[index]
                    if current - previous > best:
                        best = current - previous
                    previous = current
            self._max_degree = best
        return self._max_degree

    # ------------------------------------------------------------------
    # Edge-set conveniences (materialise on the fly; O(m), test/tooling use)
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Edge]:
        offsets, targets = self._csr
        for u in range(self._n):
            for v in targets[offsets[u]:offsets[u + 1]]:
                yield (u, v)

    def edge_set(self) -> Set[Edge]:
        return set(self.edges())

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if not (self.has_vertex(u) and self.has_vertex(v)):
            return False
        offsets, targets = self._csr
        for neighbor in targets[offsets[u]:offsets[u + 1]]:
            if neighbor == v:
                return True
        return False

    def to_edge_list(self) -> List[Edge]:
        return sorted(self.edges())

    def to_adjacency_dict(self) -> Dict[Vertex, List[Vertex]]:
        return {u: list(self.out_neighbors(u)) for u in range(self._n)}

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            # Same digest as DiGraph.fingerprint so views and graphs that
            # are equal as graphs share a fingerprint.
            import hashlib
            from struct import pack

            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(pack("<q", self._n))
            for edge in sorted(self.edges()):
                hasher.update(pack("<qq", *edge))
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def __contains__(self, item: object) -> bool:
        if isinstance(item, tuple) and len(item) == 2:
            return self.has_edge(*item)
        if isinstance(item, int):
            return self.has_vertex(item)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._n == other.num_vertices and self.edge_set() == other.edge_set()

    def __hash__(self) -> int:  # pragma: no cover - views rarely hashed
        return hash((self._n, frozenset(self.edges())))

    # ------------------------------------------------------------------
    # Derived graphs / pickling
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraphView":
        reversed_view = CSRGraphView(
            self._n,
            self._csr_rev,
            self._csr,
            fingerprint=None,
            name=f"{self.name}-reversed",
        )
        reversed_view._keepalive = self._keepalive
        reversed_view._max_degree = self._max_degree
        return reversed_view

    def copy(self, name: Optional[str] = None) -> "CSRGraphView":
        clone = CSRGraphView(
            self._n,
            self._csr,
            self._csr_rev,
            fingerprint=self._fingerprint,
            name=name or self.name,
        )
        clone._keepalive = self._keepalive
        clone._max_degree = self._max_degree
        return clone

    def materialize(self, name: Optional[str] = None) -> DiGraph:
        """Build a regular (self-contained) :class:`DiGraph` copy."""
        graph = DiGraph._from_trusted_edges(
            self._n, self.edges(), name=name or self.name
        )
        graph._fingerprint = self._fingerprint
        return graph

    def __reduce__(self) -> Tuple:
        # A pickled view must not drag memoryview/shared-memory semantics
        # along: ship self-contained arrays, rebuild an equivalent view.
        return (
            _rebuild_view,
            (
                self._n,
                array("q", self._csr[0]),
                array("q", self._csr[1]),
                array("q", self._csr_rev[0]),
                array("q", self._csr_rev[1]),
                self._fingerprint,
                self.name,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"CSRGraphView(name={self.name!r}, vertices={self._n}, "
            f"edges={self._m})"
        )


def _rebuild_view(
    num_vertices: int,
    out_offsets: array,
    out_targets: array,
    in_offsets: array,
    in_targets: array,
    fingerprint: Optional[str],
    name: str,
) -> CSRGraphView:
    return CSRGraphView(
        num_vertices,
        (out_offsets, out_targets),
        (in_offsets, in_targets),
        fingerprint=fingerprint,
        name=name,
    )
