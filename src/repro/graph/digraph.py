"""A compact directed graph with dense integer vertex ids.

:class:`DiGraph` is the single graph representation used throughout the
library.  It stores forward and reverse adjacency lists as plain Python
lists, which keeps neighbour iteration fast in CPython (no attribute lookups
per step beyond a single list indexing) and keeps memory predictable for the
graph sizes targeted by this reproduction (10^3 - 10^5 edges).

Design notes
------------
* Vertices are ``0 .. num_vertices - 1``.  Callers that have arbitrary
  labels should go through :class:`repro.graph.builder.GraphBuilder`, which
  relabels to a dense range and remembers the mapping.
* The graph is immutable after construction; algorithms never mutate their
  input graph.  Derived graphs (reverse graph, subgraphs) are new objects.
* Parallel edges are collapsed and self-loops dropped at construction time
  because neither can participate in a simple path between distinct
  endpoints (a self loop would repeat its vertex).
"""

from __future__ import annotations

import hashlib
from array import array
from struct import pack
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro._types import Edge, Vertex
from repro.exceptions import EdgeError, GraphError, VertexError

__all__ = ["DiGraph"]

CSR = Tuple[array, array]


def _build_csr(adjacency: Sequence[Sequence[Vertex]]) -> CSR:
    """Flatten adjacency lists into ``(offsets, targets)`` ``array('q')`` pairs.

    ``targets[offsets[u]:offsets[u + 1]]`` are the neighbours of ``u``.  The
    compact layout is what the distance kernels in
    :mod:`repro.core.distances` iterate: slicing an ``array('q')`` is a
    single memcpy (no per-element refcounting), which makes neighbour scans
    measurably faster than walking list-of-list adjacency in CPython.
    """
    offsets = array("q", [0])
    targets = array("q")
    append_offset = offsets.append
    extend_targets = targets.extend
    total = 0
    for neighbors in adjacency:
        total += len(neighbors)
        append_offset(total)
        extend_targets(neighbors)
    return offsets, targets


class DiGraph:
    """An immutable directed graph backed by adjacency lists.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops are ignored and duplicate
        edges are collapsed.
    name:
        Optional human-readable name (used by datasets and reports).

    Examples
    --------
    >>> g = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> sorted(g.out_neighbors(0))
    [1, 2]
    """

    __slots__ = (
        "_n",
        "_m",
        "_out",
        "_in",
        "_edge_set",
        "_fingerprint",
        "_csr",
        "_csr_rev",
        "_max_degree",
        "name",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Edge] = (),
        name: str = "graph",
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._n = int(num_vertices)
        self.name = name
        out: List[List[Vertex]] = [[] for _ in range(self._n)]
        in_: List[List[Vertex]] = [[] for _ in range(self._n)]
        edge_set: Set[Edge] = set()
        for u, v in edges:
            if not (0 <= u < self._n) or not (0 <= v < self._n):
                raise EdgeError(
                    f"edge ({u}, {v}) has endpoints outside [0, {self._n})"
                )
            if u == v:
                continue
            if (u, v) in edge_set:
                continue
            edge_set.add((u, v))
            out[u].append(v)
            in_[v].append(u)
        self._out = out
        self._in = in_
        self._edge_set = edge_set
        self._m = len(edge_set)
        self._fingerprint: Optional[str] = None
        self._csr: Optional[CSR] = None
        self._csr_rev: Optional[CSR] = None
        self._max_degree: Optional[int] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of (distinct, non-loop) directed edges."""
        return self._m

    def vertices(self) -> range:
        """Return the range of vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(u, v)`` pairs (sorted by source)."""
        for u in range(self._n):
            for v in self._out[u]:
                yield (u, v)

    def edge_set(self) -> Set[Edge]:
        """Return a copy of the edge set."""
        return set(self._edge_set)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the directed edge ``(u, v)`` exists."""
        return (u, v) in self._edge_set

    def has_vertex(self, u: Vertex) -> bool:
        """Return ``True`` if ``u`` is a valid vertex id."""
        return 0 <= u < self._n

    def check_vertex(self, u: Vertex) -> None:
        """Raise :class:`VertexError` if ``u`` is not a valid vertex id."""
        if not self.has_vertex(u):
            raise VertexError(f"vertex {u} is not in [0, {self._n})")

    # ------------------------------------------------------------------
    # Neighbourhoods and degrees
    # ------------------------------------------------------------------
    def out_neighbors(self, u: Vertex) -> Sequence[Vertex]:
        """Return the list of out-neighbours of ``u`` (do not mutate)."""
        return self._out[u]

    def in_neighbors(self, u: Vertex) -> Sequence[Vertex]:
        """Return the list of in-neighbours of ``u`` (do not mutate)."""
        return self._in[u]

    def out_degree(self, u: Vertex) -> int:
        """Return the out-degree of ``u``."""
        return len(self._out[u])

    def in_degree(self, u: Vertex) -> int:
        """Return the in-degree of ``u``."""
        return len(self._in[u])

    def degree(self, u: Vertex) -> int:
        """Return in-degree plus out-degree of ``u``."""
        return len(self._out[u]) + len(self._in[u])

    def max_degree(self) -> int:
        """Return ``d_max``: the maximum of in- and out-degrees over vertices.

        Computed once and cached (the graph is immutable); reports and the
        adaptive-search heuristics may call this per query without paying an
        O(n) scan each time.
        """
        if self._max_degree is None:
            best = 0
            for u in range(self._n):
                out_degree = len(self._out[u])
                in_degree = len(self._in[u])
                if out_degree > best:
                    best = out_degree
                if in_degree > best:
                    best = in_degree
            self._max_degree = best
        return self._max_degree

    def average_degree(self) -> float:
        """Return ``d_avg = |E| / |V|`` (0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return self._m / self._n

    def fingerprint(self) -> str:
        """Return a stable content fingerprint of ``(num_vertices, edge_set)``.

        Two graphs share a fingerprint exactly when they are equal as graphs
        (same vertex count and edge set), regardless of ``name`` or insertion
        order.  The digest is computed once and cached — the graph is
        immutable — so repeated calls are O(1).  The service layer keys its
        result caches on this value, which makes cache invalidation on a
        graph swap automatic: a different graph can never serve stale
        entries.
        """
        if self._fingerprint is None:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(pack("<q", self._n))
            for edge in sorted(self._edge_set):
                hasher.update(pack("<qq", *edge))
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # CSR views (flat-array adjacency for the distance kernels)
    # ------------------------------------------------------------------
    def csr(self) -> CSR:
        """Return the cached ``(offsets, targets)`` CSR view of out-edges.

        Both are ``array('q')``; ``targets[offsets[u]:offsets[u + 1]]`` are
        the out-neighbours of ``u`` in adjacency order.  Built once per
        (immutable) graph and shared by every query, thread and derived
        :meth:`copy`/:meth:`reverse` graph; treat the arrays as read-only.
        """
        if self._csr is None:
            self._csr = _build_csr(self._out)
        return self._csr

    def csr_reverse(self) -> CSR:
        """Return the cached CSR view of in-edges (the reverse graph)."""
        if self._csr_rev is None:
            self._csr_rev = _build_csr(self._in)
        return self._csr_rev

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """Return the reverse graph ``G^r`` (every edge flipped).

        Shares the (immutable) adjacency lists and any cached CSR views with
        this graph — forward and reverse CSR simply swap roles — so deriving
        the reverse graph never rebuilds or re-validates adjacency.
        """
        reversed_graph = DiGraph._shell(self._n, f"{self.name}-reversed")
        reversed_graph._out = self._in
        reversed_graph._in = self._out
        reversed_graph._edge_set = {(v, u) for (u, v) in self._edge_set}
        reversed_graph._m = self._m
        reversed_graph._csr = self._csr_rev
        reversed_graph._csr_rev = self._csr
        reversed_graph._max_degree = self._max_degree
        return reversed_graph

    def copy(self, name: Optional[str] = None) -> "DiGraph":
        """Return a copy of this graph (a distinct object, equal as a graph).

        Both graphs are immutable, so the copy shares adjacency, edge set
        and every cached view (CSR, fingerprint, max degree) instead of
        re-validating and rebuilding them.
        """
        clone = DiGraph._shell(self._n, name or self.name)
        clone._out = self._out
        clone._in = self._in
        clone._edge_set = self._edge_set
        clone._m = self._m
        clone._fingerprint = self._fingerprint
        clone._csr = self._csr
        clone._csr_rev = self._csr_rev
        clone._max_degree = self._max_degree
        return clone

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle the graph compactly for process-pool workers.

        Only the two CSR views (built on demand — a worker needs them
        anyway, and the ``array('q')`` pairs pickle as raw bytes) and the
        cached fingerprint travel; carrying the fingerprint lets a worker
        verify it serves the parent's exact graph without re-hashing the
        edge set.  The adjacency lists and edge set are fully redundant
        with the CSR views and are rebuilt — in the parent's exact
        adjacency order — in O(m) on unpickling, keeping the payload far
        under the naive pickle of every field (lists of boxed ints).
        """
        return {
            "n": self._n,
            "name": self.name,
            "fingerprint": self._fingerprint,
            "csr": self.csr(),
            "csr_rev": self.csr_reverse(),
            "max_degree": self._max_degree,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._n = state["n"]
        self.name = state["name"]
        self._csr = state["csr"]
        self._csr_rev = state["csr_rev"]
        # Rebuild the redundant views by slicing the carried CSR arrays,
        # which preserves the parent's exact adjacency order (and thereby
        # any order-sensitive traversal downstream).
        out_offsets, out_targets = self._csr
        self._out = [
            list(out_targets[out_offsets[u]:out_offsets[u + 1]])
            for u in range(self._n)
        ]
        in_offsets, in_targets = self._csr_rev
        self._in = [
            list(in_targets[in_offsets[u]:in_offsets[u + 1]])
            for u in range(self._n)
        ]
        edge_set: Set[Edge] = set()
        for u, neighbors in enumerate(self._out):
            for v in neighbors:
                edge_set.add((u, v))
        self._edge_set = edge_set
        self._m = len(edge_set)
        self._fingerprint = state["fingerprint"]
        self._max_degree = state["max_degree"]

    # ------------------------------------------------------------------
    # Interop / dunder helpers
    # ------------------------------------------------------------------
    def to_edge_list(self) -> List[Edge]:
        """Return all edges as a sorted list of pairs."""
        return sorted(self._edge_set)

    def to_adjacency_dict(self) -> Dict[Vertex, List[Vertex]]:
        """Return a ``{u: [v, ...]}`` adjacency dictionary copy."""
        return {u: list(self._out[u]) for u in range(self._n)}

    def __contains__(self, item: object) -> bool:
        if isinstance(item, tuple) and len(item) == 2:
            return item in self._edge_set
        if isinstance(item, int):
            return self.has_vertex(item)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self) -> int:  # pragma: no cover - graphs rarely hashed
        return hash((self._n, frozenset(self._edge_set)))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"DiGraph(name={self.name!r}, vertices={self._n}, edges={self._m})"
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls, edges: Iterable[Edge], num_vertices: Optional[int] = None, name: str = "graph"
    ) -> "DiGraph":
        """Build a graph from an edge list.

        If ``num_vertices`` is omitted, it is inferred as ``max id + 1``.
        """
        edge_list = [(int(u), int(v)) for u, v in edges]
        if num_vertices is None:
            num_vertices = 0
            for u, v in edge_list:
                if u < 0 or v < 0:
                    raise EdgeError(f"negative vertex id in edge ({u}, {v})")
                num_vertices = max(num_vertices, u + 1, v + 1)
        return cls(num_vertices, edge_list, name=name)

    @classmethod
    def empty(cls, num_vertices: int = 0, name: str = "empty") -> "DiGraph":
        """Return a graph with ``num_vertices`` vertices and no edges."""
        return cls(num_vertices, (), name=name)

    @classmethod
    def _shell(cls, num_vertices: int, name: str) -> "DiGraph":
        """Bare instance with empty storage; internal fast path.

        ``copy``/``reverse`` overwrite every structural field with shared
        references, so building the usual per-vertex empty adjacency lists
        in ``__init__`` would be pure waste.
        """
        graph = cls.__new__(cls)
        graph._n = num_vertices
        graph.name = name
        graph._out = []
        graph._in = []
        graph._edge_set = set()
        graph._m = 0
        graph._fingerprint = None
        graph._csr = None
        graph._csr_rev = None
        graph._max_degree = None
        return graph

    @classmethod
    def _from_trusted_edges(
        cls, num_vertices: int, edges: Iterable[Edge], name: str = "graph"
    ) -> "DiGraph":
        """Build a graph from edges already known to be valid.

        Internal fast path for subgraph extraction: ``edges`` must be
        in-range and loop-free (they come from an existing graph), so the
        per-edge bounds checks of ``__init__`` are skipped.  Duplicates are
        still collapsed, and insertion order is preserved so adjacency
        order — and therefore any order-sensitive tie-breaking downstream —
        stays deterministic.
        """
        graph = cls(num_vertices, (), name=name)
        out = graph._out
        in_ = graph._in
        edge_set = graph._edge_set
        for u, v in edges:
            if (u, v) in edge_set:
                continue
            edge_set.add((u, v))
            out[u].append(v)
            in_[v].append(u)
        graph._m = len(edge_set)
        return graph
