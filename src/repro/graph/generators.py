"""Synthetic directed-graph generators.

The paper evaluates on 15 real networks ranging from 3 thousand to 89
million vertices (Table 2).  Those graphs cannot be bundled with a
reproduction, so the dataset registry (:mod:`repro.datasets.registry`)
builds *synthetic proxies* with this module: seeded generators whose density
and degree skew can be matched to each real network's published statistics
at a laptop-friendly scale.

All generators take an explicit ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from repro._types import Edge
from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "random_regular_out",
    "power_law_cluster",
    "community_graph",
    "layered_dag",
    "grid_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "path_graph",
]


def _check_positive(name: str, value: int) -> None:
    if value < 0:
        raise GraphError(f"{name} must be non-negative, got {value}")


def erdos_renyi(
    num_vertices: int,
    average_degree: float,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> DiGraph:
    """Directed G(n, m) graph with ``m ~= n * average_degree`` edges.

    Edges are sampled uniformly at random without replacement (self loops
    excluded).  This is the workhorse proxy for the paper's web and social
    graphs of moderate density.
    """
    _check_positive("num_vertices", num_vertices)
    if num_vertices <= 1:
        return DiGraph(num_vertices, name=name)
    rng = random.Random(seed)
    target_edges = int(round(num_vertices * average_degree))
    max_edges = num_vertices * (num_vertices - 1)
    target_edges = min(target_edges, max_edges)
    edges: Set[Edge] = set()
    while len(edges) < target_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            edges.add((u, v))
    return DiGraph(num_vertices, edges, name=name)


def random_regular_out(
    num_vertices: int,
    out_degree: int,
    seed: int = 0,
    name: str = "regular-out",
) -> DiGraph:
    """Graph where every vertex has (approximately) ``out_degree`` out-edges.

    Used for proxies of graphs with narrow degree distributions.
    """
    _check_positive("num_vertices", num_vertices)
    if num_vertices <= 1:
        return DiGraph(num_vertices, name=name)
    rng = random.Random(seed)
    degree = min(out_degree, num_vertices - 1)
    edges: List[Edge] = []
    for u in range(num_vertices):
        targets = rng.sample(range(num_vertices), degree + 1)
        added = 0
        for v in targets:
            if v != u and added < degree:
                edges.append((u, v))
                added += 1
    return DiGraph(num_vertices, edges, name=name)


def power_law_cluster(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int = 0,
    bidirectional_fraction: float = 0.3,
    name: str = "power-law",
) -> DiGraph:
    """Preferential-attachment graph with a heavy-tailed in-degree.

    Mimics web graphs and social networks (hubs with very large degree),
    which is the regime where enumeration baselines blow up fastest.  A
    fraction of edges is mirrored to create short cycles, since simple-cycle
    structure is what drives the fraud-detection use case.
    """
    _check_positive("num_vertices", num_vertices)
    if num_vertices <= 1:
        return DiGraph(num_vertices, name=name)
    rng = random.Random(seed)
    m = max(1, min(edges_per_vertex, num_vertices - 1))
    edges: Set[Edge] = set()
    # Start from a small seed clique so preferential attachment has targets.
    core = min(m + 1, num_vertices)
    targets_pool: List[int] = []
    for u in range(core):
        for v in range(core):
            if u != v:
                edges.add((u, v))
                targets_pool.append(v)
    if not targets_pool:
        targets_pool = [0]
    for u in range(core, num_vertices):
        chosen: Set[int] = set()
        while len(chosen) < m:
            v = targets_pool[rng.randrange(len(targets_pool))]
            if v != u:
                chosen.add(v)
        for v in chosen:
            edges.add((u, v))
            targets_pool.append(v)
            targets_pool.append(u)
            if rng.random() < bidirectional_fraction:
                edges.add((v, u))
    return DiGraph(num_vertices, edges, name=name)


def community_graph(
    num_communities: int,
    community_size: int,
    intra_probability: float,
    inter_edges_per_community: int,
    seed: int = 0,
    name: str = "community",
) -> DiGraph:
    """Graph of dense communities connected by sparse bridges.

    The paper motivates simple path graphs with "large strongly cohesive
    communities" that create massive path overlap; this generator reproduces
    that structure: within-community edges are dense, communities are
    connected by a few bridge edges so s-t paths funnel through them.
    """
    _check_positive("num_communities", num_communities)
    _check_positive("community_size", community_size)
    rng = random.Random(seed)
    n = num_communities * community_size
    edges: Set[Edge] = set()
    for c in range(num_communities):
        base = c * community_size
        members = range(base, base + community_size)
        for u in members:
            for v in members:
                if u != v and rng.random() < intra_probability:
                    edges.add((u, v))
    for c in range(num_communities):
        base = c * community_size
        next_base = ((c + 1) % num_communities) * community_size
        for _ in range(inter_edges_per_community):
            u = base + rng.randrange(community_size)
            v = next_base + rng.randrange(community_size)
            if u != v:
                edges.add((u, v))
    return DiGraph(n, edges, name=name)


def layered_dag(
    num_layers: int,
    layer_width: int,
    forward_probability: float = 0.5,
    seed: int = 0,
    name: str = "layered-dag",
) -> DiGraph:
    """Layered DAG where edges only go from layer ``i`` to layer ``i+1``.

    Handy for tests: the number of s-t simple paths and their lengths are
    easy to reason about, and there are no cycles.
    """
    _check_positive("num_layers", num_layers)
    _check_positive("layer_width", layer_width)
    rng = random.Random(seed)
    n = num_layers * layer_width
    edges: List[Edge] = []
    for layer in range(num_layers - 1):
        base = layer * layer_width
        next_base = (layer + 1) * layer_width
        for i in range(layer_width):
            for j in range(layer_width):
                if rng.random() < forward_probability:
                    edges.append((base + i, next_base + j))
    return DiGraph(n, edges, name=name)


def grid_graph(rows: int, cols: int, bidirectional: bool = False, name: str = "grid") -> DiGraph:
    """Directed grid: edges point right and down (optionally both ways)."""
    _check_positive("rows", rows)
    _check_positive("cols", cols)
    edges: List[Edge] = []

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vertex(r, c), vertex(r, c + 1)))
                if bidirectional:
                    edges.append((vertex(r, c + 1), vertex(r, c)))
            if r + 1 < rows:
                edges.append((vertex(r, c), vertex(r + 1, c)))
                if bidirectional:
                    edges.append((vertex(r + 1, c), vertex(r, c)))
    return DiGraph(rows * cols, edges, name=name)


def cycle_graph(num_vertices: int, name: str = "cycle") -> DiGraph:
    """Single directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    _check_positive("num_vertices", num_vertices)
    if num_vertices < 2:
        return DiGraph(num_vertices, name=name)
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return DiGraph(num_vertices, edges, name=name)


def complete_graph(num_vertices: int, name: str = "complete") -> DiGraph:
    """Complete directed graph (both directions, no self loops)."""
    _check_positive("num_vertices", num_vertices)
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(num_vertices)
        if u != v
    ]
    return DiGraph(num_vertices, edges, name=name)


def star_graph(num_leaves: int, outward: bool = True, name: str = "star") -> DiGraph:
    """Star graph with centre 0 and ``num_leaves`` leaves."""
    _check_positive("num_leaves", num_leaves)
    if outward:
        edges = [(0, i) for i in range(1, num_leaves + 1)]
    else:
        edges = [(i, 0) for i in range(1, num_leaves + 1)]
    return DiGraph(num_leaves + 1, edges, name=name)


def path_graph(num_vertices: int, name: str = "path") -> DiGraph:
    """Simple directed path ``0 -> 1 -> ... -> n-1``."""
    _check_positive("num_vertices", num_vertices)
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return DiGraph(num_vertices, edges, name=name)
