"""Edge-list input/output.

The datasets in the paper (Table 2) are distributed as plain edge lists by
SNAP, KONECT and NetworkRepository.  This module reads and writes that
format so users can run the library on the real networks when they have
them, and it is also used by the dataset registry to cache generated
synthetic proxies on disk.

Supported format: one edge per line, ``<source> <target>`` separated by
whitespace (or a custom delimiter), with ``#`` / ``%`` comment lines ignored
(SNAP uses ``#``, KONECT uses ``%``).  Optional trailing columns (weights,
timestamps) are ignored unless ``with_timestamps`` is requested.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro._types import Edge
from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "load_graph",
    "save_graph",
    "iter_edge_lines",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike, mode: str = "rt"):
    """Open ``path`` as text, transparently handling ``.gz`` files."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode, encoding="utf-8")


def iter_edge_lines(path: PathLike, delimiter: Optional[str] = None) -> Iterator[List[str]]:
    """Yield the whitespace-split fields of every non-comment line."""
    with _open_text(path) as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            yield line.split(delimiter)


def read_edge_list(
    path: PathLike,
    delimiter: Optional[str] = None,
    with_timestamps: bool = False,
) -> List[Tuple]:
    """Read an edge list file and return raw ``(u, v)`` label pairs.

    Labels are returned as strings; relabelling to dense ids is the job of
    :class:`~repro.graph.builder.GraphBuilder` (see :func:`load_graph`).
    When ``with_timestamps`` is true, a third column is parsed as a float
    timestamp and 3-tuples are returned.
    """
    edges: List[Tuple] = []
    for fields in iter_edge_lines(path, delimiter=delimiter):
        if len(fields) < 2:
            raise GraphError(f"malformed edge line (needs >=2 fields): {fields!r}")
        if with_timestamps:
            if len(fields) < 3:
                raise GraphError(
                    f"edge line missing timestamp column: {fields!r}"
                )
            edges.append((fields[0], fields[1], float(fields[2])))
        else:
            edges.append((fields[0], fields[1]))
    return edges


def write_edge_list(
    path: PathLike,
    edges: Iterable[Edge],
    header: Optional[str] = None,
) -> int:
    """Write ``edges`` to ``path`` (one ``u v`` pair per line).

    Returns the number of edges written.
    """
    count = 0
    with _open_text(path, "wt") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count


def load_graph(
    path: PathLike,
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
) -> Tuple[DiGraph, GraphBuilder]:
    """Load a graph from an edge-list file.

    Returns the graph together with the :class:`GraphBuilder` holding the
    label mapping (original labels may be arbitrary strings or sparse ids).
    """
    builder = GraphBuilder()
    for fields in iter_edge_lines(path, delimiter=delimiter):
        if len(fields) < 2:
            raise GraphError(f"malformed edge line (needs >=2 fields): {fields!r}")
        builder.add_edge(fields[0], fields[1])
    graph_name = name if name is not None else Path(path).stem
    return builder.build(name=graph_name), builder


def save_graph(path: PathLike, graph: DiGraph, header: Optional[str] = None) -> int:
    """Save ``graph`` as an edge list; returns the number of edges written."""
    default_header = f"graph {graph.name}: {graph.num_vertices} vertices, {graph.num_edges} edges"
    return write_edge_list(path, graph.edges(), header=header or default_header)
