"""Directed-graph substrate used by every algorithm in the library.

The central class is :class:`~repro.graph.digraph.DiGraph`, a compact
adjacency-list directed graph with dense integer vertex ids.  Helper modules
provide construction from raw edge lists (:mod:`repro.graph.builder`),
edge-list I/O (:mod:`repro.graph.io`), synthetic generators
(:mod:`repro.graph.generators`), structural statistics
(:mod:`repro.graph.properties`), edge-induced subgraphs
(:mod:`repro.graph.subgraph`), vertex-range CSR partitioning
(:mod:`repro.graph.partition`), shared-memory CSR segments with
zero-copy graph views (:mod:`repro.graph.shm`) and batched edge
mutations applied as CSR overlays (:mod:`repro.graph.delta`).
"""

from repro.graph.builder import GraphBuilder, build_graph
from repro.graph.delta import DeltaOverlayView, GraphDelta, apply_delta
from repro.graph.digraph import DiGraph
from repro.graph.partition import (
    GraphShard,
    ShardSet,
    owner_of,
    partition_graph,
    partition_ranges,
    shard_fingerprint,
    shard_set_fingerprint,
)
from repro.graph.shm import (
    AttachedGraphSegment,
    CSRGraphView,
    SharedGraphDescriptor,
    SharedGraphSegment,
    attach_shared_graph,
    shared_memory_available,
)
from repro.graph.subgraph import edge_induced_subgraph, vertex_induced_subgraph

__all__ = [
    "DiGraph",
    "DeltaOverlayView",
    "GraphBuilder",
    "GraphDelta",
    "apply_delta",
    "build_graph",
    "edge_induced_subgraph",
    "vertex_induced_subgraph",
    "GraphShard",
    "ShardSet",
    "partition_graph",
    "partition_ranges",
    "owner_of",
    "shard_fingerprint",
    "shard_set_fingerprint",
    "SharedGraphSegment",
    "SharedGraphDescriptor",
    "AttachedGraphSegment",
    "CSRGraphView",
    "attach_shared_graph",
    "shared_memory_available",
]
