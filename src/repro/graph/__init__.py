"""Directed-graph substrate used by every algorithm in the library.

The central class is :class:`~repro.graph.digraph.DiGraph`, a compact
adjacency-list directed graph with dense integer vertex ids.  Helper modules
provide construction from raw edge lists (:mod:`repro.graph.builder`),
edge-list I/O (:mod:`repro.graph.io`), synthetic generators
(:mod:`repro.graph.generators`), structural statistics
(:mod:`repro.graph.properties`) and edge-induced subgraphs
(:mod:`repro.graph.subgraph`).
"""

from repro.graph.builder import GraphBuilder, build_graph
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import edge_induced_subgraph, vertex_induced_subgraph

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "build_graph",
    "edge_induced_subgraph",
    "vertex_induced_subgraph",
]
