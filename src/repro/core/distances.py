"""Bounded shortest-distance computation (Section 3.3, Figure 6(a)).

Before propagating essential vertices, EVE needs the shortest distances
``dist(s, y)`` and ``dist(y, t)`` for every vertex ``y`` that can possibly
lie on a k-hop-constrained s-t path, i.e. every ``y`` with
``dist(s, y) + dist(y, t) <= k``.  Vertices outside this *candidate space*
may be ignored (their distance is treated as infinity), which is exactly
what the forward-looking pruning rule needs.

Three strategies are implemented, matching the ablation in Figure 11:

``single``
    Two independent breadth-first searches bounded by depth ``k`` (forward
    from ``s`` on ``G``, backward from ``t`` on ``G`` reversed).
``bidirectional``
    Classic balanced bi-directional BFS: forward to depth ``ceil(k/2)``,
    backward to depth ``floor(k/2)``, then each side is extended to depth
    ``k`` restricted to vertices already discovered by the other side.
``adaptive``
    Adaptive bi-directional search: at every step the side with the smaller
    frontier advances, until the two explored depths sum to ``k``; the same
    restricted extension then completes the candidate space.

All strategies return a :class:`DistanceIndex` whose distances are *exact*
for every candidate vertex; the restricted extension is correct because any
vertex on a shortest path to a candidate vertex is itself within the other
side's explored radius (see the proof sketch in the module tests).

Execution backend
-----------------
Since the CSR refactor, every search runs on the flat-array adjacency of
:meth:`repro.graph.digraph.DiGraph.csr` instead of list-of-list neighbour
walks, and visited bookkeeping uses *epoch-stamped* flat buffers instead of
per-query dicts: a vertex ``v`` is reached iff ``stamp[v] == epoch``, so
resetting between queries is a single integer increment rather than an
O(n) clear or a fresh allocation.  The buffers live in a
:class:`DistanceScratch` that callers (notably the
:class:`repro.service.SPGEngine` scratch pool) can reuse across queries for
zero per-query allocation; when no scratch is passed, a private one is
created per call.  Results are exposed through :class:`ArrayDistanceMap`, a
read-only ``Mapping`` view over the buffers, so the ``{vertex: distance}``
contract of the previous dict implementation — retained verbatim in
:mod:`repro.core.distances_reference` as the property-test oracle — is
unchanged for every consumer.
"""

from __future__ import annotations

from collections.abc import Mapping as _MappingABC
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro._types import Vertex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = [
    "DistanceIndex",
    "BackwardDistanceMap",
    "ArrayDistanceMap",
    "DistanceScratch",
    "compute_distance_index",
    "backward_distance_map",
    "sharded_backward_distance_map",
    "csr_slice_expand",
    "bounded_bfs",
    "bounded_multi_source_distances",
    "DISTANCE_STRATEGIES",
]

DISTANCE_STRATEGIES = ("single", "bidirectional", "adaptive")

_INF = float("inf")


# ----------------------------------------------------------------------
# Flat-buffer scratch and the dict-like view over it
# ----------------------------------------------------------------------
class ArrayDistanceMap(_MappingABC):
    """Read-only ``{vertex: distance}`` view over epoch-stamped flat buffers.

    A vertex is present exactly when ``stamp[vertex] == epoch``; its
    distance is then ``dist[vertex]``.  ``touched`` lists the present
    vertices in discovery (BFS level) order, which makes iteration and
    ``len`` O(reached) rather than O(n).  The class implements the full
    ``Mapping`` protocol (including ``==`` against plain dicts), so code
    written against the previous dict-based distance layer keeps working.

    Lifetime: a view built on a *shared* :class:`DistanceScratch` is only
    coherent until the scratch is reused for another query.  The engine
    confines scratch-backed views to a single query execution;
    :func:`backward_distance_map` always returns an owned view safe to
    retain (batch planners cache it across queries).
    """

    __slots__ = ("dist", "stamp", "epoch", "touched")

    def __init__(
        self, dist: List[int], stamp: List[int], epoch: int, touched: List[Vertex]
    ) -> None:
        self.dist = dist
        self.stamp = stamp
        self.epoch = epoch
        self.touched = touched

    def get(self, vertex: Vertex, default=None):
        """Return the distance of ``vertex`` or ``default`` when unreached.

        Like ``dict.get``, any non-vertex key (wrong type, out of range)
        yields ``default`` instead of raising.
        """
        stamp = self.stamp
        try:
            if 0 <= vertex < len(stamp) and stamp[vertex] == self.epoch:
                return self.dist[vertex]
        except TypeError:
            return default
        return default

    def __getitem__(self, vertex: Vertex) -> int:
        stamp = self.stamp
        try:
            if 0 <= vertex < len(stamp) and stamp[vertex] == self.epoch:
                return self.dist[vertex]
        except TypeError:
            raise KeyError(vertex) from None
        raise KeyError(vertex)

    def __contains__(self, vertex: object) -> bool:
        stamp = self.stamp
        return (
            isinstance(vertex, int)
            and 0 <= vertex < len(stamp)
            and stamp[vertex] == self.epoch
        )

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.touched)

    def __len__(self) -> int:
        return len(self.touched)

    def items(self) -> List[Tuple[Vertex, int]]:
        """Return ``(vertex, distance)`` pairs in discovery order (fast path)."""
        dist = self.dist
        return [(v, dist[v]) for v in self.touched]

    def to_dict(self) -> dict:
        """Materialise a plain dict copy (detached from the scratch buffers)."""
        dist = self.dist
        return {v: dist[v] for v in self.touched}

    def __repr__(self) -> str:
        return f"ArrayDistanceMap(reached={len(self.touched)}, epoch={self.epoch})"


class _ScratchSide:
    """One reusable (dist, stamp) buffer pair with its current epoch."""

    __slots__ = ("dist", "stamp", "epoch")

    def __init__(self) -> None:
        self.dist: List[int] = []
        self.stamp: List[int] = []
        self.epoch = 0

    def begin(self, num_vertices: int) -> Tuple[List[int], List[int], int]:
        """Start a new search: bump the epoch, grow buffers to fit the graph."""
        grow = num_vertices - len(self.stamp)
        if grow > 0:
            self.dist.extend([0] * grow)
            self.stamp.extend([0] * grow)
        self.epoch += 1
        return self.dist, self.stamp, self.epoch


class DistanceScratch:
    """Reusable flat buffers for one in-flight distance computation.

    Holds a forward and a backward :class:`_ScratchSide` (a bi-directional
    search needs both simultaneously).  A scratch must serve at most one
    query at a time, but may be reused for any number of *successive*
    queries — even across graphs of different sizes (buffers grow on
    demand) — without allocating: that is the zero-allocation serving path
    of :class:`repro.service.ScratchPool`.
    """

    __slots__ = ("forward", "backward")

    def __init__(self) -> None:
        self.forward = _ScratchSide()
        self.backward = _ScratchSide()

    @property
    def capacity(self) -> int:
        """Number of vertices the buffers currently cover without growing."""
        return len(self.forward.stamp)


@dataclass
class DistanceIndex:
    """Shortest distances from ``s`` and to ``t`` over the candidate space.

    Attributes
    ----------
    source, target, k:
        The query this index was built for.
    from_source:
        ``{vertex: dist(s, vertex)}`` — exact for every candidate vertex.
    to_target:
        ``{vertex: dist(vertex, t)}`` — exact for every candidate vertex.
    explored_vertices:
        Total number of vertex expansions performed (search-space size; used
        by the Figure 11 ablation report).
    strategy:
        Which strategy produced the index.

    Both distance maps satisfy the ``Mapping`` protocol; they are plain
    dicts when built by :mod:`repro.core.distances_reference` and
    :class:`ArrayDistanceMap` views when built by the CSR kernel.
    """

    source: Vertex
    target: Vertex
    k: int
    from_source: Mapping[Vertex, int] = field(default_factory=dict)
    to_target: Mapping[Vertex, int] = field(default_factory=dict)
    explored_vertices: int = 0
    strategy: str = "adaptive"

    # ------------------------------------------------------------------
    def dist_from_source(self, vertex: Vertex) -> float:
        """Return ``dist(s, vertex)`` or ``inf`` if unknown/out of space."""
        return self.from_source.get(vertex, _INF)

    def dist_to_target(self, vertex: Vertex) -> float:
        """Return ``dist(vertex, t)`` or ``inf`` if unknown/out of space."""
        return self.to_target.get(vertex, _INF)

    def in_candidate_space(self, vertex: Vertex) -> bool:
        """True when ``dist(s, v) + dist(v, t) <= k``."""
        return (
            self.dist_from_source(vertex) + self.dist_to_target(vertex) <= self.k
        )

    def candidate_vertices(self) -> Set[Vertex]:
        """Return all vertices in the candidate space."""
        return {
            v
            for v, d in self.from_source.items()
            if d + self.dist_to_target(v) <= self.k
        }

    def shortest_st_distance(self) -> float:
        """Return ``dist(s, t)`` (may be ``inf`` when t is unreachable in k)."""
        return self.dist_from_source(self.target)

    def size(self) -> int:
        """Number of stored distance entries (space accounting)."""
        return len(self.from_source) + len(self.to_target)

    def span_attributes(self) -> Dict[str, object]:
        """Trace attributes describing this index (distance-phase spans).

        O(1): reads only stored sizes, never walks the distance maps, so
        attaching these to a span costs nothing measurable.
        """
        return {
            "strategy": self.strategy,
            "index_size": self.size(),
            "explored_vertices": self.explored_vertices,
        }


# ----------------------------------------------------------------------
# CSR kernels
# ----------------------------------------------------------------------
def _csr_bfs(
    offsets,
    targets,
    source: Vertex,
    max_depth: int,
    dist: List[int],
    stamp: List[int],
    epoch: int,
) -> List[Vertex]:
    """Level BFS on a CSR view; returns the touched vertices in level order."""
    dist[source] = 0
    stamp[source] = epoch
    touched = [source]
    frontier = [source]
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        next_frontier: List[Vertex] = []
        push = next_frontier.append
        for vertex in frontier:
            for neighbor in targets[offsets[vertex]:offsets[vertex + 1]]:
                if stamp[neighbor] != epoch:
                    stamp[neighbor] = epoch
                    dist[neighbor] = depth
                    push(neighbor)
        touched.extend(next_frontier)
        frontier = next_frontier
    return touched


def _csr_bfs_allowed(
    offsets,
    targets,
    source: Vertex,
    max_depth: int,
    dist: List[int],
    stamp: List[int],
    epoch: int,
    allowed: Mapping[Vertex, int],
    budget: int,
) -> List[Vertex]:
    """Restricted level BFS: admit ``w`` at depth ``d`` only when the other
    side knows it and ``d + allowed[w] <= budget`` (the source is always
    seeded).  Array-backed ``allowed`` maps are read through their raw
    buffers; any other mapping falls back to ``.get``.
    """
    array_allowed = isinstance(allowed, ArrayDistanceMap)
    if array_allowed:
        adist = allowed.dist
        astamp = allowed.stamp
        aepoch = allowed.epoch
    else:
        aget = allowed.get
    dist[source] = 0
    stamp[source] = epoch
    touched = [source]
    frontier = [source]
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        next_frontier: List[Vertex] = []
        push = next_frontier.append
        for vertex in frontier:
            for neighbor in targets[offsets[vertex]:offsets[vertex + 1]]:
                if stamp[neighbor] == epoch:
                    continue
                if array_allowed:
                    if astamp[neighbor] != aepoch or depth + adist[neighbor] > budget:
                        continue
                else:
                    other = aget(neighbor)
                    if other is None or depth + other > budget:
                        continue
                stamp[neighbor] = epoch
                dist[neighbor] = depth
                push(neighbor)
        touched.extend(next_frontier)
        frontier = next_frontier
    return touched


def _expand_level(
    offsets,
    targets,
    frontier: List[Vertex],
    depth: int,
    dist: List[int],
    stamp: List[int],
    epoch: int,
    touched: List[Vertex],
) -> List[Vertex]:
    """Expand ``frontier`` by one hop, recording new distances at ``depth``."""
    next_frontier: List[Vertex] = []
    push = next_frontier.append
    for vertex in frontier:
        for neighbor in targets[offsets[vertex]:offsets[vertex + 1]]:
            if stamp[neighbor] != epoch:
                stamp[neighbor] = epoch
                dist[neighbor] = depth
                push(neighbor)
    touched.extend(next_frontier)
    return next_frontier


def _restricted_extension(
    offsets,
    targets,
    frontier: List[Vertex],
    start_depth: int,
    k: int,
    dist: List[int],
    stamp: List[int],
    epoch: int,
    odist: List[int],
    ostamp: List[int],
    oepoch: int,
    touched: List[Vertex],
) -> int:
    """Extend a partially-explored side up to depth ``k``.

    Only vertices whose distance on the *other* side is known and compatible
    with the hop budget are added; this keeps the search inside the
    candidate space while preserving exact distances for candidates.
    Returns the number of vertex expansions performed.
    """
    explored = 0
    depth = start_depth
    current = frontier
    while current and depth < k:
        depth += 1
        next_frontier: List[Vertex] = []
        push = next_frontier.append
        for vertex in current:
            for neighbor in targets[offsets[vertex]:offsets[vertex + 1]]:
                if stamp[neighbor] == epoch:
                    continue
                if ostamp[neighbor] != oepoch or depth + odist[neighbor] > k:
                    continue
                stamp[neighbor] = epoch
                dist[neighbor] = depth
                push(neighbor)
                explored += 1
        touched.extend(next_frontier)
        current = next_frontier
    return explored


# ----------------------------------------------------------------------
# Elementary bounded BFS
# ----------------------------------------------------------------------
def bounded_bfs(
    graph: DiGraph,
    source: Vertex,
    max_depth: int,
    reverse: bool = False,
    allowed: Optional[Mapping[Vertex, int]] = None,
    allowed_budget: Optional[int] = None,
    scratch_side: Optional[_ScratchSide] = None,
) -> ArrayDistanceMap:
    """Breadth-first search from ``source`` bounded by ``max_depth`` hops.

    Parameters
    ----------
    reverse:
        When true, traverse in-edges instead of out-edges (used for the
        backward search from ``t``).
    allowed / allowed_budget:
        When provided, a vertex ``v`` at depth ``d`` is only expanded/kept if
        ``allowed`` knows it and ``d + allowed[v] <= allowed_budget``.  This
        implements the restricted extension phase of (adaptive)
        bi-directional search.
    scratch_side:
        Optional reusable buffers; a private pair is allocated when omitted.

    Returns a read-only :class:`ArrayDistanceMap` that behaves like the
    ``{vertex: depth}`` dict previously returned (including ``==`` against
    plain dicts).
    """
    offsets, targets = graph.csr_reverse() if reverse else graph.csr()
    side = scratch_side if scratch_side is not None else _ScratchSide()
    dist, stamp, epoch = side.begin(graph.num_vertices)
    if allowed is not None:
        touched = _csr_bfs_allowed(
            offsets, targets, source, max_depth, dist, stamp, epoch,
            allowed, allowed_budget or 0,
        )
    else:
        touched = _csr_bfs(offsets, targets, source, max_depth, dist, stamp, epoch)
    return ArrayDistanceMap(dist, stamp, epoch, touched)


def bounded_multi_source_distances(
    graph: DiGraph,
    sources: Iterable[Vertex],
    max_depth: int,
    reverse: bool = False,
    extra_adjacency: Optional[Mapping[Vertex, Sequence[Vertex]]] = None,
) -> Dict[Vertex, int]:
    """Depth-bounded multi-source BFS, optionally through extra edges.

    Starts from every vertex in ``sources`` at distance 0 and returns a
    ``{vertex: distance}`` dict for all vertices within ``max_depth``
    hops.  ``extra_adjacency`` overlays additional out-edges (in-edges
    when ``reverse``) on top of the graph's CSR view without rebuilding
    it; the scoped cache invalidation in the service layer uses this to
    traverse the *union* of a pre- and post-delta graph — the union's
    distances lower-bound both epochs', which is what makes the
    invalidation k-ball test conservative.

    Runs once per applied delta (not per query), so it uses plain dict
    bookkeeping instead of the epoch-stamped scratch machinery.
    """
    offsets, targets = graph.csr_reverse() if reverse else graph.csr()
    n = graph.num_vertices
    dist: Dict[Vertex, int] = {}
    frontier: List[Vertex] = []
    for source in sources:
        if 0 <= source < n and source not in dist:
            dist[source] = 0
            frontier.append(source)
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        next_frontier: List[Vertex] = []
        for u in frontier:
            neighbors = targets[offsets[u]:offsets[u + 1]]
            for v in neighbors:
                if v not in dist:
                    dist[v] = depth
                    next_frontier.append(v)
            if extra_adjacency is not None:
                extra = extra_adjacency.get(u)
                if extra:
                    for v in extra:
                        if v not in dist:
                            dist[v] = depth
                            next_frontier.append(v)
        frontier = next_frontier
    return dist


# ----------------------------------------------------------------------
# Strategy drivers
# ----------------------------------------------------------------------
def _single_directional(
    graph: DiGraph, s: Vertex, t: Vertex, k: int, scratch: DistanceScratch
) -> DistanceIndex:
    forward = bounded_bfs(graph, s, k, reverse=False, scratch_side=scratch.forward)
    backward = bounded_bfs(graph, t, k, reverse=True, scratch_side=scratch.backward)
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=backward,
        explored_vertices=len(forward) + len(backward),
        strategy="single",
    )


def _two_phase(
    graph: DiGraph,
    s: Vertex,
    t: Vertex,
    k: int,
    adaptive: bool,
    scratch: DistanceScratch,
) -> DistanceIndex:
    n = graph.num_vertices
    f_offsets, f_targets = graph.csr()
    b_offsets, b_targets = graph.csr_reverse()
    fdist, fstamp, fepoch = scratch.forward.begin(n)
    bdist, bstamp, bepoch = scratch.backward.begin(n)

    fdist[s] = 0
    fstamp[s] = fepoch
    bdist[t] = 0
    bstamp[t] = bepoch
    forward_touched = [s]
    backward_touched = [t]
    forward_frontier: List[Vertex] = [s]
    backward_frontier: List[Vertex] = [t]
    forward_depth = 0
    backward_depth = 0
    explored = 2

    if adaptive:
        # Advance the smaller frontier until the two depths cover k hops.
        while forward_depth + backward_depth < k:
            forward_alive = bool(forward_frontier)
            backward_alive = bool(backward_frontier)
            if not forward_alive and not backward_alive:
                break
            advance_forward = forward_alive and (
                not backward_alive
                or len(forward_frontier) <= len(backward_frontier)
            )
            if advance_forward:
                forward_depth += 1
                forward_frontier = _expand_level(
                    f_offsets, f_targets, forward_frontier, forward_depth,
                    fdist, fstamp, fepoch, forward_touched,
                )
                explored += len(forward_frontier)
            else:
                backward_depth += 1
                backward_frontier = _expand_level(
                    b_offsets, b_targets, backward_frontier, backward_depth,
                    bdist, bstamp, bepoch, backward_touched,
                )
                explored += len(backward_frontier)
    else:
        forward_budget = (k + 1) // 2
        backward_budget = k - forward_budget
        while forward_depth < forward_budget and forward_frontier:
            forward_depth += 1
            forward_frontier = _expand_level(
                f_offsets, f_targets, forward_frontier, forward_depth,
                fdist, fstamp, fepoch, forward_touched,
            )
            explored += len(forward_frontier)
        while backward_depth < backward_budget and backward_frontier:
            backward_depth += 1
            backward_frontier = _expand_level(
                b_offsets, b_targets, backward_frontier, backward_depth,
                bdist, bstamp, bepoch, backward_touched,
            )
            explored += len(backward_frontier)

    # Phase 2: restricted extension so every candidate vertex gets an exact
    # distance on both sides.
    explored += _restricted_extension(
        f_offsets, f_targets, forward_frontier, forward_depth, k,
        fdist, fstamp, fepoch, bdist, bstamp, bepoch, forward_touched,
    )
    explored += _restricted_extension(
        b_offsets, b_targets, backward_frontier, backward_depth, k,
        bdist, bstamp, bepoch, fdist, fstamp, fepoch, backward_touched,
    )
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=ArrayDistanceMap(fdist, fstamp, fepoch, forward_touched),
        to_target=ArrayDistanceMap(bdist, bstamp, bepoch, backward_touched),
        explored_vertices=explored,
        strategy="adaptive" if adaptive else "bidirectional",
    )


# ----------------------------------------------------------------------
# Shared backward passes (batch-query reuse)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackwardDistanceMap:
    """Reusable backward distances ``dist(·, t)`` for one ``(t, k)`` pair.

    The map holds the exact distance to ``t`` for *every* vertex within
    ``k`` hops of ``t`` (a full reverse BFS), independent of any source.
    A batch of queries sharing ``(t, k)`` therefore computes it once and
    hands it to :func:`compute_distance_index` for each member, replacing
    the per-query backward search entirely.  Treat ``distances`` as
    read-only — it is shared across queries and threads.  The map always
    owns its buffers (it is never built on pooled scratch), so retaining it
    across queries is safe.
    """

    target: Vertex
    k: int
    distances: Mapping[Vertex, int]

    def __len__(self) -> int:
        return len(self.distances)


def backward_distance_map(graph: DiGraph, target: Vertex, k: int) -> BackwardDistanceMap:
    """Compute the source-independent backward pass for ``(target, k)``."""
    graph.check_vertex(target)
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    return BackwardDistanceMap(
        target=target,
        k=k,
        distances=bounded_bfs(graph, target, k, reverse=True),
    )


# ----------------------------------------------------------------------
# Partition-parallel kernels (CSR shard slices + frontier handoff)
# ----------------------------------------------------------------------
def csr_slice_expand(
    offsets,
    targets,
    lo: int,
    frontier,
    depth: int,
    dist: List[int],
    stamp: List[int],
    epoch: int,
    out: List[Vertex],
) -> None:
    """Expand one shard's share of a BFS frontier by one hop.

    ``(offsets, targets)`` is a *rebased* CSR slice covering the vertex
    range starting at ``lo``: the neighbours of a frontier vertex ``v`` are
    ``targets[offsets[v - lo]:offsets[v - lo + 1]]``, with *global* vertex
    ids in ``targets``.  Every frontier vertex must be owned by the slice;
    discovered vertices may be owned by any shard — appending them to
    ``out`` is this shard's half of the halo handoff (the next level routes
    them to their owners).  Bookkeeping is the same epoch-stamped flat
    buffer scheme as :func:`_csr_bfs`, so the distances produced by a
    level-synchronous multi-shard drive are exactly those of a whole-graph
    BFS.
    """
    for vertex in frontier:
        local = vertex - lo
        for neighbor in targets[offsets[local]:offsets[local + 1]]:
            if stamp[neighbor] != epoch:
                stamp[neighbor] = epoch
                dist[neighbor] = depth
                out.append(neighbor)


def sharded_backward_distance_map(shard_set, target: Vertex, k: int) -> BackwardDistanceMap:
    """Backward pass computed partition-parallel over CSR shard slices.

    ``shard_set`` is a :class:`repro.graph.partition.ShardSet` (duck-typed:
    anything with ``num_vertices``, ``check_vertex`` and ``route``).  The
    reverse BFS from ``target`` runs level-synchronously: each level's
    frontier is split by owning shard (``route`` — the halo frontier
    exchange), every shard expands its bucket on its *local* reverse slice,
    and the merged discoveries form the next frontier.  Per-level shard
    order is fixed (ascending shard id), so the pass is deterministic; the
    resulting distances are identical to
    :func:`backward_distance_map` on the whole graph, because level-BFS
    distances do not depend on within-level expansion order.  The returned
    map owns its buffers (never built on pooled scratch) and is safe to
    retain across a batch group, like its whole-graph twin.
    """
    shard_set.check_vertex(target)
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    num_vertices = shard_set.num_vertices
    dist = [0] * num_vertices
    stamp = [0] * num_vertices
    epoch = 1
    stamp[target] = epoch
    touched = [target]
    frontier: List[Vertex] = [target]
    depth = 0
    while frontier and depth < k:
        depth += 1
        next_frontier: List[Vertex] = []
        for shard, bucket in shard_set.route(frontier):
            shard.expand_backward(bucket, depth, dist, stamp, epoch, next_frontier)
        touched.extend(next_frontier)
        frontier = next_frontier
    return BackwardDistanceMap(
        target=target,
        k=k,
        distances=ArrayDistanceMap(dist, stamp, epoch, touched),
    )


def _from_shared_backward(
    graph: DiGraph,
    s: Vertex,
    t: Vertex,
    k: int,
    shared: BackwardDistanceMap,
    scratch: DistanceScratch,
) -> DistanceIndex:
    """Build a :class:`DistanceIndex` from a precomputed backward pass.

    The forward search is restricted to the candidate space: a neighbour at
    depth ``d`` is kept only when ``d + dist(v, t) <= k``.  Every vertex
    admitted this way is a true candidate, and its restricted distance is
    exact because all vertices on a shortest ``s``-``v`` path of a candidate
    ``v`` are themselves candidates (the same argument as the restricted
    extension of bi-directional search), so the index satisfies the usual
    contract: exact distances on the whole candidate space.
    """
    forward = bounded_bfs(
        graph, s, k, reverse=False,
        allowed=shared.distances, allowed_budget=k,
        scratch_side=scratch.forward,
    )
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=shared.distances,
        explored_vertices=len(forward),
        strategy="shared-backward",
    )


def compute_distance_index(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    strategy: str = "adaptive",
    shared_backward: Optional[BackwardDistanceMap] = None,
    scratch: Optional[DistanceScratch] = None,
) -> DistanceIndex:
    """Compute the :class:`DistanceIndex` for a query ``<s, t, k>``.

    ``strategy`` must be one of :data:`DISTANCE_STRATEGIES`.  When
    ``shared_backward`` (a :func:`backward_distance_map` for the same target
    with hop budget ``>= k``) is given, the backward search is skipped
    entirely and only a restricted forward search runs; ``strategy`` is then
    ignored.  This is the batch-query reuse hook used by
    :class:`repro.service.SPGEngine`.

    ``scratch`` optionally supplies reusable flat buffers (see
    :class:`DistanceScratch`); the returned index then borrows those buffers
    and is only coherent until the scratch serves its next query.  Without
    ``scratch``, the index owns freshly allocated buffers.
    """
    graph.check_vertex(source)
    graph.check_vertex(target)
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    if source == target:
        raise QueryError("source and target must be distinct vertices")
    if strategy not in DISTANCE_STRATEGIES:
        raise QueryError(
            f"unknown distance strategy {strategy!r}; expected one of {DISTANCE_STRATEGIES}"
        )
    if scratch is None:
        scratch = DistanceScratch()
    if shared_backward is not None:
        if shared_backward.target != target:
            raise QueryError(
                f"shared backward pass was built for target {shared_backward.target}, "
                f"query targets {target}"
            )
        if shared_backward.k < k:
            raise QueryError(
                f"shared backward pass covers k={shared_backward.k} hops, "
                f"query needs k={k}"
            )
        return _from_shared_backward(graph, source, target, k, shared_backward, scratch)
    if strategy == "single":
        return _single_directional(graph, source, target, k, scratch)
    return _two_phase(graph, source, target, k, adaptive=(strategy == "adaptive"), scratch=scratch)
