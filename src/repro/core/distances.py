"""Bounded shortest-distance computation (Section 3.3, Figure 6(a)).

Before propagating essential vertices, EVE needs the shortest distances
``dist(s, y)`` and ``dist(y, t)`` for every vertex ``y`` that can possibly
lie on a k-hop-constrained s-t path, i.e. every ``y`` with
``dist(s, y) + dist(y, t) <= k``.  Vertices outside this *candidate space*
may be ignored (their distance is treated as infinity), which is exactly
what the forward-looking pruning rule needs.

Three strategies are implemented, matching the ablation in Figure 11:

``single``
    Two independent breadth-first searches bounded by depth ``k`` (forward
    from ``s`` on ``G``, backward from ``t`` on ``G`` reversed).
``bidirectional``
    Classic balanced bi-directional BFS: forward to depth ``ceil(k/2)``,
    backward to depth ``floor(k/2)``, then each side is extended to depth
    ``k`` restricted to vertices already discovered by the other side.
``adaptive``
    Adaptive bi-directional search: at every step the side with the smaller
    frontier advances, until the two explored depths sum to ``k``; the same
    restricted extension then completes the candidate space.

All strategies return a :class:`DistanceIndex` whose distances are *exact*
for every candidate vertex; the restricted extension is correct because any
vertex on a shortest path to a candidate vertex is itself within the other
side's explored radius (see the proof sketch in the module tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro._types import Vertex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = [
    "DistanceIndex",
    "BackwardDistanceMap",
    "compute_distance_index",
    "backward_distance_map",
    "bounded_bfs",
    "DISTANCE_STRATEGIES",
]

DISTANCE_STRATEGIES = ("single", "bidirectional", "adaptive")

_INF = float("inf")


@dataclass
class DistanceIndex:
    """Shortest distances from ``s`` and to ``t`` over the candidate space.

    Attributes
    ----------
    source, target, k:
        The query this index was built for.
    from_source:
        ``{vertex: dist(s, vertex)}`` — exact for every candidate vertex.
    to_target:
        ``{vertex: dist(vertex, t)}`` — exact for every candidate vertex.
    explored_vertices:
        Total number of vertex expansions performed (search-space size; used
        by the Figure 11 ablation report).
    strategy:
        Which strategy produced the index.
    """

    source: Vertex
    target: Vertex
    k: int
    from_source: Dict[Vertex, int] = field(default_factory=dict)
    to_target: Dict[Vertex, int] = field(default_factory=dict)
    explored_vertices: int = 0
    strategy: str = "adaptive"

    # ------------------------------------------------------------------
    def dist_from_source(self, vertex: Vertex) -> float:
        """Return ``dist(s, vertex)`` or ``inf`` if unknown/out of space."""
        return self.from_source.get(vertex, _INF)

    def dist_to_target(self, vertex: Vertex) -> float:
        """Return ``dist(vertex, t)`` or ``inf`` if unknown/out of space."""
        return self.to_target.get(vertex, _INF)

    def in_candidate_space(self, vertex: Vertex) -> bool:
        """True when ``dist(s, v) + dist(v, t) <= k``."""
        return (
            self.dist_from_source(vertex) + self.dist_to_target(vertex) <= self.k
        )

    def candidate_vertices(self) -> Set[Vertex]:
        """Return all vertices in the candidate space."""
        return {
            v
            for v, d in self.from_source.items()
            if d + self.dist_to_target(v) <= self.k
        }

    def shortest_st_distance(self) -> float:
        """Return ``dist(s, t)`` (may be ``inf`` when t is unreachable in k)."""
        return self.dist_from_source(self.target)

    def size(self) -> int:
        """Number of stored distance entries (space accounting)."""
        return len(self.from_source) + len(self.to_target)


# ----------------------------------------------------------------------
# Elementary bounded BFS
# ----------------------------------------------------------------------
def bounded_bfs(
    graph: DiGraph,
    source: Vertex,
    max_depth: int,
    reverse: bool = False,
    allowed: Optional[Dict[Vertex, int]] = None,
    allowed_budget: Optional[int] = None,
) -> Dict[Vertex, int]:
    """Breadth-first search from ``source`` bounded by ``max_depth`` hops.

    Parameters
    ----------
    reverse:
        When true, traverse in-edges instead of out-edges (used for the
        backward search from ``t``).
    allowed / allowed_budget:
        When provided, a vertex ``v`` at depth ``d`` is only expanded/kept if
        ``allowed`` knows it and ``d + allowed[v] <= allowed_budget``.  This
        implements the restricted extension phase of (adaptive)
        bi-directional search.
    """
    distances: Dict[Vertex, int] = {source: 0}
    frontier: deque = deque([source])
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        next_frontier: deque = deque()
        while frontier:
            vertex = frontier.popleft()
            neighbors = (
                graph.in_neighbors(vertex) if reverse else graph.out_neighbors(vertex)
            )
            for neighbor in neighbors:
                if neighbor in distances:
                    continue
                if allowed is not None:
                    other = allowed.get(neighbor)
                    if other is None or depth + other > (allowed_budget or 0):
                        continue
                distances[neighbor] = depth
                next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


# ----------------------------------------------------------------------
# Strategy drivers
# ----------------------------------------------------------------------
def _expand_one_level(
    graph: DiGraph,
    distances: Dict[Vertex, int],
    frontier: List[Vertex],
    depth: int,
    reverse: bool,
) -> List[Vertex]:
    """Expand ``frontier`` by one hop, recording new distances at ``depth``."""
    next_frontier: List[Vertex] = []
    for vertex in frontier:
        neighbors = (
            graph.in_neighbors(vertex) if reverse else graph.out_neighbors(vertex)
        )
        for neighbor in neighbors:
            if neighbor not in distances:
                distances[neighbor] = depth
                next_frontier.append(neighbor)
    return next_frontier


def _restricted_extension(
    graph: DiGraph,
    distances: Dict[Vertex, int],
    frontier: List[Vertex],
    start_depth: int,
    k: int,
    other_side: Dict[Vertex, int],
    reverse: bool,
) -> int:
    """Extend a partially-explored side up to depth ``k``.

    Only vertices whose distance on the *other* side is known and compatible
    with the hop budget are added; this keeps the search inside the
    candidate space while preserving exact distances for candidates.
    Returns the number of vertex expansions performed.
    """
    explored = 0
    depth = start_depth
    current = frontier
    while current and depth < k:
        depth += 1
        next_frontier: List[Vertex] = []
        for vertex in current:
            neighbors = (
                graph.in_neighbors(vertex) if reverse else graph.out_neighbors(vertex)
            )
            for neighbor in neighbors:
                if neighbor in distances:
                    continue
                other = other_side.get(neighbor)
                if other is None or depth + other > k:
                    continue
                distances[neighbor] = depth
                next_frontier.append(neighbor)
                explored += 1
        current = next_frontier
    return explored


def _single_directional(graph: DiGraph, s: Vertex, t: Vertex, k: int) -> DistanceIndex:
    forward = bounded_bfs(graph, s, k, reverse=False)
    backward = bounded_bfs(graph, t, k, reverse=True)
    index = DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=backward,
        explored_vertices=len(forward) + len(backward),
        strategy="single",
    )
    return index


def _two_phase(
    graph: DiGraph,
    s: Vertex,
    t: Vertex,
    k: int,
    adaptive: bool,
) -> DistanceIndex:
    forward: Dict[Vertex, int] = {s: 0}
    backward: Dict[Vertex, int] = {t: 0}
    forward_frontier: List[Vertex] = [s]
    backward_frontier: List[Vertex] = [t]
    forward_depth = 0
    backward_depth = 0
    explored = 2

    if adaptive:
        # Advance the smaller frontier until the two depths cover k hops.
        while forward_depth + backward_depth < k:
            forward_alive = bool(forward_frontier)
            backward_alive = bool(backward_frontier)
            if not forward_alive and not backward_alive:
                break
            advance_forward = forward_alive and (
                not backward_alive
                or len(forward_frontier) <= len(backward_frontier)
            )
            if advance_forward:
                forward_depth += 1
                forward_frontier = _expand_one_level(
                    graph, forward, forward_frontier, forward_depth, reverse=False
                )
                explored += len(forward_frontier)
            else:
                backward_depth += 1
                backward_frontier = _expand_one_level(
                    graph, backward, backward_frontier, backward_depth, reverse=True
                )
                explored += len(backward_frontier)
    else:
        forward_budget = (k + 1) // 2
        backward_budget = k - forward_budget
        while forward_depth < forward_budget and forward_frontier:
            forward_depth += 1
            forward_frontier = _expand_one_level(
                graph, forward, forward_frontier, forward_depth, reverse=False
            )
            explored += len(forward_frontier)
        while backward_depth < backward_budget and backward_frontier:
            backward_depth += 1
            backward_frontier = _expand_one_level(
                graph, backward, backward_frontier, backward_depth, reverse=True
            )
            explored += len(backward_frontier)

    # Phase 2: restricted extension so every candidate vertex gets an exact
    # distance on both sides.
    explored += _restricted_extension(
        graph, forward, forward_frontier, forward_depth, k, backward, reverse=False
    )
    explored += _restricted_extension(
        graph, backward, backward_frontier, backward_depth, k, forward, reverse=True
    )
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=backward,
        explored_vertices=explored,
        strategy="adaptive" if adaptive else "bidirectional",
    )


# ----------------------------------------------------------------------
# Shared backward passes (batch-query reuse)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackwardDistanceMap:
    """Reusable backward distances ``dist(·, t)`` for one ``(t, k)`` pair.

    The map holds the exact distance to ``t`` for *every* vertex within
    ``k`` hops of ``t`` (a full reverse BFS), independent of any source.
    A batch of queries sharing ``(t, k)`` therefore computes it once and
    hands it to :func:`compute_distance_index` for each member, replacing
    the per-query backward search entirely.  Treat ``distances`` as
    read-only — it is shared across queries and threads.
    """

    target: Vertex
    k: int
    distances: Dict[Vertex, int]

    def __len__(self) -> int:
        return len(self.distances)


def backward_distance_map(graph: DiGraph, target: Vertex, k: int) -> BackwardDistanceMap:
    """Compute the source-independent backward pass for ``(target, k)``."""
    graph.check_vertex(target)
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    return BackwardDistanceMap(
        target=target,
        k=k,
        distances=bounded_bfs(graph, target, k, reverse=True),
    )


def _from_shared_backward(
    graph: DiGraph,
    s: Vertex,
    t: Vertex,
    k: int,
    shared: BackwardDistanceMap,
) -> DistanceIndex:
    """Build a :class:`DistanceIndex` from a precomputed backward pass.

    The forward search is restricted to the candidate space: a neighbour at
    depth ``d`` is kept only when ``d + dist(v, t) <= k``.  Every vertex
    admitted this way is a true candidate, and its restricted distance is
    exact because all vertices on a shortest ``s``-``v`` path of a candidate
    ``v`` are themselves candidates (the same argument as the restricted
    extension of bi-directional search), so the index satisfies the usual
    contract: exact distances on the whole candidate space.
    """
    forward = bounded_bfs(
        graph, s, k, reverse=False, allowed=shared.distances, allowed_budget=k
    )
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=shared.distances,
        explored_vertices=len(forward),
        strategy="shared-backward",
    )


def compute_distance_index(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    strategy: str = "adaptive",
    shared_backward: Optional[BackwardDistanceMap] = None,
) -> DistanceIndex:
    """Compute the :class:`DistanceIndex` for a query ``<s, t, k>``.

    ``strategy`` must be one of :data:`DISTANCE_STRATEGIES`.  When
    ``shared_backward`` (a :func:`backward_distance_map` for the same target
    with hop budget ``>= k``) is given, the backward search is skipped
    entirely and only a restricted forward search runs; ``strategy`` is then
    ignored.  This is the batch-query reuse hook used by
    :class:`repro.service.SPGEngine`.
    """
    graph.check_vertex(source)
    graph.check_vertex(target)
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    if source == target:
        raise QueryError("source and target must be distinct vertices")
    if strategy not in DISTANCE_STRATEGIES:
        raise QueryError(
            f"unknown distance strategy {strategy!r}; expected one of {DISTANCE_STRATEGIES}"
        )
    if shared_backward is not None:
        if shared_backward.target != target:
            raise QueryError(
                f"shared backward pass was built for target {shared_backward.target}, "
                f"query targets {target}"
            )
        if shared_backward.k < k:
            raise QueryError(
                f"shared backward pass covers k={shared_backward.k} hops, "
                f"query needs k={k}"
            )
        return _from_shared_backward(graph, source, target, k, shared_backward)
    if strategy == "single":
        return _single_directional(graph, source, target, k)
    return _two_phase(graph, source, target, k, adaptive=(strategy == "adaptive"))
