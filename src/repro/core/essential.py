"""Essential-vertex computation (Section 3) on flat CSR buffers.

Essential vertices ``EV*_l(s, u)`` are the vertices shared by *all* simple
paths from ``s`` to ``u`` of length at most ``l`` that avoid ``t``
(Definition 3.1).  Theorem 3.5 shows that intersecting over *all* paths
(not only simple ones) yields the same sets, which enables the propagating
computation of Algorithm 1: essential vertices flow level by level along
edges, with set intersection at every merge.

Execution backend
-----------------
Like the distance kernels of :mod:`repro.core.distances`, propagation now
runs on the cached flat-array adjacency of
:meth:`repro.graph.digraph.DiGraph.csr` / ``csr_reverse()`` instead of
list-of-list neighbour walks, and all per-vertex bookkeeping lives in flat
arrays indexed by CSR vertex id instead of dicts:

* **EV sets are sorted int tuples.**  An ``EV*_l`` set has at most ``l + 1``
  elements (it is a subset of any single path of length ``<= l``), so each
  stored set is a small sorted array of vertex ids.  Sorted storage makes
  set equality a tuple compare and gives the labelling phase a canonical
  order to build its intersection bitsets from (see
  :mod:`repro.core.labeling`).
* **Per-vertex entries in flat lists.**  ``levels[v]`` / ``sets[v]`` are
  lists indexed by vertex id (the paper's "only store the first one"
  sparse-per-level scheme, without the dict around it).
* **Epoch-stamped level merges.**  The per-level ``updates`` dict of the
  reference implementation is replaced by an epoch-stamped working-set
  array: a vertex's in-flight set for the current level is valid iff
  ``work_stamp[v] == work_epoch``, so starting a new level is one integer
  increment and no per-level dict is ever built.
* **Reusable scratch.**  All of the above lives in an
  :class:`EssentialScratch` that callers (notably the
  :class:`repro.service.SPGEngine` scratch pool, via
  :class:`repro.core.eve.QueryScratch`) reuse across queries for zero
  per-query propagation allocation; when no scratch is passed, a private
  one is created per call.  Between queries only the entries of the
  previous query are cleared (O(previously reached)), never the whole
  buffer.

The previous dict/frozenset implementation is retained verbatim in
:mod:`repro.core.essential_reference` as the property-test oracle and
benchmark baseline; the differential harness in
``tests/test_flat_propagation.py`` holds the two answer-identical on
randomized graphs across ``k``, prune settings and distance strategies.

Algorithmic notes (shared with the reference implementation)
------------------------------------------------------------
* **Inheritance fix.**  Algorithm 1 as printed intersects the level-``l``
  set of a vertex only with contributions arriving from the current
  frontier.  When a vertex already holds a level-``(l-1)`` set and receives
  a new contribution at level ``l``, the new set must also be intersected
  with the inherited value, otherwise essential vertices learned through an
  earlier (shorter) path are lost and edges can be misclassified.  The
  incremental recurrence implemented here is::

      EV_l(s, y) = EV_{l-1}(s, y)  ∩  ⋂_{x ∈ frontier ∩ In(y)} (EV_{l-1}(s, x) ∪ {y})

  which equals Equation (4) because the contribution of every in-neighbour
  that did not change at level ``l-1`` is already folded into
  ``EV_{l-1}(s, y)`` (see the property tests for an executable proof).
* **Delta frontiers.**  A vertex joins the next frontier only when its set
  changed (or it was newly reached); unchanged vertices cannot affect any
  downstream set, which keeps the propagation close to ``O(k^2 |E|)``.
* **Forward-looking pruning (Theorem 3.6).**  With ``prune=True`` a vertex
  ``y`` is only expanded at level ``l`` when ``l + dist(y, t) <= k``; such
  sets can never help Theorem 3.4 conclude anything, and — because once the
  inequality fails it fails for all larger ``l`` — skipping them can never
  corrupt a set that *is* needed.  The distance test reads the
  :class:`~repro.core.distances.ArrayDistanceMap` buffers directly (one
  stamp compare + one array read per neighbour) instead of a method call.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro._types import Vertex
from repro.core.distances import ArrayDistanceMap, DistanceIndex
from repro.core.space import SpaceMeter
from repro.graph.digraph import DiGraph

__all__ = [
    "EssentialScratch",
    "EssentialVertexIndex",
    "propagate_forward",
    "propagate_backward",
]


class _EssentialSide:
    """Reusable flat buffers for one propagation direction.

    ``levels[v]`` / ``sets[v]`` hold the recorded ``(level, sorted tuple)``
    entries of vertex ``v``; an entry list belongs to the *current* query
    iff ``entry_stamp[v] == entry_epoch``, so invalidating a whole query is
    one integer increment (stale lists are lazily cleared on a vertex's
    first record of the next query, never in bulk).  ``touched`` lists the
    current query's vertices in first-recorded order.  ``work`` /
    ``work_stamp`` / ``work_epoch`` implement the same epoch scheme for the
    per-level merge sets.
    """

    __slots__ = (
        "levels",
        "sets",
        "touched",
        "entry_stamp",
        "entry_epoch",
        "work",
        "work_stamp",
        "work_epoch",
    )

    def __init__(self) -> None:
        self.levels: List[List[int]] = []
        self.sets: List[List[Tuple[Vertex, ...]]] = []
        self.touched: List[Vertex] = []
        self.entry_stamp: List[int] = []
        self.entry_epoch = 0
        self.work: List[Optional[Set[Vertex]]] = []
        self.work_stamp: List[int] = []
        self.work_epoch = 0

    def begin(self, num_vertices: int) -> None:
        """Start a new propagation: invalidate the previous query, grow to fit.

        Invalidation is the epoch bump; growth (first use, or a larger
        graph) extends the arrays in place, so steady-state reuse allocates
        nothing.
        """
        self.touched.clear()
        self.entry_epoch += 1
        grow = num_vertices - len(self.levels)
        if grow > 0:
            for _ in range(grow):
                self.levels.append([])
                self.sets.append([])
            self.entry_stamp.extend([0] * grow)
            self.work.extend([None] * grow)
            self.work_stamp.extend([0] * grow)


class EssentialScratch:
    """Reusable flat buffers for one in-flight propagation pair.

    Holds a forward and a backward :class:`_EssentialSide` (one EVE query
    propagates in both directions).  Like
    :class:`~repro.core.distances.DistanceScratch`, a scratch must serve at
    most one query at a time but may be reused for any number of
    *successive* queries — even across graphs of different sizes (buffers
    grow on demand) — without allocating.  Indexes built on a scratch are
    only coherent until the scratch serves its next query.
    """

    __slots__ = ("forward", "backward")

    def __init__(self) -> None:
        self.forward = _EssentialSide()
        self.backward = _EssentialSide()

    @property
    def capacity(self) -> int:
        """Number of vertices the buffers currently cover without growing."""
        return len(self.forward.levels)


class EssentialVertexIndex:
    """Essential-vertex sets for one direction (from ``s`` or to ``t``).

    The index maps a vertex and a level ``l`` to ``EV*_l`` for that vertex,
    or ``None`` when the set *does not exist* (no simple path of length
    ``<= l`` avoiding the excluded endpoint reaches the vertex).

    Storage is borrowed from an :class:`_EssentialSide`: ``_levels[v]`` is
    the sorted list of recorded levels of vertex ``v`` and ``_sets[v]`` the
    parallel list of sorted int tuples, valid only while
    ``_stamp[v] == _epoch`` (stale entries of an earlier query on the same
    scratch are lazily cleared, not eagerly wiped).  :meth:`get` /
    :meth:`latest` return frozensets for API compatibility with the
    retained reference implementation (and set-algebra-friendly test
    assertions); the hot labelling path reads the raw tuples through the
    underscore fields instead.
    """

    __slots__ = (
        "anchor",
        "excluded",
        "k",
        "direction",
        "_levels",
        "_sets",
        "_touched",
        "_stamp",
        "_epoch",
        "_n",
    )

    def __init__(
        self,
        anchor: Vertex,
        excluded: Vertex,
        k: int,
        direction: str,
        side: "_EssentialSide",
        num_vertices: int,
    ) -> None:
        self.anchor = anchor
        self.excluded = excluded
        self.k = k
        self.direction = direction
        self._levels = side.levels
        self._sets = side.sets
        self._touched = side.touched
        self._stamp = side.entry_stamp
        self._epoch = side.entry_epoch
        self._n = num_vertices

    # ------------------------------------------------------------------
    def get(self, vertex: Vertex, level: int) -> Optional[FrozenSet[Vertex]]:
        """Return ``EV*_level`` for ``vertex`` or ``None`` if it does not exist."""
        if not 0 <= vertex < self._n or self._stamp[vertex] != self._epoch:
            return None
        levels = self._levels[vertex]
        if not levels or levels[0] > level:
            return None
        return frozenset(self._sets[vertex][bisect_right(levels, level) - 1])

    def latest(self, vertex: Vertex) -> Optional[FrozenSet[Vertex]]:
        """Return the most recently stored set for ``vertex`` (any level)."""
        if not 0 <= vertex < self._n or self._stamp[vertex] != self._epoch:
            return None
        sets = self._sets[vertex]
        if not sets:
            return None
        return frozenset(sets[-1])

    def exists(self, vertex: Vertex, level: int) -> bool:
        """True when ``EV*_level`` exists for ``vertex`` (no allocation)."""
        if not 0 <= vertex < self._n or self._stamp[vertex] != self._epoch:
            return False
        levels = self._levels[vertex]
        return bool(levels) and levels[0] <= level

    def first_level(self, vertex: Vertex) -> Optional[int]:
        """Smallest level at which the vertex was reached (its distance)."""
        if not 0 <= vertex < self._n or self._stamp[vertex] != self._epoch:
            return None
        levels = self._levels[vertex]
        if not levels:
            return None
        return levels[0]

    def reached_vertices(self) -> Sequence[Vertex]:
        """Vertices with at least one stored set (first-reached order)."""
        return list(self._touched)

    # ------------------------------------------------------------------
    def stored_entries(self) -> int:
        """Number of ``(vertex, level)`` entries stored (space accounting)."""
        levels = self._levels
        return sum(len(levels[vertex]) for vertex in self._touched)

    def stored_items(self) -> int:
        """Total number of vertex ids stored across all sets."""
        sets = self._sets
        return sum(len(s) for vertex in self._touched for s in sets[vertex])

    def span_attributes(self) -> Dict[str, object]:
        """Trace attributes describing this index (propagation-phase spans).

        ``reached`` is O(1); ``entries`` walks the touched list once —
        cheap relative to the propagation that produced it.
        """
        return {
            f"{self.direction}_reached": len(self._touched),
            f"{self.direction}_entries": self.stored_entries(),
        }

    def __repr__(self) -> str:
        return (
            f"EssentialVertexIndex(direction={self.direction!r}, anchor={self.anchor}, "
            f"vertices={len(self._touched)}, entries={self.stored_entries()})"
        )


def _propagate(
    graph: DiGraph,
    anchor: Vertex,
    excluded: Vertex,
    k: int,
    reverse: bool,
    direction: str,
    distance_to_other: Optional[Mapping[Vertex, int]],
    prune: bool,
    space: Optional[SpaceMeter],
    side: Optional[_EssentialSide],
) -> EssentialVertexIndex:
    """Shared propagation loop for both directions (CSR flat-buffer kernel).

    ``reverse=False`` walks the forward CSR (propagation from ``s``);
    ``reverse=True`` walks the reverse CSR (propagation from ``t``).
    ``distance_to_other`` holds the pruning distances: ``dist(y, t)`` for the
    forward pass and ``dist(s, y)`` for the backward pass.  ``side``
    supplies reusable buffers; a private one is created when omitted.
    """
    offsets, targets = graph.csr_reverse() if reverse else graph.csr()
    num_vertices = graph.num_vertices
    if side is None:
        side = _EssentialSide()
    side.begin(num_vertices)
    levels = side.levels
    sets = side.sets
    touched = side.touched
    entry_stamp = side.entry_stamp
    entry_epoch = side.entry_epoch

    # begin() just bumped entry_epoch, so the anchor's slot is always stale
    # here: stamp it and drop whatever an earlier query left behind.
    anchor_levels = levels[anchor]
    entry_stamp[anchor] = entry_epoch
    anchor_levels.clear()
    sets[anchor].clear()
    anchor_levels.append(0)
    sets[anchor].append((anchor,))
    touched.append(anchor)
    index = EssentialVertexIndex(anchor, excluded, k, direction, side, num_vertices)

    # Pruning access: raw buffer reads for array-backed maps, ``.get`` for
    # anything else (e.g. the reference implementation's plain dicts).
    array_pruning = False
    distance_get = None
    if prune and distance_to_other is not None:
        if isinstance(distance_to_other, ArrayDistanceMap):
            array_pruning = True
            other_dist = distance_to_other.dist
            other_stamp = distance_to_other.stamp
            other_epoch = distance_to_other.epoch
        else:
            distance_get = distance_to_other.get

    work = side.work
    work_stamp = side.work_stamp
    category = f"ev-{direction}"
    frontier: List[Vertex] = [anchor]
    for level in range(1, k):
        side.work_epoch += 1
        epoch = side.work_epoch
        updated: List[Vertex] = []
        for x in frontier:
            base = sets[x][-1]
            for y in targets[offsets[x]:offsets[x + 1]]:
                if y == anchor or y == excluded:
                    continue
                if array_pruning:
                    if other_stamp[y] != other_epoch or level + other_dist[y] > k:
                        continue
                elif distance_get is not None:
                    other = distance_get(y)
                    if other is None or level + other > k:
                        continue
                if work_stamp[y] != epoch:
                    work_stamp[y] = epoch
                    merged = work[y]
                    if merged is None:
                        merged = set(base)
                        work[y] = merged
                    else:
                        merged.clear()
                        merged.update(base)
                    merged.add(y)
                    updated.append(y)
                else:
                    merged = work[y]
                    merged.intersection_update(base)
                    merged.add(y)
        if not updated:
            break
        next_frontier: List[Vertex] = []
        for y in updated:
            merged = work[y]
            entry_levels = levels[y]
            if entry_stamp[y] != entry_epoch:
                # First record for y this query: lazily drop entries left
                # over from an earlier query on the same scratch.
                entry_stamp[y] = entry_epoch
                if entry_levels:
                    entry_levels.clear()
                    sets[y].clear()
            if entry_levels:
                previous = sets[y][-1]
                merged.intersection_update(previous)
                merged.add(y)
                # ``merged`` ⊆ ``previous`` here (every stored set of ``y``
                # contains ``y``), so equal sizes means equal sets — and an
                # unchanged set cannot affect anything downstream.
                if len(merged) == len(previous):
                    continue
            else:
                touched.append(y)
            frozen = tuple(sorted(merged))
            entry_levels.append(level)
            sets[y].append(frozen)
            next_frontier.append(y)
            if space is not None:
                space.allocate(len(frozen), category=category)
        frontier = next_frontier
        if not frontier:
            break
    return index


def propagate_forward(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    distances: Optional[DistanceIndex] = None,
    prune: bool = True,
    space: Optional[SpaceMeter] = None,
    scratch: Optional[EssentialScratch] = None,
) -> EssentialVertexIndex:
    """Forward propagation of ``EV*_l(s, ·)`` for ``1 <= l < k`` (Algorithm 1).

    ``scratch`` optionally supplies reusable flat buffers (see
    :class:`EssentialScratch`); the returned index then borrows those
    buffers and is only coherent until the scratch serves its next query.
    """
    distance_to_target = distances.to_target if distances is not None else None
    return _propagate(
        graph,
        anchor=source,
        excluded=target,
        k=k,
        reverse=False,
        direction="forward",
        distance_to_other=distance_to_target,
        prune=prune,
        space=space,
        side=scratch.forward if scratch is not None else None,
    )


def propagate_backward(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    distances: Optional[DistanceIndex] = None,
    prune: bool = True,
    space: Optional[SpaceMeter] = None,
    scratch: Optional[EssentialScratch] = None,
) -> EssentialVertexIndex:
    """Backward propagation of ``EV*_l(·, t)`` on the reverse CSR view."""
    distance_from_source = distances.from_source if distances is not None else None
    return _propagate(
        graph,
        anchor=target,
        excluded=source,
        k=k,
        reverse=True,
        direction="backward",
        distance_to_other=distance_from_source,
        prune=prune,
        space=space,
        side=scratch.backward if scratch is not None else None,
    )
