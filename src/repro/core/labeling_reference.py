"""Retained reference implementation of Algorithm 2 (edge labelling).

This module preserves the original per-edge ``label_edge`` driver loop of
:mod:`repro.core.labeling` exactly as it was before labelling moved to the
fused single-pass CSR kernel, and pairs with
:mod:`repro.core.essential_reference` the same way
:mod:`repro.core.distances_reference` pairs with the CSR distance kernel:
it is the property-test oracle and the benchmark baseline for the flat
path.  The only deliberate deviation from the historical code is the
deterministic boundary truncation of :func:`collect_boundaries` (a bug
fix shared with the flat path — see that function).  Do not use this
module on hot paths.

Background: every edge in the candidate space
(``dist(s, u) + 1 + dist(v, t) <= k``) is assigned one of three labels by
Algorithm 2:

* ``FAILING`` — Theorem 3.4 proves no k-hop-constrained s-t simple path can
  use the edge;
* ``DEFINITE`` — Lemmas 4.4/4.6 prove the edge is in ``SPG_k(s, t)``
  (edges within two hops of ``s`` or ``t`` in the upper-bound graph);
* ``UNDETERMINED`` — the essential-vertex test is inconclusive; the edge
  belongs to the upper-bound graph and is handed to the verification phase.

The boundary collection (Definitions 5.1-5.4) is shared with the flat path:
:func:`compute_upper_bound` delegates to
:func:`repro.core.labeling.collect_boundaries`, whose truncation is purely
a function of the upper-bound *edge set* — so both paths produce identical
departures/arrivals by construction.
"""

from __future__ import annotations

from repro._types import Vertex
from repro.core.distances import DistanceIndex
from repro.core.essential_reference import EssentialVertexIndex
from repro.core.labeling import UpperBoundGraph, collect_boundaries
from repro.core.result import EdgeLabel
from repro.core.space import SpaceMeter
from repro.graph.digraph import DiGraph

__all__ = ["label_edge", "compute_upper_bound"]


def label_edge(
    u: Vertex,
    v: Vertex,
    source: Vertex,
    target: Vertex,
    k: int,
    forward: EssentialVertexIndex,
    backward: EssentialVertexIndex,
) -> EdgeLabel:
    """Label a single edge ``e(u, v)`` (Algorithm 2).

    ``forward`` holds ``EV*_l(s, ·)`` and ``backward`` holds ``EV*_l(·, t)``.
    """
    # Lines 1-2: first-hop edges from s / last-hop edges into t (Lemma 4.4).
    if u == source and backward.exists(v, k - 1):
        return EdgeLabel.DEFINITE
    if v == target and forward.exists(u, k - 1):
        return EdgeLabel.DEFINITE

    # Lines 3-4: second-hop edges (Lemma 4.6) — definite when the one-hop
    # prefix/suffix exists and the far endpoint avoids the near one.
    ev_su_1 = forward.get(u, 1)
    ev_vt_k2 = backward.get(v, k - 2)
    if ev_su_1 is not None and ev_vt_k2 is not None and u not in ev_vt_k2:
        return EdgeLabel.DEFINITE
    ev_vt_1 = backward.get(v, 1)
    ev_su_k2 = forward.get(u, k - 2)
    if ev_vt_1 is not None and ev_su_k2 is not None and v not in ev_su_k2:
        return EdgeLabel.DEFINITE

    # Lines 5-8: iterate k_f, pairing with k_b = k - k_f - 1 (Theorem 4.3
    # shows smaller k_b need not be checked separately).
    for k_forward in range(2, k - 2):
        k_backward = k - k_forward - 1
        ev_forward = forward.get(u, k_forward)
        if ev_forward is None:
            continue
        ev_backward = backward.get(v, k_backward)
        if ev_backward is None:
            continue
        if not (ev_forward & ev_backward):
            return EdgeLabel.UNDETERMINED
    return EdgeLabel.FAILING


def compute_upper_bound(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    distances: DistanceIndex,
    forward: EssentialVertexIndex,
    backward: EssentialVertexIndex,
    space: SpaceMeter | None = None,
) -> UpperBoundGraph:
    """Run Algorithm 2 over the candidate space and build ``SPGu_k(s, t)``.

    Only edges whose endpoints satisfy ``dist(s, u) + 1 + dist(v, t) <= k``
    are examined; edges outside that space cannot lie on any k-hop s-t path
    (Section 4.1) and are implicitly failing.
    """
    upper = UpperBoundGraph(source=source, target=target, k=k)
    from_source = distances.from_source
    to_target_get = distances.to_target.get
    for u, dist_su in from_source.items():
        if dist_su + 1 > k:
            continue
        for v in graph.out_neighbors(u):
            dist_vt = to_target_get(v)
            if dist_vt is None or dist_su + 1 + dist_vt > k:
                continue
            label = label_edge(u, v, source, target, k, forward, backward)
            upper.labels[(u, v)] = label
            if label is EdgeLabel.FAILING:
                continue
            if label is EdgeLabel.DEFINITE:
                upper.definite_edges.add((u, v))
            else:
                upper.undetermined_edges.add((u, v))
            upper.out_adjacency.setdefault(u, []).append(v)
            upper.in_adjacency.setdefault(v, []).append(u)
    if space is not None:
        space.allocate(len(upper.labels), category="edge-labels")
        space.allocate(upper.num_edges, category="upper-bound-graph")
    collect_boundaries(upper, space=space)
    return upper
