"""Logical space accounting shared by EVE and the baselines.

The paper reports peak resident memory per query (Figures 9 and 10(a)).
A pure-Python reproduction cannot compare RSS meaningfully (the interpreter
dwarfs algorithm state), so every algorithm in this library reports its
*retained item count* through a :class:`SpaceMeter`: the number of vertex
ids held in essential-vertex sets, partial paths, stacks, frontiers and
candidate structures at any point in time.  The meter records the peak.

This preserves the comparisons the paper makes:

* JOIN stores many partial paths -> large peak;
* PathEnum stores fewer partial paths thanks to its index -> smaller peak;
* EVE stores ``O(k^2 |V|)`` essential-vertex entries -> usually smallest,
  and its peak grows only mildly with ``k``.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SpaceMeter"]


class SpaceMeter:
    """Tracks the current and peak number of retained items.

    The meter is intentionally tiny: algorithms call :meth:`allocate` /
    :meth:`release` around the data structures they retain, optionally
    tagging allocations by category so reports can break the peak down.
    """

    def __init__(self) -> None:
        self._current = 0
        self._peak = 0
        self._by_category: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def allocate(self, amount: int, category: str = "general") -> None:
        """Record ``amount`` newly retained items."""
        if amount <= 0:
            return
        self._current += amount
        self._by_category[category] = self._by_category.get(category, 0) + amount
        if self._current > self._peak:
            self._peak = self._current

    def release(self, amount: int, category: str = "general") -> None:
        """Record ``amount`` items that are no longer retained."""
        if amount <= 0:
            return
        self._current = max(0, self._current - amount)
        if category in self._by_category:
            self._by_category[category] = max(0, self._by_category[category] - amount)

    def reset(self) -> None:
        """Forget everything (used between queries)."""
        self._current = 0
        self._peak = 0
        self._by_category.clear()

    # ------------------------------------------------------------------
    @property
    def current(self) -> int:
        """Number of items currently retained."""
        return self._current

    @property
    def peak(self) -> int:
        """Largest number of items retained at any point."""
        return self._peak

    def breakdown(self) -> Dict[str, int]:
        """Return the current per-category retained counts."""
        return dict(self._by_category)

    def __repr__(self) -> str:
        return f"SpaceMeter(current={self._current}, peak={self._peak})"
