"""Reference implementation of the verification phase (Section 5).

This is the dict-adjacency, recursive-DFS Algorithm 3 that served as
``repro.core.verification`` before the flat rewrite, retained as the
property-test oracle and benchmark baseline — exactly like
:mod:`repro.core.distances_reference`, :mod:`repro.core.essential_reference`
and :mod:`repro.core.labeling_reference` for the earlier phases.  The
differential harness in ``tests/test_flat_verification.py`` holds the flat
kernel and this module confirmed-edge-set identical on randomized graphs
across ``k``, distance strategies and every executor backend.

Two behavioural fixes are shared with the flat path rather than frozen at
the old behaviour, because they change observable counters/ordering and the
oracle must agree with the rewrite:

* ``VerificationStats.edges_confirmed`` is counted incrementally as stacks
  commit, instead of the old ``O(|undetermined|)`` post-pass recount;
* :func:`order_adjacency` precomputes one sort key per neighbour (the old
  closure keys did two dict lookups per comparison) and breaks ties on the
  vertex id, making the resulting order a pure function of the upper-bound
  graph rather than of the incoming adjacency order.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.labeling import UpperBoundGraph
from repro.core.space import SpaceMeter
from repro.core.verification import VerificationStats

__all__ = [
    "verify_undetermined_edges_reference",
    "order_adjacency_reference",
    "multi_source_bfs_reference",
]


def multi_source_bfs_reference(
    adjacency: Dict[Vertex, List[Vertex]], sources: Iterable[Vertex]
) -> Dict[Vertex, int]:
    """BFS distance from the nearest of ``sources`` over ``adjacency``.

    Equivalent to the paper's "virtual vertex r connected to all departures"
    trick: one BFS gives every vertex its distance from the closest source.
    """
    distances: Dict[Vertex, int] = {}
    queue: deque = deque()
    for source in sources:
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        depth = distances[vertex] + 1
        for neighbor in adjacency.get(vertex, ()):
            if neighbor not in distances:
                distances[neighbor] = depth
                queue.append(neighbor)
    return distances


def order_adjacency_reference(upper: UpperBoundGraph) -> None:
    """Re-order the upper-bound adjacency lists per Section 5.3 (in place).

    Out-neighbours are sorted by ascending distance to the closest arrival;
    among arrivals themselves (distance 0) larger ``|Out_A|`` comes first.
    In-neighbours are sorted by ascending distance from the closest
    departure; among departures larger ``|In_D|`` comes first.  Remaining
    ties break on the vertex id, so the order is deterministic whatever
    order the adjacency lists arrive in.
    """
    infinity = float("inf")
    # Distance *to* the closest arrival along forward edges equals a BFS from
    # all arrivals over reversed (in-)adjacency.
    to_arrival = multi_source_bfs_reference(upper.in_adjacency, upper.arrivals.keys())
    from_departure = multi_source_bfs_reference(
        upper.out_adjacency, upper.departures.keys()
    )

    arrivals = upper.arrivals
    departures = upper.departures
    out_key: Dict[Vertex, Tuple[float, int, Vertex]] = {}
    in_key: Dict[Vertex, Tuple[float, int, Vertex]] = {}
    for vertex in set(upper.out_adjacency) | set(upper.in_adjacency):
        distance = to_arrival.get(vertex, infinity)
        tie_break = -len(arrivals.get(vertex, ())) if distance == 0 else 0
        out_key[vertex] = (distance, tie_break, vertex)
        distance = from_departure.get(vertex, infinity)
        tie_break = -len(departures.get(vertex, ())) if distance == 0 else 0
        in_key[vertex] = (distance, tie_break, vertex)

    for neighbors in upper.out_adjacency.values():
        neighbors.sort(key=out_key.__getitem__)
    for neighbors in upper.in_adjacency.values():
        neighbors.sort(key=in_key.__getitem__)


def verify_undetermined_edges_reference(
    upper: UpperBoundGraph,
    space: Optional[SpaceMeter] = None,
    stats: Optional[VerificationStats] = None,
) -> Set[Edge]:
    """Run Algorithm 3 and return the exact edge set of ``SPG_k(s, t)``.

    The result always contains every definite edge; each undetermined edge
    is added exactly when a valid path per Theorem 5.6 exists.  When
    ``stats`` is given the search fills its work counters; like ``space``,
    passing ``None`` keeps the accounting entirely off the hot path.
    """
    source, target, k = upper.source, upper.target, upper.k
    confirmed: Set[Edge] = set(upper.definite_edges)
    if k < 5 or not upper.undetermined_edges:
        return confirmed

    departures = upper.departures
    arrivals = upper.arrivals
    out_adjacency = upper.out_adjacency
    in_adjacency = upper.in_adjacency
    max_internal_hops = k - 4

    stack_vertices: Set[Vertex] = set()
    stack_edges: List[Edge] = []

    def try_add_edges(departure: Vertex, arrival: Vertex) -> bool:
        """Check requirement (2) of Theorem 5.6 and commit the stack."""
        valid_in = [x for x in departures.get(departure, ()) if x not in stack_vertices]
        valid_out = [y for y in arrivals.get(arrival, ()) if y not in stack_vertices]
        if not valid_in or not valid_out:
            return False
        for x in valid_in:
            for y in valid_out:
                if x != y:
                    # Count newly confirmed edges as the stack commits, by
                    # size delta; every stack edge is an upper-bound edge and
                    # the definite ones are in ``confirmed`` from the start,
                    # so each addition is one undetermined edge settling.
                    if stats is None:
                        confirmed.update(stack_edges)
                    else:
                        before = len(confirmed)
                        confirmed.update(stack_edges)
                        stats.edges_confirmed += len(confirmed) - before
                    return True
        return False

    def backward(current: Vertex, hops: int, arrival: Vertex) -> bool:
        """Extend the path backwards from ``current`` towards a departure."""
        if current in departures and try_add_edges(current, arrival):
            return True
        if hops < max_internal_hops:
            for previous in in_adjacency.get(current, ()):
                if previous in stack_vertices:
                    continue
                if stats is not None:
                    stats.expansions += 1
                stack_vertices.add(previous)
                stack_edges.append((previous, current))
                if space is not None:
                    space.allocate(1, category="verification-stack")
                found = backward(previous, hops + 1, arrival)
                if space is not None:
                    space.release(1, category="verification-stack")
                if found:
                    return True
                stack_vertices.discard(previous)
                stack_edges.pop()
        return False

    def forward(current: Vertex, hops: int, back_anchor: Vertex) -> bool:
        """Extend the path forwards from ``current`` towards an arrival."""
        if current in arrivals and backward(back_anchor, hops, current):
            return True
        if hops < max_internal_hops:
            for nxt in out_adjacency.get(current, ()):
                if nxt in stack_vertices:
                    continue
                if stats is not None:
                    stats.expansions += 1
                stack_vertices.add(nxt)
                stack_edges.append((current, nxt))
                if space is not None:
                    space.allocate(1, category="verification-stack")
                found = forward(nxt, hops + 1, back_anchor)
                if space is not None:
                    space.release(1, category="verification-stack")
                if found:
                    return True
                stack_vertices.discard(nxt)
                stack_edges.pop()
        return False

    for edge in sorted(upper.undetermined_edges):
        if edge in confirmed:
            continue
        if stats is not None:
            stats.edges_checked += 1
        u, v = edge
        stack_vertices = {u, v, source, target}
        stack_edges = [edge]
        if space is not None:
            space.allocate(5, category="verification-stack")
        forward(v, 1, u)
        if space is not None:
            space.release(5, category="verification-stack")
    return confirmed
