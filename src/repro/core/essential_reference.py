"""Retained dict/frozenset reference implementation of Algorithm 1.

This module preserves the original per-level ``(level, frozenset)``
implementation of essential-vertex propagation exactly as it was before
:mod:`repro.core.essential` moved to the CSR/flat-buffer kernel.  Like
:mod:`repro.core.distances_reference`, it exists for two reasons:

* **Correctness oracle.**  The property tests cross-check the flat-buffer
  propagation against these functions on randomized graphs (every vertex,
  every level, prune on and off); the refactor is proven answer-identical,
  not assumed.
* **Benchmark baseline.**  ``benchmarks/bench_fig11_labeling.py`` times
  this kernel (together with :mod:`repro.core.labeling_reference`) against
  the flat path and asserts the speedup that justified the refactor.

Do not use this module on hot paths.

Background: essential vertices ``EV*_l(s, u)`` are the vertices shared by
*all* simple paths from ``s`` to ``u`` of length at most ``l`` that avoid
``t`` (Definition 3.1).  Theorem 3.5 shows that intersecting over *all*
paths (not only simple ones) yields the same sets, which enables the
propagating computation of Algorithm 1: essential vertices flow level by
level along edges, with set intersection at every merge.

Implementation notes
--------------------
* **Sparse per-level storage.**  For most vertices the set stabilises after
  a few levels, so each vertex stores a short list of ``(level, frozenset)``
  entries; a lookup for level ``l`` returns the entry with the largest level
  ``<= l`` (the paper's "only store the first one" optimisation).
* **Inheritance fix.**  Algorithm 1 as printed intersects the level-``l``
  set of a vertex only with contributions arriving from the current
  frontier.  When a vertex already holds a level-``(l-1)`` set and receives
  a new contribution at level ``l``, the new set must also be intersected
  with the inherited value, otherwise essential vertices learned through an
  earlier (shorter) path are lost and edges can be misclassified.  The
  incremental recurrence implemented here is::

      EV_l(s, y) = EV_{l-1}(s, y)  ∩  ⋂_{x ∈ frontier ∩ In(y)} (EV_{l-1}(s, x) ∪ {y})

  which equals Equation (4) because the contribution of every in-neighbour
  that did not change at level ``l-1`` is already folded into
  ``EV_{l-1}(s, y)`` (see the property tests for an executable proof).
* **Delta frontiers.**  A vertex joins the next frontier only when its set
  changed (or it was newly reached); unchanged vertices cannot affect any
  downstream set, which keeps the propagation close to ``O(k^2 |E|)``.
* **Forward-looking pruning (Theorem 3.6).**  With ``prune=True`` a vertex
  ``y`` is only expanded at level ``l`` when ``l + dist(y, t) <= k``; such
  sets can never help Theorem 3.4 conclude anything, and — because once the
  inequality fails it fails for all larger ``l`` — skipping them can never
  corrupt a set that *is* needed.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro._types import Vertex
from repro.core.distances import DistanceIndex
from repro.core.space import SpaceMeter
from repro.graph.digraph import DiGraph

__all__ = ["EssentialVertexIndex", "propagate_forward", "propagate_backward"]


class EssentialVertexIndex:
    """Essential-vertex sets for one direction (from ``s`` or to ``t``).

    The index maps a vertex and a level ``l`` to ``EV*_l`` for that vertex,
    or ``None`` when the set *does not exist* (no simple path of length
    ``<= l`` avoiding the excluded endpoint reaches the vertex).
    """

    def __init__(self, anchor: Vertex, excluded: Vertex, k: int, direction: str) -> None:
        self.anchor = anchor
        self.excluded = excluded
        self.k = k
        self.direction = direction
        # vertex -> (sorted levels, sets at those levels)
        self._levels: Dict[Vertex, List[int]] = {}
        self._sets: Dict[Vertex, List[FrozenSet[Vertex]]] = {}
        self.record(anchor, 0, frozenset((anchor,)))

    # ------------------------------------------------------------------
    def record(self, vertex: Vertex, level: int, vertices: FrozenSet[Vertex]) -> None:
        """Store ``EV_level`` for ``vertex`` (appended; levels must increase)."""
        levels = self._levels.get(vertex)
        if levels is None:
            self._levels[vertex] = [level]
            self._sets[vertex] = [vertices]
            return
        levels.append(level)
        self._sets[vertex].append(vertices)

    def get(self, vertex: Vertex, level: int) -> Optional[FrozenSet[Vertex]]:
        """Return ``EV*_level`` for ``vertex`` or ``None`` if it does not exist."""
        levels = self._levels.get(vertex)
        if not levels:
            return None
        position = bisect_right(levels, level)
        if position == 0:
            return None
        return self._sets[vertex][position - 1]

    def latest(self, vertex: Vertex) -> Optional[FrozenSet[Vertex]]:
        """Return the most recently stored set for ``vertex`` (any level)."""
        sets = self._sets.get(vertex)
        if not sets:
            return None
        return sets[-1]

    def exists(self, vertex: Vertex, level: int) -> bool:
        """True when ``EV*_level`` exists for ``vertex``."""
        return self.get(vertex, level) is not None

    def first_level(self, vertex: Vertex) -> Optional[int]:
        """Smallest level at which the vertex was reached (its distance)."""
        levels = self._levels.get(vertex)
        if not levels:
            return None
        return levels[0]

    def reached_vertices(self) -> Sequence[Vertex]:
        """Vertices with at least one stored set."""
        return list(self._levels.keys())

    # ------------------------------------------------------------------
    def stored_entries(self) -> int:
        """Number of ``(vertex, level)`` entries stored (space accounting)."""
        return sum(len(levels) for levels in self._levels.values())

    def stored_items(self) -> int:
        """Total number of vertex ids stored across all sets."""
        return sum(len(s) for sets in self._sets.values() for s in sets)

    def __repr__(self) -> str:
        return (
            f"EssentialVertexIndex(direction={self.direction!r}, anchor={self.anchor}, "
            f"vertices={len(self._levels)}, entries={self.stored_entries()})"
        )


def _propagate(
    graph: DiGraph,
    anchor: Vertex,
    excluded: Vertex,
    k: int,
    reverse: bool,
    direction: str,
    distance_to_other: Optional[Mapping[Vertex, int]],
    prune: bool,
    space: Optional[SpaceMeter],
) -> EssentialVertexIndex:
    """Shared propagation loop for both directions.

    ``reverse=False`` walks out-edges (forward propagation from ``s``);
    ``reverse=True`` walks in-edges (backward propagation from ``t``).
    ``distance_to_other`` holds the pruning distances: ``dist(y, t)`` for the
    forward pass and ``dist(s, y)`` for the backward pass.
    """
    index = EssentialVertexIndex(anchor, excluded, k, direction)
    frontier: List[Vertex] = [anchor]
    distance_get = (
        distance_to_other.get if prune and distance_to_other is not None else None
    )
    for level in range(1, k):
        updates: Dict[Vertex, set] = {}
        for x in frontier:
            base = index.latest(x)
            if base is None:  # pragma: no cover - anchor always recorded
                continue
            neighbors = graph.in_neighbors(x) if reverse else graph.out_neighbors(x)
            for y in neighbors:
                if y == anchor or y == excluded:
                    continue
                if distance_get is not None:
                    other = distance_get(y)
                    if other is None or level + other > k:
                        continue
                contribution = updates.get(y)
                if contribution is None:
                    fresh = set(base)
                    fresh.add(y)
                    updates[y] = fresh
                else:
                    contribution.intersection_update(base)
                    contribution.add(y)
        if not updates:
            break
        next_frontier: List[Vertex] = []
        for y, new_set in updates.items():
            previous = index.latest(y)
            if previous is not None:
                new_set &= previous
                new_set.add(y)
                if new_set == previous:
                    # Unchanged: downstream sets cannot change through y.
                    continue
            frozen = frozenset(new_set)
            index.record(y, level, frozen)
            next_frontier.append(y)
            if space is not None:
                space.allocate(len(frozen), category=f"ev-{direction}")
        frontier = next_frontier
        if not frontier:
            break
    return index


def propagate_forward(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    distances: Optional[DistanceIndex] = None,
    prune: bool = True,
    space: Optional[SpaceMeter] = None,
) -> EssentialVertexIndex:
    """Forward propagation of ``EV*_l(s, ·)`` for ``1 <= l < k`` (Algorithm 1)."""
    distance_to_target = distances.to_target if distances is not None else None
    return _propagate(
        graph,
        anchor=source,
        excluded=target,
        k=k,
        reverse=False,
        direction="forward",
        distance_to_other=distance_to_target,
        prune=prune,
        space=space,
    )


def propagate_backward(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    distances: Optional[DistanceIndex] = None,
    prune: bool = True,
    space: Optional[SpaceMeter] = None,
) -> EssentialVertexIndex:
    """Backward propagation of ``EV*_l(·, t)`` on the reverse graph."""
    distance_from_source = distances.from_source if distances is not None else None
    return _propagate(
        graph,
        anchor=target,
        excluded=source,
        k=k,
        reverse=True,
        direction="backward",
        distance_to_other=distance_from_source,
        prune=prune,
        space=space,
    )
