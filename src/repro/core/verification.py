"""Verification of undetermined edges (Section 5 of the paper).

For hop constraints ``k >= 5`` the upper-bound graph may contain edges whose
membership in ``SPG_k(s, t)`` is still unknown.  Theorem 5.6 reduces the
check for an undetermined edge ``e(u, v)`` to finding a simple path ``q*``
of length at most ``k - 4`` that

* passes through ``e(u, v)``,
* starts at a *departure* vertex and ends at an *arrival* vertex, and
* can be extended by a valid in-neighbour of the departure and a valid
  out-neighbour of the arrival (plus ``s`` and ``t``) without repeating a
  vertex.

Algorithm 3 searches for ``q*`` with an interleaved forward/backward DFS
restricted to the upper-bound graph.  Every edge on a successful stack is a
confirmed member of ``SPG_k``, so one successful search can settle several
undetermined edges at once.

The search-ordering strategies of Section 5.3 are implemented in
:func:`order_adjacency`: out-neighbours are visited in ascending distance to
the closest arrival (arrivals first, larger ``|Out_A|`` first) and
in-neighbours in ascending distance from the closest departure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.labeling import UpperBoundGraph
from repro.core.space import SpaceMeter

__all__ = [
    "VerificationStats",
    "verify_undetermined_edges",
    "order_adjacency",
    "multi_source_bfs",
]


@dataclass
class VerificationStats:
    """Work counters for one Algorithm 3 run (the verification phase).

    ROADMAP flags verification as the dominant phase for large ``k``; these
    counters make the bottleneck measurable per query instead of inferable
    from wall-clock alone.

    Attributes
    ----------
    edges_checked:
        Undetermined edges for which a DFS was actually launched (edges
        already confirmed by an earlier successful stack are skipped).
    edges_confirmed:
        Undetermined edges that ended up in the answer.
    expansions:
        DFS vertex expansions across both search directions — the unit of
        verification work.
    """

    edges_checked: int = 0
    edges_confirmed: int = 0
    expansions: int = 0

    def span_attributes(self) -> Dict[str, object]:
        """Trace attributes for the verification-phase span."""
        return {
            "edges_checked": self.edges_checked,
            "edges_confirmed": self.edges_confirmed,
            "expansions": self.expansions,
        }


def multi_source_bfs(
    adjacency: Dict[Vertex, List[Vertex]], sources: Iterable[Vertex]
) -> Dict[Vertex, int]:
    """BFS distance from the nearest of ``sources`` over ``adjacency``.

    Equivalent to the paper's "virtual vertex r connected to all departures"
    trick: one BFS gives every vertex its distance from the closest source.
    """
    distances: Dict[Vertex, int] = {}
    queue: deque = deque()
    for source in sources:
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        depth = distances[vertex] + 1
        for neighbor in adjacency.get(vertex, ()):
            if neighbor not in distances:
                distances[neighbor] = depth
                queue.append(neighbor)
    return distances


def order_adjacency(upper: UpperBoundGraph) -> None:
    """Re-order the upper-bound adjacency lists per Section 5.3 (in place).

    Out-neighbours are sorted by ascending distance to the closest arrival;
    among arrivals themselves (distance 0) larger ``|Out_A|`` comes first.
    In-neighbours are sorted by ascending distance from the closest
    departure; among departures larger ``|In_D|`` comes first.
    """
    infinity = float("inf")
    # Distance *to* the closest arrival along forward edges equals a BFS from
    # all arrivals over reversed (in-)adjacency.
    to_arrival = multi_source_bfs(upper.in_adjacency, upper.arrivals.keys())
    from_departure = multi_source_bfs(upper.out_adjacency, upper.departures.keys())

    def out_key(vertex: Vertex) -> Tuple[float, int]:
        distance = to_arrival.get(vertex, infinity)
        tie_break = -len(upper.arrivals.get(vertex, ())) if distance == 0 else 0
        return (distance, tie_break)

    def in_key(vertex: Vertex) -> Tuple[float, int]:
        distance = from_departure.get(vertex, infinity)
        tie_break = -len(upper.departures.get(vertex, ())) if distance == 0 else 0
        return (distance, tie_break)

    for vertex, neighbors in upper.out_adjacency.items():
        neighbors.sort(key=out_key)
    for vertex, neighbors in upper.in_adjacency.items():
        neighbors.sort(key=in_key)


def verify_undetermined_edges(
    upper: UpperBoundGraph,
    space: Optional[SpaceMeter] = None,
    stats: Optional[VerificationStats] = None,
) -> Set[Edge]:
    """Run Algorithm 3 and return the exact edge set of ``SPG_k(s, t)``.

    The result always contains every definite edge; each undetermined edge
    is added exactly when a valid path per Theorem 5.6 exists.  When
    ``stats`` is given the search fills its work counters; like ``space``,
    passing ``None`` keeps the accounting entirely off the hot path.
    """
    source, target, k = upper.source, upper.target, upper.k
    confirmed: Set[Edge] = set(upper.definite_edges)
    if k < 5 or not upper.undetermined_edges:
        return confirmed

    departures = upper.departures
    arrivals = upper.arrivals
    out_adjacency = upper.out_adjacency
    in_adjacency = upper.in_adjacency
    max_internal_hops = k - 4

    stack_vertices: Set[Vertex] = set()
    stack_edges: List[Edge] = []

    def try_add_edges(departure: Vertex, arrival: Vertex) -> bool:
        """Check requirement (2) of Theorem 5.6 and commit the stack."""
        valid_in = [x for x in departures.get(departure, ()) if x not in stack_vertices]
        valid_out = [y for y in arrivals.get(arrival, ()) if y not in stack_vertices]
        if not valid_in or not valid_out:
            return False
        for x in valid_in:
            for y in valid_out:
                if x != y:
                    confirmed.update(stack_edges)
                    return True
        return False

    def backward(current: Vertex, hops: int, arrival: Vertex) -> bool:
        """Extend the path backwards from ``current`` towards a departure."""
        if current in departures and try_add_edges(current, arrival):
            return True
        if hops < max_internal_hops:
            for previous in in_adjacency.get(current, ()):
                if previous in stack_vertices:
                    continue
                if stats is not None:
                    stats.expansions += 1
                stack_vertices.add(previous)
                stack_edges.append((previous, current))
                if space is not None:
                    space.allocate(1, category="verification-stack")
                found = backward(previous, hops + 1, arrival)
                if space is not None:
                    space.release(1, category="verification-stack")
                if found:
                    return True
                stack_vertices.discard(previous)
                stack_edges.pop()
        return False

    def forward(current: Vertex, hops: int, back_anchor: Vertex) -> bool:
        """Extend the path forwards from ``current`` towards an arrival."""
        if current in arrivals and backward(back_anchor, hops, current):
            return True
        if hops < max_internal_hops:
            for nxt in out_adjacency.get(current, ()):
                if nxt in stack_vertices:
                    continue
                if stats is not None:
                    stats.expansions += 1
                stack_vertices.add(nxt)
                stack_edges.append((current, nxt))
                if space is not None:
                    space.allocate(1, category="verification-stack")
                found = forward(nxt, hops + 1, back_anchor)
                if space is not None:
                    space.release(1, category="verification-stack")
                if found:
                    return True
                stack_vertices.discard(nxt)
                stack_edges.pop()
        return False

    for edge in sorted(upper.undetermined_edges):
        if edge in confirmed:
            continue
        if stats is not None:
            stats.edges_checked += 1
        u, v = edge
        stack_vertices = {u, v, source, target}
        stack_edges = [edge]
        if space is not None:
            space.allocate(5, category="verification-stack")
        forward(v, 1, u)
        if space is not None:
            space.release(5, category="verification-stack")
    if stats is not None:
        stats.edges_confirmed = sum(
            1 for edge in upper.undetermined_edges if edge in confirmed
        )
    return confirmed
