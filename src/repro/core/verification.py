"""Verification of undetermined edges (Section 5) on flat CSR slices.

For hop constraints ``k >= 5`` the upper-bound graph may contain edges whose
membership in ``SPG_k(s, t)`` is still unknown.  Theorem 5.6 reduces the
check for an undetermined edge ``e(u, v)`` to finding a simple path ``q*``
of length at most ``k - 4`` that

* passes through ``e(u, v)``,
* starts at a *departure* vertex and ends at an *arrival* vertex, and
* can be extended by a valid in-neighbour of the departure and a valid
  out-neighbour of the arrival (plus ``s`` and ``t``) without repeating a
  vertex.

Algorithm 3 searches for ``q*`` with an interleaved forward/backward search
restricted to the upper-bound graph.  Every edge on a successful stack is a
confirmed member of ``SPG_k``, so one successful search can settle several
undetermined edges at once.

Execution backend
-----------------
Like the distance, propagation and labelling phases before it
(:mod:`repro.core.distances`, :mod:`repro.core.essential`,
:mod:`repro.core.labeling`), the search runs on flat buffers instead of
dict adjacency and Python recursion:

* **CSR slices of the upper-bound graph.**  :func:`prepare_verification`
  materialises ``UpperBoundGraph.out_adjacency`` / ``in_adjacency`` into
  compact start/end + target arrays (forward and reverse), valid for the
  current query iff ``adj_stamp[v] == adj_epoch`` — no per-query dict
  walks inside the search.
* **Explicit frame stack.**  The recursive ``forward``/``backward``
  closures of the reference implementation are a single iteration loop
  over reusable frame arrays (mode, vertex, resume state, adjacency
  cursor), with epoch-stamped on-stack marks instead of a rebuilt
  ``set`` per edge — no per-edge set rebuilds and no recursion-limit
  exposure.
* **Precomputed-key search ordering.**  The Section 5.3 ordering
  (:meth:`PreparedVerification.apply_search_ordering`) runs a multi-source
  BFS over the flat slices and computes one sort key per vertex —
  ascending distance to the closest arrival for out-neighbours (arrivals
  first, larger ``|Out_A|`` first, vertex id as the final deterministic
  tie-break) and ascending distance from the closest departure for
  in-neighbours — then sorts each slice by those keys, instead of two
  dict lookups per comparison.
* **Reusable scratch.**  All buffers live in a :class:`VerificationScratch`
  that callers (notably the :class:`repro.service.SPGEngine` scratch pool,
  via :class:`repro.core.eve.QueryScratch`) reuse across queries for zero
  per-query verification allocation; when no scratch is passed, a private
  one is created per call.

The previous dict/recursive implementation is retained in
:mod:`repro.core.verification_reference` as the property-test oracle and
benchmark baseline; ``tests/test_flat_verification.py`` holds the two
confirmed-edge-set identical on randomized graphs across ``k``, strategies
and every executor backend.  The dict-level helpers
:func:`multi_source_bfs` and :func:`order_adjacency` remain available for
callers that order the adjacency dicts directly (the flat kernel then
inherits that order when built without its own ordering pass).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.labeling import UpperBoundGraph
from repro.core.space import SpaceMeter

__all__ = [
    "VerificationStats",
    "VerificationScratch",
    "PreparedVerification",
    "prepare_verification",
    "verify_undetermined_edges",
    "order_adjacency",
    "multi_source_bfs",
]


@dataclass
class VerificationStats:
    """Work counters for one Algorithm 3 run (the verification phase).

    ROADMAP flags verification as the dominant phase for large ``k``; these
    counters make the bottleneck measurable per query instead of inferable
    from wall-clock alone.

    Attributes
    ----------
    edges_checked:
        Undetermined edges for which a search was actually launched (edges
        already confirmed by an earlier successful stack are skipped).
    edges_confirmed:
        Undetermined edges that ended up in the answer, counted as stacks
        commit (not recounted afterwards).
    expansions:
        Vertex expansions across both search directions — the unit of
        verification work.  Counted for the search actually run: the flat
        kernel's distance-bound pruning cuts dead branches the reference
        implementation still walks, so this can be lower than the oracle's
        count at an identical confirmed set.
    """

    edges_checked: int = 0
    edges_confirmed: int = 0
    expansions: int = 0

    def span_attributes(self) -> Dict[str, object]:
        """Trace attributes for the verification-phase span."""
        return {
            "edges_checked": self.edges_checked,
            "edges_confirmed": self.edges_confirmed,
            "expansions": self.expansions,
        }


def multi_source_bfs(
    adjacency: Dict[Vertex, List[Vertex]], sources: Iterable[Vertex]
) -> Dict[Vertex, int]:
    """BFS distance from the nearest of ``sources`` over ``adjacency``.

    Equivalent to the paper's "virtual vertex r connected to all departures"
    trick: one BFS gives every vertex its distance from the closest source.
    """
    distances: Dict[Vertex, int] = {}
    queue: deque = deque()
    for source in sources:
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        depth = distances[vertex] + 1
        for neighbor in adjacency.get(vertex, ()):
            if neighbor not in distances:
                distances[neighbor] = depth
                queue.append(neighbor)
    return distances


def order_adjacency(upper: UpperBoundGraph) -> None:
    """Re-order the upper-bound adjacency lists per Section 5.3 (in place).

    Out-neighbours are sorted by ascending distance to the closest arrival;
    among arrivals themselves (distance 0) larger ``|Out_A|`` comes first.
    In-neighbours are sorted by ascending distance from the closest
    departure; among departures larger ``|In_D|`` comes first.  Remaining
    ties break on the vertex id, so the order is a pure function of the
    upper-bound graph — deterministic whatever order the adjacency lists
    arrive in.  Each neighbour's key is computed once up front, not per
    comparison.

    This is the dict-level form of the ordering; the EVE hot path applies
    the same keys to the flat slices via
    :meth:`PreparedVerification.apply_search_ordering` instead.
    """
    infinity = float("inf")
    # Distance *to* the closest arrival along forward edges equals a BFS from
    # all arrivals over reversed (in-)adjacency.
    to_arrival = multi_source_bfs(upper.in_adjacency, upper.arrivals.keys())
    from_departure = multi_source_bfs(upper.out_adjacency, upper.departures.keys())

    arrivals = upper.arrivals
    departures = upper.departures
    out_key: Dict[Vertex, Tuple[float, int, Vertex]] = {}
    in_key: Dict[Vertex, Tuple[float, int, Vertex]] = {}
    for vertex in set(upper.out_adjacency) | set(upper.in_adjacency):
        distance = to_arrival.get(vertex, infinity)
        tie_break = -len(arrivals.get(vertex, ())) if distance == 0 else 0
        out_key[vertex] = (distance, tie_break, vertex)
        distance = from_departure.get(vertex, infinity)
        tie_break = -len(departures.get(vertex, ())) if distance == 0 else 0
        in_key[vertex] = (distance, tie_break, vertex)

    for neighbors in upper.out_adjacency.values():
        neighbors.sort(key=out_key.__getitem__)
    for neighbors in upper.in_adjacency.values():
        neighbors.sort(key=in_key.__getitem__)


# Frame modes of the explicit search stack.  Root frames (the seed of each
# direction) own no pushed edge and no on-stack mark of their own, so popping
# them releases nothing; ``mode < 2`` selects the forward direction.
_FORWARD_ROOT = 0
_FORWARD = 1
_BACKWARD_ROOT = 2
_BACKWARD = 3


class VerificationScratch:
    """Reusable flat buffers for the verification phase of one query.

    Same discipline as :class:`~repro.core.distances.DistanceScratch` and
    :class:`~repro.core.essential.EssentialScratch`: every array is indexed
    by vertex id, validity is an epoch stamp (``adj_stamp[v] == adj_epoch``
    for the CSR slices, ``stack_stamp[v] == stack_epoch`` for the on-stack
    marks, one epoch bump per undetermined edge), and starting a new query
    grows the arrays in place at most once — steady-state reuse allocates
    nothing.  A scratch must not be shared by concurrent queries.
    """

    __slots__ = (
        # CSR slices of the current upper-bound graph (valid per adj_epoch).
        "adj_epoch",
        "adj_stamp",
        "touched",
        "out_start",
        "out_end",
        "in_start",
        "in_end",
        "out_targets",
        "in_targets",
        # Section 5.3 ordering: per-vertex sort keys + the two multi-source
        # BFS results (distance to the closest arrival / from the closest
        # departure), retained for search pruning.
        "out_rank",
        "in_rank",
        "bfs_epoch",
        "arr_stamp",
        "arr_dist",
        "dep_stamp",
        "dep_dist",
        "frontier",
        # Explicit search stack: on-stack marks, frames, committed-edge stack.
        "stack_epoch",
        "stack_stamp",
        "frame_mode",
        "frame_vertex",
        "frame_cursor",
        "frame_end",
        "edge_tail",
        "edge_head",
    )

    def __init__(self) -> None:
        self.adj_epoch = 0
        self.adj_stamp: List[int] = []
        self.touched: List[Vertex] = []
        self.out_start: List[int] = []
        self.out_end: List[int] = []
        self.in_start: List[int] = []
        self.in_end: List[int] = []
        self.out_targets: List[int] = []
        self.in_targets: List[int] = []
        self.out_rank: List[int] = []
        self.in_rank: List[int] = []
        self.bfs_epoch = 0
        self.arr_stamp: List[int] = []
        self.arr_dist: List[int] = []
        self.dep_stamp: List[int] = []
        self.dep_dist: List[int] = []
        self.frontier: List[int] = []
        self.stack_epoch = 0
        self.stack_stamp: List[int] = []
        self.frame_mode: List[int] = []
        self.frame_vertex: List[int] = []
        self.frame_cursor: List[int] = []
        self.frame_end: List[int] = []
        self.edge_tail: List[int] = []
        self.edge_head: List[int] = []

    @property
    def capacity(self) -> int:
        """Number of vertex slots the per-vertex buffers currently cover."""
        return len(self.adj_stamp)

    def begin(self, num_vertices: int, max_depth: int) -> None:
        """Start a new query: invalidate previous slices, grow to fit.

        Invalidation is the epoch bump; growth (first use, or a larger
        graph) extends the arrays in place, so steady-state reuse allocates
        nothing.  ``max_depth`` bounds the edge stack (``k - 4`` internal
        hops plus the checked edge), which sizes the frame arrays.
        """
        self.touched.clear()
        self.adj_epoch += 1
        grow = num_vertices - len(self.adj_stamp)
        if grow > 0:
            self.adj_stamp.extend([0] * grow)
            self.out_start.extend([0] * grow)
            self.out_end.extend([0] * grow)
            self.in_start.extend([0] * grow)
            self.in_end.extend([0] * grow)
            self.out_rank.extend([0] * grow)
            self.in_rank.extend([0] * grow)
            self.arr_stamp.extend([0] * grow)
            self.arr_dist.extend([0] * grow)
            self.dep_stamp.extend([0] * grow)
            self.dep_dist.extend([0] * grow)
            self.stack_stamp.extend([0] * grow)
        frames = 2 * max_depth + 4
        grow = frames - len(self.frame_mode)
        if grow > 0:
            self.frame_mode.extend([0] * grow)
            self.frame_vertex.extend([0] * grow)
            self.frame_cursor.extend([0] * grow)
            self.frame_end.extend([0] * grow)
        grow = (max_depth + 2) - len(self.edge_tail)
        if grow > 0:
            self.edge_tail.extend([0] * grow)
            self.edge_head.extend([0] * grow)



class PreparedVerification:
    """One query's upper-bound graph, materialised into scratch slices.

    Built by :func:`prepare_verification`; :meth:`apply_search_ordering`
    optionally sorts the slices per Section 5.3, :meth:`verify` runs the
    explicit-stack search.  The object only borrows the scratch — it is
    invalidated by the next :func:`prepare_verification` on the same
    scratch.
    """

    __slots__ = (
        "upper",
        "scratch",
        "active",
        "scanning",
        "limit",
        "arr_epoch",
        "dep_epoch",
    )

    def __init__(
        self, upper: UpperBoundGraph, scratch: VerificationScratch
    ) -> None:
        self.upper = upper
        self.scratch = scratch
        self.active = upper.k >= 5 and bool(upper.undetermined_edges)
        # With k == 5 the hop budget is one edge — the checked edge itself —
        # so the search never scans adjacency: every undetermined edge is
        # settled by the frame-free endpoint test alone, and neither the CSR
        # slices nor the Section 5.3 ordering can influence the answer.
        self.scanning = self.active and upper.k >= 6
        self.limit = 0
        # Epochs under which the to-arrival / from-departure BFS distances
        # are valid; 0 until apply_search_ordering() computes them.
        self.arr_epoch = 0
        self.dep_epoch = 0
        if self.active:
            self._materialize()

    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        """Build the forward and reverse CSR slices of the upper bound."""
        upper = self.upper
        scratch = self.scratch
        out_adjacency = upper.out_adjacency
        in_adjacency = upper.in_adjacency
        limit = max(upper.source, upper.target)
        for vertex in out_adjacency:
            if vertex > limit:
                limit = vertex
        for vertex in in_adjacency:
            if vertex > limit:
                limit = vertex
        limit += 1
        self.limit = limit
        scratch.begin(limit, max(1, upper.k - 4) + 1)
        if not self.scanning:
            # k == 5: the search reads only the on-stack marks (sized by
            # ``begin``), never the slices — skip the adjacency copy.
            return

        stamp = scratch.adj_stamp
        epoch = scratch.adj_epoch
        touched = scratch.touched
        out_start, out_end = scratch.out_start, scratch.out_end
        in_start, in_end = scratch.in_start, scratch.in_end

        # Copy each adjacency list into the flat target buffer with one
        # slice assignment (a C-level copy) instead of per-element writes.
        targets = scratch.out_targets
        capacity = len(targets)
        position = 0
        for vertex, neighbors in out_adjacency.items():
            if stamp[vertex] != epoch:
                stamp[vertex] = epoch
                touched.append(vertex)
                in_start[vertex] = in_end[vertex] = 0
            out_start[vertex] = position
            stop = position + len(neighbors)
            if stop > capacity:
                targets.extend([0] * (stop - capacity))
                capacity = stop
            targets[position:stop] = neighbors
            out_end[vertex] = stop
            position = stop

        targets = scratch.in_targets
        capacity = len(targets)
        position = 0
        for vertex, neighbors in in_adjacency.items():
            if stamp[vertex] != epoch:
                stamp[vertex] = epoch
                touched.append(vertex)
                out_start[vertex] = out_end[vertex] = 0
            in_start[vertex] = position
            stop = position + len(neighbors)
            if stop > capacity:
                targets.extend([0] * (stop - capacity))
                capacity = stop
            targets[position:stop] = neighbors
            in_end[vertex] = stop
            position = stop

    # ------------------------------------------------------------------
    def _flat_bfs(
        self,
        sources: Iterable[Vertex],
        start: List[int],
        end: List[int],
        targets: List[int],
        stamp: List[int],
        dist: List[int],
    ) -> int:
        """Multi-source BFS over one slice direction; returns the epoch used.

        Distances land in ``dist``, valid under the returned epoch of
        ``stamp``.
        """
        scratch = self.scratch
        scratch.bfs_epoch += 1
        epoch = scratch.bfs_epoch
        adj_stamp = scratch.adj_stamp
        adj_epoch = scratch.adj_epoch
        queue = scratch.frontier
        limit = self.limit
        size = 0
        for vertex in sources:
            if vertex < limit and stamp[vertex] != epoch:
                stamp[vertex] = epoch
                dist[vertex] = 0
                if size < len(queue):
                    queue[size] = vertex
                else:
                    queue.append(vertex)
                size += 1
        head = 0
        while head < size:
            vertex = queue[head]
            head += 1
            if adj_stamp[vertex] != adj_epoch:
                continue
            depth = dist[vertex] + 1
            for neighbor in targets[start[vertex] : end[vertex]]:
                if stamp[neighbor] != epoch:
                    stamp[neighbor] = epoch
                    dist[neighbor] = depth
                    if size < len(queue):
                        queue[size] = neighbor
                    else:
                        queue.append(neighbor)
                    size += 1
        return epoch

    def apply_search_ordering(self) -> None:
        """Sort the slices per Section 5.3 with one precomputed key per vertex.

        Same keys as :func:`order_adjacency` (ascending distance to the
        closest arrival / from the closest departure, boundary-set size and
        vertex id as tie-breaks), computed once per vertex from a
        multi-source BFS over the flat slices — never per comparison.
        No-op when there is nothing to verify, and likewise for ``k == 5``
        (the search never scans adjacency, so no slices were materialised
        and no ordering could matter).
        """
        if not self.scanning:
            return
        upper = self.upper
        scratch = self.scratch
        arrivals = upper.arrivals
        departures = upper.departures
        out_start, out_end = scratch.out_start, scratch.out_end
        in_start, in_end = scratch.in_start, scratch.in_end
        out_targets, in_targets = scratch.out_targets, scratch.in_targets
        infinity = self.limit + 1

        # The (distance, boundary-size tie-break, vertex) key is packed into
        # one int with the vertex id in the low bits, so slices sort as plain
        # int lists (no key callable, no tuple comparisons) and the sorted
        # keys decode back to vertex ids with a mask.  ``tie_cap`` bounds the
        # boundary-set sizes so the negated-size tie-break packs as
        # ``tie_cap - size`` without underflowing into the distance field.
        shift = self.limit.bit_length()
        vertex_mask = (1 << shift) - 1
        tie_cap = 1
        for boundary in arrivals.values():
            if len(boundary) >= tie_cap:
                tie_cap = len(boundary) + 1
        for boundary in departures.values():
            if len(boundary) >= tie_cap:
                tie_cap = len(boundary) + 1
        stride = tie_cap + 1

        out_rank, in_rank = scratch.out_rank, scratch.in_rank
        # Distance *to* the closest arrival along forward edges equals a BFS
        # from all arrivals over the reverse slices, and vice versa.  Both
        # results are retained (stamp/dist pairs + their epochs) so
        # :meth:`verify` can prune pushes that cannot commit within budget.
        stamp = scratch.arr_stamp
        dist = scratch.arr_dist
        epoch = self._flat_bfs(
            arrivals.keys(), in_start, in_end, in_targets, stamp, dist
        )
        self.arr_epoch = epoch
        for vertex in scratch.touched:
            if stamp[vertex] == epoch:
                distance = dist[vertex]
                tie_break = tie_cap - len(arrivals[vertex]) if distance == 0 else tie_cap
            else:
                distance = infinity
                tie_break = tie_cap
            out_rank[vertex] = ((distance * stride + tie_break) << shift) | vertex
        stamp = scratch.dep_stamp
        dist = scratch.dep_dist
        epoch = self._flat_bfs(
            departures.keys(), out_start, out_end, out_targets, stamp, dist
        )
        self.dep_epoch = epoch
        for vertex in scratch.touched:
            if stamp[vertex] == epoch:
                distance = dist[vertex]
                tie_break = tie_cap - len(departures[vertex]) if distance == 0 else tie_cap
            else:
                distance = infinity
                tie_break = tie_cap
            in_rank[vertex] = ((distance * stride + tie_break) << shift) | vertex

        for vertex in scratch.touched:
            begin, stop = out_start[vertex], out_end[vertex]
            if stop - begin > 1:
                segment = [out_rank[t] for t in out_targets[begin:stop]]
                segment.sort()
                out_targets[begin:stop] = [key & vertex_mask for key in segment]
            begin, stop = in_start[vertex], in_end[vertex]
            if stop - begin > 1:
                segment = [in_rank[t] for t in in_targets[begin:stop]]
                segment.sort()
                in_targets[begin:stop] = [key & vertex_mask for key in segment]

    # ------------------------------------------------------------------
    def verify(
        self,
        space: Optional[SpaceMeter] = None,
        stats: Optional[VerificationStats] = None,
    ) -> Set[Edge]:
        """Run the explicit-stack Algorithm 3 search over the slices.

        Answer-identical to
        :func:`repro.core.verification_reference.verify_undetermined_edges_reference`:
        the result always contains every definite edge, and each
        undetermined edge is added exactly when a valid path per
        Theorem 5.6 exists.  When ``stats`` is given the search fills its
        work counters; like ``space``, passing ``None`` keeps the
        accounting entirely off the hot path.
        """
        upper = self.upper
        confirmed: Set[Edge] = set(upper.definite_edges)
        if not self.active:
            return confirmed

        scratch = self.scratch
        source, target = upper.source, upper.target
        departures_get = upper.departures.get
        arrivals_get = upper.arrivals.get
        max_hops = upper.k - 4
        can_scan = max_hops > 1
        limit = self.limit
        out_start, out_end = scratch.out_start, scratch.out_end
        in_start, in_end = scratch.in_start, scratch.in_end
        out_targets, in_targets = scratch.out_targets, scratch.in_targets
        mark = scratch.stack_stamp
        f_mode = scratch.frame_mode
        f_vertex = scratch.frame_vertex
        f_cursor = scratch.frame_cursor
        f_end = scratch.frame_end
        e_tail = scratch.edge_tail
        e_head = scratch.edge_head

        # Distance-bound pruning, available once apply_search_ordering() has
        # run its two BFS passes: a push (or a whole edge) whose BFS
        # lower-bound distances already exceed the remaining hop budget
        # cannot be part of any committing stack, so skipping it cannot
        # change the confirmed set — every committing stack is found
        # unchanged, only dead branches are cut.
        arr_epoch = self.arr_epoch
        dep_epoch = self.dep_epoch
        pruned = arr_epoch > 0
        arr_stamp, arr_dist = scratch.arr_stamp, scratch.arr_dist
        dep_stamp, dep_dist = scratch.dep_stamp, scratch.dep_dist
        forward_budget = max_hops

        stack_epoch = scratch.stack_epoch
        for checked in sorted(upper.undetermined_edges):
            if checked in confirmed:
                continue
            if stats is not None:
                stats.edges_checked += 1
            u, v = checked
            if pruned:
                if (
                    arr_stamp[v] != arr_epoch
                    or dep_stamp[u] != dep_epoch
                    or arr_dist[v] + dep_dist[u] >= max_hops
                ):
                    # The checked edge plus the shortest possible forward and
                    # backward completions already blow the budget: the
                    # search must fail, skip it outright.
                    if space is not None:
                        space.allocate(5, category="verification-stack")
                        space.release(5, category="verification-stack")
                    continue
                forward_budget = max_hops - dep_dist[u]
            stack_epoch += 1
            epoch = stack_epoch
            mark[u] = epoch
            mark[v] = epoch
            mark[source] = epoch
            mark[target] = epoch
            if space is not None:
                space.allocate(5, category="verification-stack")
            success = False
            u_departures = departures_get(u)
            arrival_list = arrivals_get(v)
            if arrival_list is not None:
                # Fast path: the checked edge alone is a candidate q* (v is
                # an arrival).  Run the Theorem 5.6 endpoint test for u
                # inline; most searches commit right here, without touching
                # the frame machinery at all.
                if u_departures is not None:
                    first_in = -1
                    seen_in = 0
                    for x in u_departures:
                        if x >= limit or mark[x] != epoch:
                            seen_in += 1
                            if seen_in == 1:
                                first_in = x
                            else:
                                break
                    if seen_in:
                        for y in arrival_list:
                            if (y >= limit or mark[y] != epoch) and (
                                seen_in > 1 or y != first_in
                            ):
                                success = True
                                break
                if success:
                    confirmed.add(checked)
                    if stats is not None:
                        stats.edges_confirmed += 1
                    if space is not None:
                        space.release(5, category="verification-stack")
                    continue
                if not can_scan:
                    if space is not None:
                        space.release(5, category="verification-stack")
                    continue
                # Both root boundary checks are done: suspend the forward
                # root (it resumes scanning v's out-slice if the backward
                # chain comes back empty) and activate the backward root.
                f_mode[0] = _FORWARD_ROOT
                f_vertex[0] = v
                f_cursor[0] = out_start[v]
                f_end[0] = out_end[v]
                top = 1
                mode = _BACKWARD_ROOT
                current = u
                cursor = in_start[u]
                stop = in_end[u]
            else:
                if not can_scan:
                    if space is not None:
                        space.release(5, category="verification-stack")
                    continue
                top = 0
                mode = _FORWARD_ROOT
                current = v
                cursor = out_start[v]
                stop = out_end[v]
            e_tail[0] = u
            e_head[0] = v
            depth = 1
            # The active frame lives in locals (mode/current/cursor/stop);
            # the arrays only hold suspended frames, written on push and
            # read back on pop.  Boundary checks run once, at vertex entry.
            while True:
                neighbor = -1
                if pruned:
                    if mode < 2:
                        targets = out_targets
                        p_stamp, p_dist = arr_stamp, arr_dist
                        p_epoch = arr_epoch
                        p_budget = forward_budget
                    else:
                        targets = in_targets
                        p_stamp, p_dist = dep_stamp, dep_dist
                        p_epoch = dep_epoch
                        p_budget = max_hops
                    while cursor < stop:
                        candidate = targets[cursor]
                        cursor += 1
                        if (
                            mark[candidate] == epoch
                            or p_stamp[candidate] != p_epoch
                            or p_dist[candidate] + depth >= p_budget
                        ):
                            continue
                        neighbor = candidate
                        break
                else:
                    targets = out_targets if mode < 2 else in_targets
                    while cursor < stop:
                        candidate = targets[cursor]
                        cursor += 1
                        if mark[candidate] != epoch:
                            neighbor = candidate
                            break
                if neighbor >= 0:
                    if stats is not None:
                        stats.expansions += 1
                    mark[neighbor] = epoch
                    if space is not None:
                        space.allocate(1, category="verification-stack")
                    f_mode[top] = mode
                    f_vertex[top] = current
                    f_cursor[top] = cursor
                    f_end[top] = stop
                    top += 1
                    if mode < 2:
                        e_tail[depth] = current
                        e_head[depth] = neighbor
                        depth += 1
                        current = neighbor
                        # Forward entry: on an arrival, re-test the endpoint
                        # condition at u, then suspend this frame and chain
                        # backwards from u at the same hop count.
                        arr_list = arrivals_get(current)
                        if arr_list is not None:
                            arrival_list = arr_list
                            if u_departures is not None:
                                first_in = -1
                                seen_in = 0
                                for x in u_departures:
                                    if x >= limit or mark[x] != epoch:
                                        seen_in += 1
                                        if seen_in == 1:
                                            first_in = x
                                        else:
                                            break
                                if seen_in:
                                    for y in arr_list:
                                        if (y >= limit or mark[y] != epoch) and (
                                            seen_in > 1 or y != first_in
                                        ):
                                            success = True
                                            break
                                    if success:
                                        break
                            f_mode[top] = _FORWARD
                            f_vertex[top] = current
                            if depth < max_hops:
                                f_cursor[top] = out_start[current]
                                f_end[top] = out_end[current]
                                cursor = in_start[u]
                                stop = in_end[u]
                            else:
                                f_cursor[top] = 0
                                f_end[top] = 0
                                cursor = stop = 0
                            top += 1
                            mode = _BACKWARD_ROOT
                            current = u
                        else:
                            mode = _FORWARD
                            if depth < max_hops:
                                cursor = out_start[current]
                                stop = out_end[current]
                            else:
                                cursor = stop = 0
                    else:
                        e_tail[depth] = neighbor
                        e_head[depth] = current
                        depth += 1
                        current = neighbor
                        # Backward entry: on a departure, run the endpoint
                        # test against the arrival that spawned this chain.
                        dep_list = departures_get(current)
                        if dep_list is not None:
                            first_in = -1
                            seen_in = 0
                            for x in dep_list:
                                if x >= limit or mark[x] != epoch:
                                    seen_in += 1
                                    if seen_in == 1:
                                        first_in = x
                                    else:
                                        break
                            if seen_in:
                                for y in arrival_list:
                                    if (y >= limit or mark[y] != epoch) and (
                                        seen_in > 1 or y != first_in
                                    ):
                                        success = True
                                        break
                                if success:
                                    break
                        mode = _BACKWARD
                        if depth < max_hops:
                            cursor = in_start[current]
                            stop = in_end[current]
                        else:
                            cursor = stop = 0
                    continue
                # Slice exhausted: pop.  Non-root frames own one pushed edge
                # and one on-stack mark; root frames own neither.
                if mode == _FORWARD or mode == _BACKWARD:
                    mark[current] = 0
                    depth -= 1
                    if space is not None:
                        space.release(1, category="verification-stack")
                if top == 0:
                    break
                top -= 1
                mode = f_mode[top]
                current = f_vertex[top]
                cursor = f_cursor[top]
                stop = f_end[top]
            if success:
                # Commit the stack: bulk-add the edges and count the newly
                # settled ones by the size delta (definite edges are in
                # ``confirmed`` from the start, so every addition is one
                # undetermined edge settling).
                before = len(confirmed)
                confirmed.update(zip(e_tail[:depth], e_head[:depth]))
                if stats is not None:
                    stats.edges_confirmed += len(confirmed) - before
                if space is not None and depth > 1:
                    space.release(depth - 1, category="verification-stack")
            if space is not None:
                space.release(5, category="verification-stack")
        scratch.stack_epoch = stack_epoch
        return confirmed


def prepare_verification(
    upper: UpperBoundGraph, scratch: Optional[VerificationScratch] = None
) -> PreparedVerification:
    """Materialise ``upper`` into flat slices, ready to order and verify.

    With ``k < 5`` or no undetermined edges the prepared object is trivial
    (nothing is materialised; :meth:`PreparedVerification.verify` returns
    the definite edges).  Passing a pooled ``scratch`` makes preparation
    allocation-free in steady state.
    """
    if scratch is None:
        scratch = VerificationScratch()
    return PreparedVerification(upper, scratch)


def verify_undetermined_edges(
    upper: UpperBoundGraph,
    space: Optional[SpaceMeter] = None,
    stats: Optional[VerificationStats] = None,
    scratch: Optional[VerificationScratch] = None,
    search_ordering: bool = False,
) -> Set[Edge]:
    """Run Algorithm 3 and return the exact edge set of ``SPG_k(s, t)``.

    Convenience wrapper over :func:`prepare_verification` +
    :meth:`PreparedVerification.verify` for callers outside the phase-timed
    EVE pipeline (tests, benchmarks, the differential harness).
    ``search_ordering`` additionally applies the Section 5.3 slice ordering
    before searching; the answer is identical either way.
    """
    prepared = prepare_verification(upper, scratch=scratch)
    if search_ordering:
        prepared.apply_search_ordering()
    return prepared.verify(space=space, stats=stats)
