"""The paper's primary contribution: the EVE algorithm.

EVE (Essential Vertices based Examination) generates the k-hop-constrained
s-t simple path graph ``SPG_k(s, t)`` in three phases:

1. :mod:`repro.core.distances` + :mod:`repro.core.essential` — bounded
   shortest distances and essential-vertex propagation (Section 3).
2. :mod:`repro.core.labeling` — edge labelling and the upper-bound graph
   ``SPGu_k(s, t)`` (Section 4).
3. :mod:`repro.core.verification` — explicit-stack verification of
   undetermined edges over flat CSR slices, with tuned search orders
   (Section 5); the dict/recursive form is retained as the oracle in
   :mod:`repro.core.verification_reference`.

The user-facing entry points are :class:`repro.core.eve.EVE` and the
convenience function :func:`repro.core.eve.build_spg`.
"""

from repro.core.eve import EVE, EVEConfig, build_spg, build_upper_bound
from repro.core.result import EdgeLabel, PhaseStats, SimplePathGraphResult

__all__ = [
    "EVE",
    "EVEConfig",
    "build_spg",
    "build_upper_bound",
    "EdgeLabel",
    "PhaseStats",
    "SimplePathGraphResult",
]
