"""Result objects returned by EVE and the baseline SPG generators.

A :class:`SimplePathGraphResult` bundles the answer graph (edge set plus a
:class:`~repro.graph.digraph.DiGraph` view), the upper-bound graph, the edge
labels assigned by Algorithm 2, per-phase wall-clock times, and the space
meter, so the experiment harness can regenerate every figure from a single
query result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro._types import Edge, Vertex
from repro.core.space import SpaceMeter
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import edge_induced_subgraph

__all__ = ["EdgeLabel", "PHASE_NAMES", "PhaseStats", "SimplePathGraphResult"]

#: Canonical phase names, in execution order.  Telemetry (span names, the
#: per-phase latency histograms in :class:`repro.service.stats.EngineStats`,
#: the Prometheus ``phase`` label) keys on these exact strings.
PHASE_NAMES = (
    "distance",
    "propagation",
    "upper_bound",
    "ordering",
    "verification",
)


class EdgeLabel(enum.IntEnum):
    """Edge labels assigned by Algorithm 2 (Section 4).

    * ``FAILING`` (0): definitely not in ``SPG_k(s, t)``.
    * ``UNDETERMINED`` (1): in the upper-bound graph, needs verification.
    * ``DEFINITE`` (2): definitely in ``SPG_k(s, t)``.
    """

    FAILING = 0
    UNDETERMINED = 1
    DEFINITE = 2


@dataclass
class PhaseStats:
    """Wall-clock seconds spent in each EVE phase (Figure 10(c))."""

    distance_seconds: float = 0.0
    propagation_seconds: float = 0.0
    upper_bound_seconds: float = 0.0
    verification_seconds: float = 0.0
    ordering_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total time across all phases."""
        return (
            self.distance_seconds
            + self.propagation_seconds
            + self.upper_bound_seconds
            + self.verification_seconds
            + self.ordering_seconds
        )

    def as_dict(self) -> Dict[str, float]:
        """Return the phase breakdown as a dictionary (for reports)."""
        return {
            "distance": self.distance_seconds,
            "propagation": self.propagation_seconds,
            "upper_bound": self.upper_bound_seconds,
            "ordering": self.ordering_seconds,
            "verification": self.verification_seconds,
            "total": self.total_seconds,
        }

    def by_phase(self) -> Dict[str, float]:
        """``{phase name: seconds}`` over :data:`PHASE_NAMES` (no total).

        The form consumed by the per-phase latency histograms: every
        canonical phase is present, phases that did not run report 0.0.
        """
        return {
            "distance": self.distance_seconds,
            "propagation": self.propagation_seconds,
            "upper_bound": self.upper_bound_seconds,
            "ordering": self.ordering_seconds,
            "verification": self.verification_seconds,
        }


@dataclass
class SimplePathGraphResult:
    """The answer to one ``<s, t, k>`` query.

    Attributes
    ----------
    source, target, k:
        The query.
    edges:
        Edge set of the exact simple path graph ``SPG_k(s, t)``.
    upper_bound_edges:
        Edge set of the upper-bound graph ``SPGu_k(s, t)``.
    labels:
        Per-edge labels over the candidate space examined by Algorithm 2.
    phases:
        Per-phase timing breakdown.
    space:
        Logical space meter (peak retained items).
    exact:
        ``True`` when ``edges`` is the exact answer (always true for EVE;
        ``False`` if only the upper bound was requested and ``k > 4``).
    """

    source: Vertex
    target: Vertex
    k: int
    edges: Set[Edge]
    upper_bound_edges: Set[Edge]
    labels: Dict[Edge, EdgeLabel] = field(default_factory=dict)
    phases: PhaseStats = field(default_factory=PhaseStats)
    space: SpaceMeter = field(default_factory=SpaceMeter)
    exact: bool = True
    algorithm: str = "EVE"

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """Vertices incident to at least one answer edge (plus s, t if present)."""
        found: Set[Vertex] = set()
        for u, v in self.edges:
            found.add(u)
            found.add(v)
        return frozenset(found)

    @property
    def num_edges(self) -> int:
        """Number of edges in the simple path graph."""
        return len(self.edges)

    @property
    def num_upper_bound_edges(self) -> int:
        """Number of edges in the upper-bound graph."""
        return len(self.upper_bound_edges)

    @property
    def is_empty(self) -> bool:
        """True when no k-hop-constrained s-t simple path exists."""
        return not self.edges

    # ------------------------------------------------------------------
    def redundant_ratio(self) -> float:
        """Redundant ratio ``r_D`` of the upper-bound graph (Section 6.6).

        Defined as ``(|E(SPGu_k)| - |E(SPG_k)|) / |E(SPG_k)|``; returns 0.0
        when the answer is empty (the paper only issues reachable queries).
        """
        if not self.edges:
            return 0.0
        return (len(self.upper_bound_edges) - len(self.edges)) / len(self.edges)

    def coverage_ratio(self, graph: DiGraph) -> float:
        """Coverage ratio ``r_C = |E(SPG_k)| / |E|`` (Section 6.6)."""
        if graph.num_edges == 0:
            return 0.0
        return len(self.edges) / graph.num_edges

    def to_graph(self, graph: DiGraph, name: Optional[str] = None) -> DiGraph:
        """Materialise the answer as an edge-induced subgraph of ``graph``."""
        graph_name = name or f"SPG_{self.k}({self.source},{self.target})"
        return edge_induced_subgraph(graph, self.edges, name=graph_name)

    def upper_bound_graph(self, graph: DiGraph, name: Optional[str] = None) -> DiGraph:
        """Materialise the upper-bound graph as a subgraph of ``graph``."""
        graph_name = name or f"SPGu_{self.k}({self.source},{self.target})"
        return edge_induced_subgraph(graph, self.upper_bound_edges, name=graph_name)

    def __repr__(self) -> str:
        return (
            f"SimplePathGraphResult(algorithm={self.algorithm!r}, "
            f"s={self.source}, t={self.target}, k={self.k}, "
            f"edges={len(self.edges)}, upper_bound={len(self.upper_bound_edges)}, "
            f"exact={self.exact})"
        )
