"""The EVE query driver (Essential Vertices based Examination).

This module ties the three phases of the paper's algorithm together:

1. shortest-distance computation (:mod:`repro.core.distances`),
2. essential-vertex propagation (:mod:`repro.core.essential`) and edge
   labelling into the upper-bound graph (:mod:`repro.core.labeling`),
3. verification of undetermined edges (:mod:`repro.core.verification`).

Usage::

    from repro import DiGraph, build_spg

    graph = DiGraph.from_edge_list([(0, 1), (1, 2), (0, 2)])
    result = build_spg(graph, source=0, target=2, k=2)
    result.edges           # {(0, 1), (1, 2), (0, 2)}

The :class:`EVEConfig` switches correspond to the ablation of Figure 11:
``distance_strategy`` (single / bidirectional / adaptive search),
``forward_looking`` pruning, and the ``search_ordering`` strategy; turning
them all off yields the paper's "Naive EVE".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

from repro._types import Vertex
from repro.core.distances import (
    DISTANCE_STRATEGIES,
    BackwardDistanceMap,
    DistanceScratch,
    compute_distance_index,
)
from repro.core.essential import EssentialScratch, propagate_backward, propagate_forward
from repro.core.labeling import compute_upper_bound
from repro.core.result import PhaseStats, SimplePathGraphResult
from repro.core.space import SpaceMeter
from repro.core.verification import (
    VerificationScratch,
    VerificationStats,
    prepare_verification,
)
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.telemetry import Tracer

__all__ = ["EVEConfig", "EVE", "QueryScratch", "build_spg", "build_upper_bound"]


class QueryScratch(DistanceScratch):
    """Every reusable flat buffer one EVE query needs, in one bundle.

    Extends :class:`~repro.core.distances.DistanceScratch` (so it is
    accepted anywhere a distance scratch is) with the
    :class:`~repro.core.essential.EssentialScratch` of the propagation
    phase and the :class:`~repro.core.verification.VerificationScratch` of
    the ordering + verification phases.  :class:`repro.service.ScratchPool`
    pools these, which is what makes the distance, propagation *and*
    verification phases allocation-free on the batch serving path;
    :meth:`EVE.query` picks the essential and verification sides up
    automatically when handed one.
    """

    __slots__ = ("essential", "verification")

    def __init__(self) -> None:
        super().__init__()
        self.essential = EssentialScratch()
        self.verification = VerificationScratch()


@dataclass(frozen=True)
class EVEConfig:
    """Tuning switches for EVE (all enabled by default).

    Attributes
    ----------
    distance_strategy:
        One of ``"single"``, ``"bidirectional"``, ``"adaptive"``
        (Section 3.3 / Figure 6(a)).
    forward_looking:
        Enable the forward-looking pruning of Theorem 3.6.
    search_ordering:
        Enable the neighbour-ordering strategies of Section 5.3.
    verify:
        When ``False`` the verification phase is skipped and the result's
        ``edges`` equal the upper bound (exact only for ``k <= 4``).
    """

    distance_strategy: str = "adaptive"
    forward_looking: bool = True
    search_ordering: bool = True
    verify: bool = True

    def __post_init__(self) -> None:
        if self.distance_strategy not in DISTANCE_STRATEGIES:
            raise QueryError(
                f"unknown distance strategy {self.distance_strategy!r}; "
                f"expected one of {DISTANCE_STRATEGIES}"
            )

    @classmethod
    def naive(cls) -> "EVEConfig":
        """The paper's "Naive EVE": all pruning/ordering techniques disabled."""
        return cls(
            distance_strategy="single",
            forward_looking=False,
            search_ordering=False,
            verify=True,
        )

    def with_overrides(self, **changes: object) -> "EVEConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class EVE:
    """EVE query engine bound to one graph.

    The engine is stateless between queries (the paper's algorithm is fully
    online, no preprocessing), so one instance can serve many queries and is
    safe to reuse across threads that do not share a query.
    """

    def __init__(self, graph: DiGraph, config: Optional[EVEConfig] = None) -> None:
        self.graph = graph
        self.config = config or EVEConfig()

    # ------------------------------------------------------------------
    def query(
        self,
        source: Vertex,
        target: Vertex,
        k: int,
        *,
        shared_backward: Optional[BackwardDistanceMap] = None,
        scratch: Optional[DistanceScratch] = None,
        essential_scratch: Optional[EssentialScratch] = None,
        verification_scratch: Optional[VerificationScratch] = None,
        tracer: Optional[Tracer] = None,
    ) -> SimplePathGraphResult:
        """Return ``SPG_k(source, target)`` (exact unless ``verify=False``).

        ``shared_backward`` optionally supplies a precomputed backward
        distance pass for ``(target, k)`` (see
        :func:`repro.core.distances.backward_distance_map`), letting a batch
        of queries with a common target amortise that phase.  ``scratch``
        optionally supplies reusable distance buffers (see
        :class:`repro.core.distances.DistanceScratch`) and
        ``essential_scratch`` reusable propagation buffers (see
        :class:`repro.core.essential.EssentialScratch`) and
        ``verification_scratch`` reusable verification buffers (see
        :class:`repro.core.verification.VerificationScratch`) so repeated
        queries skip per-query allocation; when ``scratch`` is a
        :class:`QueryScratch` its essential and verification sides are used
        automatically.  A scratch must not be shared by concurrent queries.
        The answer is identical with or without any of them.

        ``tracer`` optionally records one ``phase.<name>`` span per executed
        phase plus one ``query`` summary span.  Phases are already timed for
        :class:`~repro.core.result.PhaseStats`, so the tracer receives the
        measured values — tracing adds no clock reads, and when ``tracer``
        is ``None`` every telemetry site is a single ``is not None`` check.
        """
        self._validate(source, target, k)
        config = self.config
        if essential_scratch is None:
            essential_scratch = getattr(scratch, "essential", None)
        if verification_scratch is None:
            verification_scratch = getattr(scratch, "verification", None)
        space = SpaceMeter()
        phases = PhaseStats()

        query_started = started = time.perf_counter()
        distances = compute_distance_index(
            self.graph,
            source,
            target,
            k,
            strategy=config.distance_strategy,
            shared_backward=shared_backward,
            scratch=scratch,
        )
        space.allocate(distances.size(), category="distances")
        phases.distance_seconds = time.perf_counter() - started
        if tracer is not None:
            tracer.record(
                "phase.distance",
                started,
                phases.distance_seconds,
                shared_backward=shared_backward is not None,
                **distances.span_attributes(),
            )

        # Fast exit: t not reachable from s within k hops -> empty answer.
        if distances.shortest_st_distance() > k:
            if tracer is not None:
                tracer.record(
                    "query",
                    query_started,
                    time.perf_counter() - query_started,
                    source=source,
                    target=target,
                    k=k,
                    empty=True,
                    exact=True,
                )
            return SimplePathGraphResult(
                source=source,
                target=target,
                k=k,
                edges=set(),
                upper_bound_edges=set(),
                labels={},
                phases=phases,
                space=space,
                exact=True,
                algorithm="EVE",
            )

        started = time.perf_counter()
        forward = propagate_forward(
            self.graph, source, target, k,
            distances=distances, prune=config.forward_looking, space=space,
            scratch=essential_scratch,
        )
        backward = propagate_backward(
            self.graph, source, target, k,
            distances=distances, prune=config.forward_looking, space=space,
            scratch=essential_scratch,
        )
        phases.propagation_seconds = time.perf_counter() - started
        if tracer is not None:
            tracer.record(
                "phase.propagation",
                started,
                phases.propagation_seconds,
                **forward.span_attributes(),
                **backward.span_attributes(),
            )

        started = time.perf_counter()
        upper = compute_upper_bound(
            self.graph, source, target, k, distances, forward, backward, space=space
        )
        phases.upper_bound_seconds = time.perf_counter() - started
        if tracer is not None:
            tracer.record(
                "phase.upper_bound",
                started,
                phases.upper_bound_seconds,
                **upper.span_attributes(),
            )

        verification_stats = VerificationStats() if tracer is not None else None
        if config.verify:
            prepared = None
            if config.search_ordering and k >= 6:
                # For k = 5 the search never expands (Section 5.3), so
                # ordering would be pure overhead.  Materialising the flat
                # slices is part of this phase when ordering runs.
                started = time.perf_counter()
                prepared = prepare_verification(
                    upper, scratch=verification_scratch
                )
                prepared.apply_search_ordering()
                phases.ordering_seconds = time.perf_counter() - started
                if tracer is not None:
                    tracer.record(
                        "phase.ordering", started, phases.ordering_seconds
                    )
            started = time.perf_counter()
            if prepared is None:
                prepared = prepare_verification(
                    upper, scratch=verification_scratch
                )
            edges = prepared.verify(space=space, stats=verification_stats)
            phases.verification_seconds = time.perf_counter() - started
            if tracer is not None:
                tracer.record(
                    "phase.verification",
                    started,
                    phases.verification_seconds,
                    **verification_stats.span_attributes(),
                )
            exact = True
        else:
            edges = upper.edges
            exact = k <= 4

        if tracer is not None:
            tracer.record(
                "query",
                query_started,
                time.perf_counter() - query_started,
                source=source,
                target=target,
                k=k,
                empty=not edges,
                exact=exact,
                answer_edges=len(edges),
                upper_bound_edges=upper.num_edges,
                phase_seconds_total=phases.total_seconds,
            )

        return SimplePathGraphResult(
            source=source,
            target=target,
            k=k,
            edges=edges,
            upper_bound_edges=upper.edges,
            labels=upper.labels,
            phases=phases,
            space=space,
            exact=exact,
            algorithm="EVE",
        )

    # ------------------------------------------------------------------
    def upper_bound(self, source: Vertex, target: Vertex, k: int) -> SimplePathGraphResult:
        """Return only the upper-bound graph ``SPGu_k`` (no verification)."""
        engine = EVE(self.graph, self.config.with_overrides(verify=False))
        result = engine.query(source, target, k)
        result.algorithm = "EVE-upper-bound"
        return result

    def _validate(self, source: Vertex, target: Vertex, k: int) -> None:
        self.graph.check_vertex(source)
        self.graph.check_vertex(target)
        if source == target:
            raise QueryError(
                "simple path graph queries require distinct source and target"
            )
        if k < 1:
            raise QueryError(f"hop constraint k must be >= 1, got {k}")


def build_spg(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    config: Optional[EVEConfig] = None,
) -> SimplePathGraphResult:
    """One-shot convenience wrapper: ``EVE(graph, config).query(s, t, k)``."""
    return EVE(graph, config).query(source, target, k)


def build_upper_bound(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    config: Optional[EVEConfig] = None,
) -> SimplePathGraphResult:
    """One-shot convenience wrapper returning only the upper-bound graph."""
    return EVE(graph, config).upper_bound(source, target, k)
