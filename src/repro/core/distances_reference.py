"""Retained pure-dict reference implementation of the distance layer.

This module preserves the original ``Dict[Vertex, int]`` implementation of
bounded BFS and the three distance strategies exactly as they were before
:mod:`repro.core.distances` moved to the CSR/flat-array kernel.  It exists
for two reasons:

* **Correctness oracle.**  The property tests cross-check every CSR-backed
  strategy against these functions on randomized graphs; the refactor is
  proven answer-identical, not assumed.
* **Benchmark baseline.**  ``benchmarks/bench_fig10b_distance.py`` times the
  old kernel against the new one and asserts the speedup that justified the
  refactor.

The functions mirror the public API of :mod:`repro.core.distances`
(``bounded_bfs`` / ``compute_distance_index`` / ``backward_distance_map``)
and return the same :class:`~repro.core.distances.DistanceIndex` /
:class:`~repro.core.distances.BackwardDistanceMap` containers, just with
plain dicts inside.  Do not use this module on hot paths.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro._types import Vertex
from repro.core.distances import (
    DISTANCE_STRATEGIES,
    BackwardDistanceMap,
    DistanceIndex,
)
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["bounded_bfs", "compute_distance_index", "backward_distance_map"]


def bounded_bfs(
    graph: DiGraph,
    source: Vertex,
    max_depth: int,
    reverse: bool = False,
    allowed: Optional[Dict[Vertex, int]] = None,
    allowed_budget: Optional[int] = None,
) -> Dict[Vertex, int]:
    """Dict-based breadth-first search bounded by ``max_depth`` hops."""
    distances: Dict[Vertex, int] = {source: 0}
    frontier: deque = deque([source])
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        next_frontier: deque = deque()
        while frontier:
            vertex = frontier.popleft()
            neighbors = (
                graph.in_neighbors(vertex) if reverse else graph.out_neighbors(vertex)
            )
            for neighbor in neighbors:
                if neighbor in distances:
                    continue
                if allowed is not None:
                    other = allowed.get(neighbor)
                    if other is None or depth + other > (allowed_budget or 0):
                        continue
                distances[neighbor] = depth
                next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def _expand_one_level(
    graph: DiGraph,
    distances: Dict[Vertex, int],
    frontier: List[Vertex],
    depth: int,
    reverse: bool,
) -> List[Vertex]:
    """Expand ``frontier`` by one hop, recording new distances at ``depth``."""
    next_frontier: List[Vertex] = []
    for vertex in frontier:
        neighbors = (
            graph.in_neighbors(vertex) if reverse else graph.out_neighbors(vertex)
        )
        for neighbor in neighbors:
            if neighbor not in distances:
                distances[neighbor] = depth
                next_frontier.append(neighbor)
    return next_frontier


def _restricted_extension(
    graph: DiGraph,
    distances: Dict[Vertex, int],
    frontier: List[Vertex],
    start_depth: int,
    k: int,
    other_side: Dict[Vertex, int],
    reverse: bool,
) -> int:
    """Extend a partially-explored side up to depth ``k`` (candidates only)."""
    explored = 0
    depth = start_depth
    current = frontier
    while current and depth < k:
        depth += 1
        next_frontier: List[Vertex] = []
        for vertex in current:
            neighbors = (
                graph.in_neighbors(vertex) if reverse else graph.out_neighbors(vertex)
            )
            for neighbor in neighbors:
                if neighbor in distances:
                    continue
                other = other_side.get(neighbor)
                if other is None or depth + other > k:
                    continue
                distances[neighbor] = depth
                next_frontier.append(neighbor)
                explored += 1
        current = next_frontier
    return explored


def _single_directional(graph: DiGraph, s: Vertex, t: Vertex, k: int) -> DistanceIndex:
    forward = bounded_bfs(graph, s, k, reverse=False)
    backward = bounded_bfs(graph, t, k, reverse=True)
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=backward,
        explored_vertices=len(forward) + len(backward),
        strategy="single",
    )


def _two_phase(
    graph: DiGraph,
    s: Vertex,
    t: Vertex,
    k: int,
    adaptive: bool,
) -> DistanceIndex:
    forward: Dict[Vertex, int] = {s: 0}
    backward: Dict[Vertex, int] = {t: 0}
    forward_frontier: List[Vertex] = [s]
    backward_frontier: List[Vertex] = [t]
    forward_depth = 0
    backward_depth = 0
    explored = 2

    if adaptive:
        while forward_depth + backward_depth < k:
            forward_alive = bool(forward_frontier)
            backward_alive = bool(backward_frontier)
            if not forward_alive and not backward_alive:
                break
            advance_forward = forward_alive and (
                not backward_alive
                or len(forward_frontier) <= len(backward_frontier)
            )
            if advance_forward:
                forward_depth += 1
                forward_frontier = _expand_one_level(
                    graph, forward, forward_frontier, forward_depth, reverse=False
                )
                explored += len(forward_frontier)
            else:
                backward_depth += 1
                backward_frontier = _expand_one_level(
                    graph, backward, backward_frontier, backward_depth, reverse=True
                )
                explored += len(backward_frontier)
    else:
        forward_budget = (k + 1) // 2
        backward_budget = k - forward_budget
        while forward_depth < forward_budget and forward_frontier:
            forward_depth += 1
            forward_frontier = _expand_one_level(
                graph, forward, forward_frontier, forward_depth, reverse=False
            )
            explored += len(forward_frontier)
        while backward_depth < backward_budget and backward_frontier:
            backward_depth += 1
            backward_frontier = _expand_one_level(
                graph, backward, backward_frontier, backward_depth, reverse=True
            )
            explored += len(backward_frontier)

    explored += _restricted_extension(
        graph, forward, forward_frontier, forward_depth, k, backward, reverse=False
    )
    explored += _restricted_extension(
        graph, backward, backward_frontier, backward_depth, k, forward, reverse=True
    )
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=backward,
        explored_vertices=explored,
        strategy="adaptive" if adaptive else "bidirectional",
    )


def backward_distance_map(graph: DiGraph, target: Vertex, k: int) -> BackwardDistanceMap:
    """Dict-based source-independent backward pass for ``(target, k)``."""
    graph.check_vertex(target)
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    return BackwardDistanceMap(
        target=target,
        k=k,
        distances=bounded_bfs(graph, target, k, reverse=True),
    )


def _from_shared_backward(
    graph: DiGraph,
    s: Vertex,
    t: Vertex,
    k: int,
    shared: BackwardDistanceMap,
) -> DistanceIndex:
    forward = bounded_bfs(
        graph, s, k, reverse=False, allowed=dict(shared.distances), allowed_budget=k
    )
    return DistanceIndex(
        source=s,
        target=t,
        k=k,
        from_source=forward,
        to_target=shared.distances,
        explored_vertices=len(forward),
        strategy="shared-backward",
    )


def compute_distance_index(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    strategy: str = "adaptive",
    shared_backward: Optional[BackwardDistanceMap] = None,
) -> DistanceIndex:
    """Dict-based :class:`DistanceIndex` computation (reference semantics)."""
    graph.check_vertex(source)
    graph.check_vertex(target)
    if k < 1:
        raise QueryError(f"hop constraint k must be >= 1, got {k}")
    if source == target:
        raise QueryError("source and target must be distinct vertices")
    if strategy not in DISTANCE_STRATEGIES:
        raise QueryError(
            f"unknown distance strategy {strategy!r}; expected one of {DISTANCE_STRATEGIES}"
        )
    if shared_backward is not None:
        if shared_backward.target != target:
            raise QueryError(
                f"shared backward pass was built for target {shared_backward.target}, "
                f"query targets {target}"
            )
        if shared_backward.k < k:
            raise QueryError(
                f"shared backward pass covers k={shared_backward.k} hops, "
                f"query needs k={k}"
            )
        return _from_shared_backward(graph, source, target, k, shared_backward)
    if strategy == "single":
        return _single_directional(graph, source, target, k)
    return _two_phase(graph, source, target, k, adaptive=(strategy == "adaptive"))
