"""Edge labelling and the upper-bound graph (Section 4 of the paper).

Every edge in the candidate space (``dist(s, u) + 1 + dist(v, t) <= k``) is
assigned one of three labels by Algorithm 2:

* ``FAILING`` — Theorem 3.4 proves no k-hop-constrained s-t simple path can
  use the edge;
* ``DEFINITE`` — Lemmas 4.4/4.6 prove the edge is in ``SPG_k(s, t)``
  (edges within two hops of ``s`` or ``t`` in the upper-bound graph);
* ``UNDETERMINED`` — the essential-vertex test is inconclusive; the edge
  belongs to the upper-bound graph and is handed to the verification phase.

This module also collects the *departure* and *arrival* vertex sets together
with their valid in-/out-neighbours (Definitions 5.1-5.4), truncated to
``k - 2`` entries per vertex as justified by Theorem 5.8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro._types import Edge, Vertex
from repro.core.distances import DistanceIndex
from repro.core.essential import EssentialVertexIndex
from repro.core.result import EdgeLabel
from repro.core.space import SpaceMeter
from repro.graph.digraph import DiGraph

__all__ = ["UpperBoundGraph", "label_edge", "compute_upper_bound", "collect_boundaries"]


@dataclass
class UpperBoundGraph:
    """The upper-bound graph ``SPGu_k(s, t)`` plus bookkeeping for phase 3.

    Attributes
    ----------
    labels:
        Label of every candidate-space edge.
    definite_edges / undetermined_edges:
        Partition of the upper-bound edge set.
    out_adjacency / in_adjacency:
        Adjacency of the upper-bound graph (only its vertices appear).
    departures / arrivals:
        ``{vertex: [valid neighbours]}`` maps per Definitions 5.1-5.4,
        truncated to ``k - 2`` entries (Theorem 5.8).
    """

    source: Vertex
    target: Vertex
    k: int
    labels: Dict[Edge, EdgeLabel] = field(default_factory=dict)
    definite_edges: Set[Edge] = field(default_factory=set)
    undetermined_edges: Set[Edge] = field(default_factory=set)
    out_adjacency: Dict[Vertex, List[Vertex]] = field(default_factory=dict)
    in_adjacency: Dict[Vertex, List[Vertex]] = field(default_factory=dict)
    departures: Dict[Vertex, List[Vertex]] = field(default_factory=dict)
    arrivals: Dict[Vertex, List[Vertex]] = field(default_factory=dict)

    @property
    def edges(self) -> Set[Edge]:
        """All edges of the upper-bound graph."""
        return self.definite_edges | self.undetermined_edges

    @property
    def num_edges(self) -> int:
        """Number of edges of the upper-bound graph."""
        return len(self.definite_edges) + len(self.undetermined_edges)

    def vertices(self) -> Set[Vertex]:
        """Vertices incident to at least one upper-bound edge."""
        found: Set[Vertex] = set()
        for u, v in self.definite_edges:
            found.add(u)
            found.add(v)
        for u, v in self.undetermined_edges:
            found.add(u)
            found.add(v)
        return found


def label_edge(
    u: Vertex,
    v: Vertex,
    source: Vertex,
    target: Vertex,
    k: int,
    forward: EssentialVertexIndex,
    backward: EssentialVertexIndex,
) -> EdgeLabel:
    """Label a single edge ``e(u, v)`` (Algorithm 2).

    ``forward`` holds ``EV*_l(s, ·)`` and ``backward`` holds ``EV*_l(·, t)``.
    """
    # Lines 1-2: first-hop edges from s / last-hop edges into t (Lemma 4.4).
    if u == source and backward.exists(v, k - 1):
        return EdgeLabel.DEFINITE
    if v == target and forward.exists(u, k - 1):
        return EdgeLabel.DEFINITE

    # Lines 3-4: second-hop edges (Lemma 4.6) — definite when the one-hop
    # prefix/suffix exists and the far endpoint avoids the near one.
    ev_su_1 = forward.get(u, 1)
    ev_vt_k2 = backward.get(v, k - 2)
    if ev_su_1 is not None and ev_vt_k2 is not None and u not in ev_vt_k2:
        return EdgeLabel.DEFINITE
    ev_vt_1 = backward.get(v, 1)
    ev_su_k2 = forward.get(u, k - 2)
    if ev_vt_1 is not None and ev_su_k2 is not None and v not in ev_su_k2:
        return EdgeLabel.DEFINITE

    # Lines 5-8: iterate k_f, pairing with k_b = k - k_f - 1 (Theorem 4.3
    # shows smaller k_b need not be checked separately).
    for k_forward in range(2, k - 2):
        k_backward = k - k_forward - 1
        ev_forward = forward.get(u, k_forward)
        if ev_forward is None:
            continue
        ev_backward = backward.get(v, k_backward)
        if ev_backward is None:
            continue
        if not (ev_forward & ev_backward):
            return EdgeLabel.UNDETERMINED
    return EdgeLabel.FAILING


def compute_upper_bound(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    distances: DistanceIndex,
    forward: EssentialVertexIndex,
    backward: EssentialVertexIndex,
    space: SpaceMeter | None = None,
) -> UpperBoundGraph:
    """Run Algorithm 2 over the candidate space and build ``SPGu_k(s, t)``.

    Only edges whose endpoints satisfy ``dist(s, u) + 1 + dist(v, t) <= k``
    are examined; edges outside that space cannot lie on any k-hop s-t path
    (Section 4.1) and are implicitly failing.
    """
    upper = UpperBoundGraph(source=source, target=target, k=k)
    from_source = distances.from_source
    to_target_get = distances.to_target.get
    for u, dist_su in from_source.items():
        if dist_su + 1 > k:
            continue
        for v in graph.out_neighbors(u):
            dist_vt = to_target_get(v)
            if dist_vt is None or dist_su + 1 + dist_vt > k:
                continue
            label = label_edge(u, v, source, target, k, forward, backward)
            upper.labels[(u, v)] = label
            if label is EdgeLabel.FAILING:
                continue
            if label is EdgeLabel.DEFINITE:
                upper.definite_edges.add((u, v))
            else:
                upper.undetermined_edges.add((u, v))
            upper.out_adjacency.setdefault(u, []).append(v)
            upper.in_adjacency.setdefault(v, []).append(u)
    if space is not None:
        space.allocate(len(upper.labels), category="edge-labels")
        space.allocate(upper.num_edges, category="upper-bound-graph")
    collect_boundaries(upper, space=space)
    return upper


def collect_boundaries(upper: UpperBoundGraph, space: SpaceMeter | None = None) -> None:
    """Populate departures/arrivals and their valid neighbours.

    A vertex ``v`` is a *departure* when some in-neighbour ``x`` (distinct
    from ``s``, ``t`` and ``v``) has both ``e(s, x)`` and ``e(x, v)`` in the
    upper-bound graph; the valid in-neighbours ``In_D(v)`` are all such ``x``
    (Definitions 5.1-5.2).  Arrivals are symmetric (Definitions 5.3-5.4).
    Per Theorem 5.8, at most ``k - 2`` neighbours are retained per vertex.
    """
    source, target, k = upper.source, upper.target, upper.k
    limit = max(1, k - 2)
    out_of_source = set(upper.out_adjacency.get(source, ()))
    into_target = set(upper.in_adjacency.get(target, ()))

    departures: Dict[Vertex, List[Vertex]] = {}
    for x in out_of_source:
        if x == target or x == source:
            continue
        for v in upper.out_adjacency.get(x, ()):
            if v == source or v == target or v == x:
                continue
            valid = departures.setdefault(v, [])
            if len(valid) < limit and x not in valid:
                valid.append(x)
    arrivals: Dict[Vertex, List[Vertex]] = {}
    for y in into_target:
        if y == source or y == target:
            continue
        for v in upper.in_adjacency.get(y, ()):
            if v == source or v == target or v == y:
                continue
            valid = arrivals.setdefault(v, [])
            if len(valid) < limit and y not in valid:
                valid.append(y)
    upper.departures = departures
    upper.arrivals = arrivals
    if space is not None:
        space.allocate(
            sum(len(vs) for vs in departures.values())
            + sum(len(vs) for vs in arrivals.values()),
            category="boundaries",
        )
