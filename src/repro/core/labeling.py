"""Edge labelling and the upper-bound graph (Section 4 of the paper).

Every edge in the candidate space (``dist(s, u) + 1 + dist(v, t) <= k``) is
assigned one of three labels by Algorithm 2:

* ``FAILING`` — Theorem 3.4 proves no k-hop-constrained s-t simple path can
  use the edge;
* ``DEFINITE`` — Lemmas 4.4/4.6 prove the edge is in ``SPG_k(s, t)``
  (edges within two hops of ``s`` or ``t`` in the upper-bound graph);
* ``UNDETERMINED`` — the essential-vertex test is inconclusive; the edge
  belongs to the upper-bound graph and is handed to the verification phase.

This module also collects the *departure* and *arrival* vertex sets together
with their valid in-/out-neighbours (Definitions 5.1-5.4), truncated to
``k - 2`` entries per vertex as justified by Theorem 5.8.

Execution backend
-----------------
Since the flat-buffer refactor of :mod:`repro.core.essential`,
:func:`compute_upper_bound` runs Algorithm 2 as a **single fused pass over
the CSR out-edges** of the candidate space instead of a per-edge
:func:`label_edge` call: per-source values (the Lemma 4.4/4.6 sets, the
level-resolved intersection operands) are computed once per ``u`` and
per-target values are memoised across the edges that share ``v``.

Intersection tests use **small bitsets over the shared essential-vertex
universe**: a vertex can witness ``EV_kf(s, u) ∩ EV_kb(v, t) != ∅`` only if
it appears in some forward *and* some backward set, so each such vertex is
assigned one bit (in sorted vertex-id order) and every stored EV set folds
down to one int mask — the per-split emptiness test of Algorithm 2's inner
loop becomes a single ``fmask & bmask`` machine op, exact by construction.

The original per-edge implementation is retained in
:mod:`repro.core.labeling_reference` as the property-test oracle and
benchmark baseline; ``tests/test_flat_propagation.py`` holds the two
answer-identical (labels, edge partition, adjacency, boundaries) on
randomized graphs.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro._types import Edge, Vertex
from repro.core.distances import ArrayDistanceMap, DistanceIndex
from repro.core.essential import EssentialVertexIndex
from repro.core.result import EdgeLabel
from repro.core.space import SpaceMeter
from repro.graph.digraph import DiGraph

__all__ = ["UpperBoundGraph", "label_edge", "compute_upper_bound", "collect_boundaries"]


@dataclass
class UpperBoundGraph:
    """The upper-bound graph ``SPGu_k(s, t)`` plus bookkeeping for phase 3.

    Attributes
    ----------
    labels:
        Label of every candidate-space edge.
    definite_edges / undetermined_edges:
        Partition of the upper-bound edge set.
    out_adjacency / in_adjacency:
        Adjacency of the upper-bound graph (only its vertices appear).
    departures / arrivals:
        ``{vertex: [valid neighbours]}`` maps per Definitions 5.1-5.4,
        truncated to ``k - 2`` entries (Theorem 5.8).
    """

    source: Vertex
    target: Vertex
    k: int
    labels: Dict[Edge, EdgeLabel] = field(default_factory=dict)
    definite_edges: Set[Edge] = field(default_factory=set)
    undetermined_edges: Set[Edge] = field(default_factory=set)
    out_adjacency: Dict[Vertex, List[Vertex]] = field(default_factory=dict)
    in_adjacency: Dict[Vertex, List[Vertex]] = field(default_factory=dict)
    departures: Dict[Vertex, List[Vertex]] = field(default_factory=dict)
    arrivals: Dict[Vertex, List[Vertex]] = field(default_factory=dict)

    @property
    def edges(self) -> Set[Edge]:
        """All edges of the upper-bound graph."""
        return self.definite_edges | self.undetermined_edges

    @property
    def num_edges(self) -> int:
        """Number of edges of the upper-bound graph."""
        return len(self.definite_edges) + len(self.undetermined_edges)

    @property
    def num_definite(self) -> int:
        """Number of DEFINITE edges (Lemmas 4.4/4.6)."""
        return len(self.definite_edges)

    @property
    def num_undetermined(self) -> int:
        """Number of UNDETERMINED edges handed to verification."""
        return len(self.undetermined_edges)

    def span_attributes(self) -> Dict[str, object]:
        """Trace attributes describing this upper bound (labeling spans)."""
        return {
            "labeled_edges": len(self.labels),
            "definite_edges": len(self.definite_edges),
            "undetermined_edges": len(self.undetermined_edges),
            "departures": len(self.departures),
            "arrivals": len(self.arrivals),
        }

    def vertices(self) -> Set[Vertex]:
        """Vertices incident to at least one upper-bound edge."""
        found: Set[Vertex] = set()
        for u, v in self.definite_edges:
            found.add(u)
            found.add(v)
        for u, v in self.undetermined_edges:
            found.add(u)
            found.add(v)
        return found


def label_edge(
    u: Vertex,
    v: Vertex,
    source: Vertex,
    target: Vertex,
    k: int,
    forward,
    backward,
) -> EdgeLabel:
    """Label a single edge ``e(u, v)`` (Algorithm 2).

    ``forward`` holds ``EV*_l(s, ·)`` and ``backward`` holds ``EV*_l(·, t)``
    (any index exposing ``get`` / ``exists`` — flat or reference).  This is
    the specification the fused pass of :func:`compute_upper_bound` is held
    to; it is also the path taken for index types the fused kernel does not
    recognise.
    """
    # Lines 1-2: first-hop edges from s / last-hop edges into t (Lemma 4.4).
    if u == source and backward.exists(v, k - 1):
        return EdgeLabel.DEFINITE
    if v == target and forward.exists(u, k - 1):
        return EdgeLabel.DEFINITE

    # Lines 3-4: second-hop edges (Lemma 4.6) — definite when the one-hop
    # prefix/suffix exists and the far endpoint avoids the near one.
    ev_su_1 = forward.get(u, 1)
    ev_vt_k2 = backward.get(v, k - 2)
    if ev_su_1 is not None and ev_vt_k2 is not None and u not in ev_vt_k2:
        return EdgeLabel.DEFINITE
    ev_vt_1 = backward.get(v, 1)
    ev_su_k2 = forward.get(u, k - 2)
    if ev_vt_1 is not None and ev_su_k2 is not None and v not in ev_su_k2:
        return EdgeLabel.DEFINITE

    # Lines 5-8: iterate k_f, pairing with k_b = k - k_f - 1 (Theorem 4.3
    # shows smaller k_b need not be checked separately).  For k <= 4 this
    # range is empty *and vacuously complete*: every split of k - 1 hops
    # with k_f >= 2 and k_b >= 2 needs k >= 5, and the k_f <= 1 / k_b <= 1
    # splits are each settled conclusively above — either DEFINITE, or
    # impossible because the one-hop prefix/suffix does not exist (the
    # Lemma set is None) or the far endpoint is essential on the other
    # side (`u in EV_{k-2}(v, t)` means every short suffix repeats u).
    # FAILING is therefore exact for k <= 4, which is Theorem 4.8; the
    # enumeration cross-check in tests/test_flat_propagation.py keeps this
    # argument honest.
    for k_forward in range(2, k - 2):
        k_backward = k - k_forward - 1
        ev_forward = forward.get(u, k_forward)
        if ev_forward is None:
            continue
        ev_backward = backward.get(v, k_backward)
        if ev_backward is None:
            continue
        if not (ev_forward & ev_backward):
            return EdgeLabel.UNDETERMINED
    return EdgeLabel.FAILING


# ----------------------------------------------------------------------
# Fused CSR labelling kernel
# ----------------------------------------------------------------------
def _entry_masks(
    sets: List[Tuple[Vertex, ...]], bit_of: Dict[Vertex, int]
) -> List[int]:
    """Fold each stored EV tuple into its shared-universe bitset."""
    masks: List[int] = []
    get = bit_of.get
    for entry in sets:
        acc = 0
        for element in entry:
            b = get(element)
            if b is not None:
                acc |= b
        masks.append(acc)
    return masks


def _masks_at_levels(
    entry_levels: List[int], masks: List[int], lo: int, hi: int
) -> List[Optional[int]]:
    """Resolve ``get(vertex, L)`` to a mask for every level ``L`` in [lo, hi).

    One forward walk of the (short, sorted) entry-level list replaces a
    bisect per ``(edge, split)`` query.
    """
    resolved: List[Optional[int]] = []
    index = -1
    count = len(entry_levels)
    for level in range(lo, hi):
        while index + 1 < count and entry_levels[index + 1] <= level:
            index += 1
        resolved.append(masks[index] if index >= 0 else None)
    return resolved


def _label_edges_flat(
    graph: DiGraph,
    upper: UpperBoundGraph,
    distances: DistanceIndex,
    forward: EssentialVertexIndex,
    backward: EssentialVertexIndex,
) -> None:
    """Single fused pass over candidate CSR out-edges (see module docstring)."""
    source, target, k = upper.source, upper.target, upper.k
    offsets, targets = graph.csr()
    flevels, fsets = forward._levels, forward._sets
    fstamp, fepoch = forward._stamp, forward._epoch
    blevels, bsets = backward._levels, backward._sets
    bstamp, bepoch = backward._stamp, backward._epoch

    from_source = distances.from_source
    if isinstance(from_source, ArrayDistanceMap):
        source_order = from_source.touched
        sdist = from_source.dist
    else:
        source_order = list(from_source)
        sdist = from_source

    to_target = distances.to_target
    if isinstance(to_target, ArrayDistanceMap):
        tdist, tstamp, tepoch = to_target.dist, to_target.stamp, to_target.epoch
        to_target_get = None
    else:
        to_target_get = to_target.get

    # Bit assignment for the intersection tests: only vertices appearing in
    # some forward AND some backward set can witness a non-empty
    # intersection, so only they need bits (sorted for determinism).  The
    # inner split loop only runs for k >= 5; skip the pass entirely below.
    loop_len = max(0, k - 4)
    bit_of: Dict[Vertex, int] = {}
    if loop_len:
        forward_elements: Set[Vertex] = set()
        for vertex in forward._touched:
            for entry in fsets[vertex]:
                forward_elements.update(entry)
        backward_elements: Set[Vertex] = set()
        for vertex in backward._touched:
            for entry in bsets[vertex]:
                backward_elements.update(entry)
        for position, vertex in enumerate(sorted(forward_elements & backward_elements)):
            bit_of[vertex] = 1 << position
    no_masks: List[Optional[int]] = [None] * loop_len

    #: per-target memo: [exists(v, k-1), EV_1(v,t), EV_{k-2}(v,t), split masks]
    #: (masks resolved lazily — ``None`` until an edge reaches the split loop)
    v_cache: Dict[Vertex, list] = {}

    labels = upper.labels
    definite_edges = upper.definite_edges
    undetermined_edges = upper.undetermined_edges
    out_adjacency = upper.out_adjacency
    in_adjacency = upper.in_adjacency
    DEFINITE, UNDETERMINED, FAILING = (
        EdgeLabel.DEFINITE,
        EdgeLabel.UNDETERMINED,
        EdgeLabel.FAILING,
    )

    for u in source_order:
        dist_su = sdist[u]
        if dist_su + 1 > k:
            continue
        start, end = offsets[u], offsets[u + 1]
        if start == end:
            continue

        u_ready = False
        for v in targets[start:end]:
            if to_target_get is None:
                if tstamp[v] != tepoch:
                    continue
                dist_vt = tdist[v]
            else:
                dist_vt = to_target_get(v)
                if dist_vt is None:
                    continue
            if dist_su + 1 + dist_vt > k:
                continue

            if not u_ready:
                # Deferred per-source prelude: many candidate-ball vertices
                # have no surviving out-edge at all.
                u_ready = True
                if fstamp[u] == fepoch and flevels[u]:
                    u_levels = flevels[u]
                    u_first = u_levels[0]
                    u_sets = fsets[u]
                    u_exists_k1 = u_first <= k - 1
                    ev_su_1 = (
                        u_sets[bisect_right(u_levels, 1) - 1] if u_first <= 1 else None
                    )
                    ev_su_k2 = (
                        u_sets[bisect_right(u_levels, k - 2) - 1]
                        if u_first <= k - 2
                        else None
                    )
                    u_masks: Optional[List[Optional[int]]] = None  # lazy
                else:
                    u_exists_k1 = False
                    ev_su_1 = None
                    ev_su_k2 = None
                    u_masks = no_masks

            cached = v_cache.get(v)
            if cached is None:
                if bstamp[v] == bepoch and blevels[v]:
                    v_levels = blevels[v]
                    v_first = v_levels[0]
                    v_sets = bsets[v]
                    cached = [
                        v_first <= k - 1,
                        v_sets[bisect_right(v_levels, 1) - 1] if v_first <= 1 else None,
                        v_sets[bisect_right(v_levels, k - 2) - 1]
                        if v_first <= k - 2
                        else None,
                        None,  # split masks, resolved on first use
                    ]
                else:
                    cached = [False, None, None, no_masks]
                v_cache[v] = cached
            v_exists_k1, ev_vt_1, ev_vt_k2, v_masks = cached

            # Lines 1-2 (Lemma 4.4), lines 3-4 (Lemma 4.6) — see label_edge.
            if (
                (u == source and v_exists_k1)
                or (v == target and u_exists_k1)
                or (ev_su_1 is not None and ev_vt_k2 is not None and u not in ev_vt_k2)
                or (ev_vt_1 is not None and ev_su_k2 is not None and v not in ev_su_k2)
            ):
                label = DEFINITE
            else:
                # Lines 5-8: the split loop over k_f in [2, k-3] as one
                # bitset AND per split (vacuously FAILING for k <= 4, see
                # label_edge).
                label = FAILING
                if loop_len:
                    if u_masks is None:
                        u_masks = _masks_at_levels(
                            u_levels, _entry_masks(u_sets, bit_of), 2, k - 2
                        )
                    if v_masks is None:
                        v_masks = _masks_at_levels(
                            blevels[v], _entry_masks(bsets[v], bit_of), 2, k - 2
                        )
                        cached[3] = v_masks
                    last = loop_len - 1
                    for i in range(loop_len):
                        fmask = u_masks[i]
                        if fmask is None:
                            continue
                        bmask = v_masks[last - i]
                        if bmask is None:
                            continue
                        if not fmask & bmask:
                            label = UNDETERMINED
                            break

            labels[(u, v)] = label
            if label is FAILING:
                continue
            if label is DEFINITE:
                definite_edges.add((u, v))
            else:
                undetermined_edges.add((u, v))
            out_list = out_adjacency.get(u)
            if out_list is None:
                out_adjacency[u] = [v]
            else:
                out_list.append(v)
            in_list = in_adjacency.get(v)
            if in_list is None:
                in_adjacency[v] = [u]
            else:
                in_list.append(u)


def _label_edges_generic(
    graph: DiGraph,
    upper: UpperBoundGraph,
    distances: DistanceIndex,
    forward,
    backward,
) -> None:
    """Per-edge fallback for index types the fused kernel cannot read."""
    source, target, k = upper.source, upper.target, upper.k
    to_target_get = distances.to_target.get
    for u, dist_su in distances.from_source.items():
        if dist_su + 1 > k:
            continue
        for v in graph.out_neighbors(u):
            dist_vt = to_target_get(v)
            if dist_vt is None or dist_su + 1 + dist_vt > k:
                continue
            label = label_edge(u, v, source, target, k, forward, backward)
            upper.labels[(u, v)] = label
            if label is EdgeLabel.FAILING:
                continue
            if label is EdgeLabel.DEFINITE:
                upper.definite_edges.add((u, v))
            else:
                upper.undetermined_edges.add((u, v))
            upper.out_adjacency.setdefault(u, []).append(v)
            upper.in_adjacency.setdefault(v, []).append(u)


def compute_upper_bound(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    k: int,
    distances: DistanceIndex,
    forward,
    backward,
    space: SpaceMeter | None = None,
) -> UpperBoundGraph:
    """Run Algorithm 2 over the candidate space and build ``SPGu_k(s, t)``.

    Only edges whose endpoints satisfy ``dist(s, u) + 1 + dist(v, t) <= k``
    are examined; edges outside that space cannot lie on any k-hop s-t path
    (Section 4.1) and are implicitly failing.  With flat-buffer indexes from
    :mod:`repro.core.essential` the labelling runs as the fused CSR pass;
    any other index pair (e.g. the retained reference implementation) takes
    the per-edge :func:`label_edge` path — both produce identical upper
    bounds.
    """
    upper = UpperBoundGraph(source=source, target=target, k=k)
    if isinstance(forward, EssentialVertexIndex) and isinstance(
        backward, EssentialVertexIndex
    ):
        _label_edges_flat(graph, upper, distances, forward, backward)
    else:
        _label_edges_generic(graph, upper, distances, forward, backward)
    if space is not None:
        space.allocate(len(upper.labels), category="edge-labels")
        space.allocate(upper.num_edges, category="upper-bound-graph")
    collect_boundaries(upper, space=space)
    return upper


def collect_boundaries(upper: UpperBoundGraph, space: SpaceMeter | None = None) -> None:
    """Populate departures/arrivals and their valid neighbours.

    A vertex ``v`` is a *departure* when some in-neighbour ``x`` (distinct
    from ``s``, ``t`` and ``v``) has both ``e(s, x)`` and ``e(x, v)`` in the
    upper-bound graph; the valid in-neighbours ``In_D(v)`` are all such ``x``
    (Definitions 5.1-5.2).  Arrivals are symmetric (Definitions 5.3-5.4).
    Per Theorem 5.8, at most ``k - 2`` neighbours are retained per vertex —
    and the retained ones are the ``k - 2`` *smallest vertex ids*: the
    candidates are visited in sorted order, so the truncation is a pure
    function of the upper-bound edge set, not of adjacency iteration order.
    (Historically the cap kept whichever neighbours set/dict iteration
    yielded first, which made departures/arrivals — and therefore canonical
    reports — differ between dict-, CSR- and shard-order builds of the same
    upper bound.)
    """
    source, target, k = upper.source, upper.target, upper.k
    limit = max(1, k - 2)
    out_of_source = sorted(set(upper.out_adjacency.get(source, ())))
    into_target = sorted(set(upper.in_adjacency.get(target, ())))

    departures: Dict[Vertex, List[Vertex]] = {}
    for x in out_of_source:
        if x == target or x == source:
            continue
        for v in upper.out_adjacency.get(x, ()):
            if v == source or v == target or v == x:
                continue
            valid = departures.setdefault(v, [])
            if len(valid) < limit and x not in valid:
                valid.append(x)
    arrivals: Dict[Vertex, List[Vertex]] = {}
    for y in into_target:
        if y == source or y == target:
            continue
        for v in upper.in_adjacency.get(y, ()):
            if v == source or v == target or v == y:
                continue
            valid = arrivals.setdefault(v, [])
            if len(valid) < limit and y not in valid:
                valid.append(y)
    upper.departures = departures
    upper.arrivals = arrivals
    if space is not None:
        space.allocate(
            sum(len(vs) for vs in departures.values())
            + sum(len(vs) for vs in arrivals.values()),
            category="boundaries",
        )
