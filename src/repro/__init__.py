"""repro — hop-constrained s-t simple path graphs (EVE), reproduced in Python.

This library reproduces the SIGMOD 2023 paper *"Towards Generating
Hop-constrained s-t Simple Path Graphs"* (Cai, Liu, Zheng, Lin): given a
directed graph, a source ``s``, a target ``t`` and a hop constraint ``k``,
it computes the subgraph formed by *all* simple paths from ``s`` to ``t``
of length at most ``k`` — without enumerating those paths.

Most users only need three entry points:

* :class:`repro.graph.DiGraph` / :class:`repro.graph.GraphBuilder` — build a
  graph from edges (arbitrary labels supported through the builder);
* :func:`repro.core.build_spg` — answer a ``<s, t, k>`` query with EVE;
* :class:`repro.service.SPGEngine` — serve single queries, batches and
  streams with result caching, shared-work batch planning and a concurrent
  executor (also a CLI: ``python -m repro.service``);
* :mod:`repro.enumeration` — hop-constrained simple path enumerators
  (PathEnum, JOIN, BC-DFS ...), which the computed simple path graph can
  accelerate by restricting their search space.

The experiment harness that regenerates every table and figure of the paper
lives in :mod:`repro.bench` (``python -m repro.bench --help``).
"""

from repro.core.eve import EVE, EVEConfig, build_spg, build_upper_bound
from repro.core.result import EdgeLabel, SimplePathGraphResult
from repro.exceptions import (
    DatasetError,
    EdgeError,
    ExperimentError,
    GraphError,
    QueryError,
    ReproError,
    VertexError,
)
from repro.graph.builder import GraphBuilder, build_graph
from repro.graph.digraph import DiGraph
from repro.khsq.khsq import k_hop_subgraph
from repro.service.engine import BatchReport, QueryOutcome, SPGEngine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph construction
    "DiGraph",
    "GraphBuilder",
    "build_graph",
    # the paper's algorithm
    "EVE",
    "EVEConfig",
    "build_spg",
    "build_upper_bound",
    "SimplePathGraphResult",
    "EdgeLabel",
    "k_hop_subgraph",
    # the serving layer
    "SPGEngine",
    "QueryOutcome",
    "BatchReport",
    # errors
    "ReproError",
    "GraphError",
    "VertexError",
    "EdgeError",
    "QueryError",
    "DatasetError",
    "ExperimentError",
]
