"""KHSQ and KHSQ+: computing the k-hop s-t subgraph ``G^k_st``.

``G^k_st`` contains an edge ``(u, v)`` exactly when
``dist(s, u) + 1 + dist(v, t) <= k``, i.e. when some (not necessarily
simple) s-t path of length at most ``k`` uses the edge.  It is therefore a
superset of ``SPG_k(s, t)`` and can be computed in ``O(|E|)`` per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Set

from repro._types import Edge, Vertex
from repro.core.distances import compute_distance_index
from repro.core.space import SpaceMeter
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import edge_induced_subgraph

__all__ = ["KHopSubgraphResult", "KHSQ", "KHSQPlus", "k_hop_subgraph"]


@dataclass
class KHopSubgraphResult:
    """The edge set of ``G^k_st`` plus timing and space accounting."""

    source: Vertex
    target: Vertex
    k: int
    edges: Set[Edge] = field(default_factory=set)
    seconds: float = 0.0
    space: SpaceMeter = field(default_factory=SpaceMeter)
    algorithm: str = "KHSQ"

    @property
    def num_edges(self) -> int:
        """Number of edges in ``G^k_st``."""
        return len(self.edges)

    def to_graph(self, graph: DiGraph) -> DiGraph:
        """Materialise ``G^k_st`` as an edge-induced subgraph of ``graph``."""
        return edge_induced_subgraph(
            graph, self.edges, name=f"G^{self.k}_{self.source},{self.target}"
        )


class KHSQ:
    """k-hop s-t subgraph computation with single-directional BFS."""

    name = "KHSQ"
    distance_strategy = "single"

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph

    def query(self, source: Vertex, target: Vertex, k: int) -> KHopSubgraphResult:
        """Return ``G^k_st`` for the query ``<source, target, k>``."""
        self.graph.check_vertex(source)
        self.graph.check_vertex(target)
        if source == target:
            raise QueryError("source and target must be distinct")
        if k < 1:
            raise QueryError(f"hop constraint k must be >= 1, got {k}")
        space = SpaceMeter()
        started = time.perf_counter()
        distances = compute_distance_index(
            self.graph, source, target, k, strategy=self.distance_strategy
        )
        space.allocate(distances.size(), category="distances")
        edges: Set[Edge] = set()
        to_target = distances.to_target
        for u, dist_su in distances.from_source.items():
            if dist_su + 1 > k:
                continue
            for v in self.graph.out_neighbors(u):
                dist_vt = to_target.get(v)
                if dist_vt is not None and dist_su + 1 + dist_vt <= k:
                    edges.add((u, v))
        space.allocate(len(edges), category="subgraph-edges")
        elapsed = time.perf_counter() - started
        return KHopSubgraphResult(
            source=source,
            target=target,
            k=k,
            edges=edges,
            seconds=elapsed,
            space=space,
            algorithm=self.name,
        )


class KHSQPlus(KHSQ):
    """KHSQ+ — same output, adaptive bi-directional distance search."""

    name = "KHSQ+"
    distance_strategy = "adaptive"


def k_hop_subgraph(
    graph: DiGraph, source: Vertex, target: Vertex, k: int, optimized: bool = True
) -> KHopSubgraphResult:
    """Convenience wrapper returning ``G^k_st`` (KHSQ+ by default)."""
    algorithm = KHSQPlus(graph) if optimized else KHSQ(graph)
    return algorithm.query(source, target, k)
