"""k-hop s-t subgraph queries (KHSQ / KHSQ+).

Liu et al.'s hop-constrained subgraph query returns ``G^k_st``: the subgraph
containing *all* s-t paths within ``k`` hops (not only simple ones).  The
paper uses it in two comparisons:

* as an alternative search space for PathEnum (Section 6.7, Table 4), and
* as a preprocessing step for generating ``SPG_k`` with JOIN/PathEnum
  (Section 6.8, Table 5 and Figure 12(b)).

``KHSQ`` computes distances with two single-directional BFS passes; the
optimised ``KHSQ+`` (introduced by the paper) swaps in the adaptive
bi-directional search of Section 3.3.
"""

from repro.khsq.khsq import KHSQ, KHSQPlus, k_hop_subgraph

__all__ = ["KHSQ", "KHSQPlus", "k_hop_subgraph"]
