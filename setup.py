"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
``python setup.py develop`` / legacy editable installs keep working on
offline machines where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
