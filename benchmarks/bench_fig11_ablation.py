"""Figure 11: effectiveness of EVE's pruning strategies (k = 7 in the paper).

Compares Naive EVE (no pruning, single-directional distance search) with
the variants that add forward-looking pruning, bi-directional and adaptive
bi-directional search, and finally the full configuration with search
ordering.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig11
from repro.core.eve import EVE, EVEConfig
from repro.queries.workload import random_reachable_queries

ABLATION_K = 7


def test_fig11_ablation_table(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig11(scale, k=ABLATION_K), rounds=1, iterations=1)
    show_table(rows, f"Figure 11: EVE variants, total time (ms), k = {ABLATION_K}")
    variants = {row["variant"] for row in rows}
    assert "Naive EVE" in variants and "EVE (full)" in variants


def test_fig11_naive_eve(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    query = random_reachable_queries(graph, ABLATION_K, 1, seed=scale.seed).queries[0]
    engine = EVE(graph, EVEConfig.naive())
    benchmark(engine.query, query.source, query.target, ABLATION_K)


def test_fig11_full_eve(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    query = random_reachable_queries(graph, ABLATION_K, 1, seed=scale.seed).queries[0]
    engine = EVE(graph, EVEConfig())
    benchmark(engine.query, query.source, query.target, ABLATION_K)
