"""Figure 10(c): detailed per-phase time of EVE (k >= 5).

On dense graphs the verification phase grows with ``k``; on sparse graphs
the first two phases (propagation + upper bound) dominate and verification
is marginal.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig10c
from repro.core.eve import EVE
from repro.queries.workload import random_reachable_queries


def test_fig10c_phase_table(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig10c(scale), rounds=1, iterations=1)
    show_table(rows, "Figure 10(c): EVE per-phase total time (ms)")
    assert {row["phase"] for row in rows} == {"propagation", "upper_bound", "verification"}


def test_fig10c_propagation_phase(benchmark, scale):
    from repro.core.distances import compute_distance_index
    from repro.core.essential import propagate_backward, propagate_forward

    graph = scale.load_graph(scale.datasets[0])
    k = max(max(scale.hop_values), 5)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]

    def propagate():
        distances = compute_distance_index(graph, query.source, query.target, k)
        forward = propagate_forward(graph, query.source, query.target, k, distances=distances)
        backward = propagate_backward(graph, query.source, query.target, k, distances=distances)
        return forward, backward

    benchmark(propagate)
