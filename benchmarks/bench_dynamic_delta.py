"""Dynamic graphs: delta-overlay apply cost vs full CSR rebuild.

The point of the overlay design is that a small batch of edge changes
should cost work proportional to the *touched rows*, not the whole
graph: untouched adjacency rows are shared by reference and untouched
CSR runs are spliced with bulk array copies.  This benchmark makes that
claim concrete on a graph large enough for the difference to matter:

* **apply vs rebuild** — applying a small :class:`GraphDelta` through
  :func:`repro.graph.delta.apply_delta` (including the spliced CSR)
  must beat rebuilding a from-scratch :class:`DiGraph` over the mutated
  edge list by >= ``OVERLAY_SPEEDUP_BAR`` (best of repeats, identical
  resulting adjacency asserted).
* **scoped invalidation retention** — on a localized-mutation workload
  (cached queries clustered away from the touched region), the engine's
  k-ball scoped invalidation must retain >= ``RETENTION_BAR`` of the
  cache, and the retained entries must keep serving hits.
"""

from __future__ import annotations

import random
import time
from typing import List, Tuple

from repro.graph.delta import GraphDelta, apply_delta
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.service import SPGEngine

#: Overlay apply (small delta, large graph) vs full rebuild, best of repeats.
OVERLAY_SPEEDUP_BAR = 1.5

#: Scoped invalidation must keep at least this fraction of cache entries
#: on a mutation far away from every cached query's k-ball.
RETENTION_BAR = 0.5

APPLY_REPEATS = 5

#: Large enough that a full rebuild clearly pays O(n + m); small enough
#: that the benchmark stays in CI budget at the tiny preset.
NUM_VERTICES = 20_000
AVG_DEGREE = 4.0


def _delta_for(graph: DiGraph, rng: random.Random, changes: int) -> GraphDelta:
    inserts: List[Tuple[int, int]] = []
    while len(inserts) < changes:
        u, v = rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices)
        if u != v and not graph.has_edge(u, v):
            inserts.append((u, v))
    deletes = rng.sample(sorted(graph.edge_set()), changes)
    deletes = [edge for edge in deletes if edge not in set(inserts)]
    return GraphDelta(inserts=inserts, deletes=deletes)


def test_overlay_apply_beats_full_rebuild(benchmark, show_table):
    rng = random.Random(97)
    graph = erdos_renyi(NUM_VERTICES, AVG_DEGREE, seed=97, name="delta-bench")
    delta = _delta_for(graph, rng, changes=32)

    def apply_overlay():
        view = apply_delta(graph, delta)
        view.csr()  # the spliced CSR is part of the apply cost
        view.csr_reverse()
        return view

    def full_rebuild():
        edges = graph.edge_set()
        edges.difference_update(delta.deletes)
        edges.update(delta.inserts)
        rebuilt = DiGraph(graph.num_vertices, sorted(edges), name="rebuilt")
        rebuilt.csr()
        rebuilt.csr_reverse()
        return rebuilt

    overlay_seconds = []
    rebuild_seconds = []
    view = rebuilt = None
    for _ in range(APPLY_REPEATS):
        started = time.perf_counter()
        view = apply_overlay()
        overlay_seconds.append(time.perf_counter() - started)
        started = time.perf_counter()
        rebuilt = full_rebuild()
        rebuild_seconds.append(time.perf_counter() - started)
    # pytest-benchmark records the overlay apply as the measured operation.
    benchmark.pedantic(apply_overlay, rounds=1, iterations=1)

    assert view == rebuilt
    assert view.csr() is not None and rebuilt.csr() is not None

    best_overlay = min(overlay_seconds)
    best_rebuild = min(rebuild_seconds)
    speedup = best_rebuild / max(best_overlay, 1e-9)
    show_table(
        [
            {
                "graph": f"n={NUM_VERTICES} m={graph.num_edges}",
                "changes": delta.num_inserts + delta.num_deletes,
                "mode": "full rebuild",
                "seconds": round(best_rebuild, 4),
                "speedup": 1.0,
            },
            {
                "graph": f"n={NUM_VERTICES} m={graph.num_edges}",
                "changes": delta.num_inserts + delta.num_deletes,
                "mode": "delta overlay",
                "seconds": round(best_overlay, 4),
                "speedup": round(speedup, 2),
            },
        ],
        "Dynamic graphs: overlay apply vs full CSR rebuild",
    )
    assert speedup >= OVERLAY_SPEEDUP_BAR, (
        f"expected overlay apply >= {OVERLAY_SPEEDUP_BAR}x faster than a full "
        f"rebuild, got {speedup:.2f}x ({best_rebuild:.4f}s vs {best_overlay:.4f}s)"
    )


def _two_cluster_graph(cluster: int, bridge: int, seed: int) -> DiGraph:
    """Two dense clusters joined by one long path (localized k-balls)."""
    rng = random.Random(seed)
    second = cluster + bridge
    edges = set()
    for base in (0, second):
        for _ in range(cluster * 4):
            u = base + rng.randrange(cluster)
            v = base + rng.randrange(cluster)
            if u != v:
                edges.add((u, v))
    for u in range(cluster - 1, second):
        edges.add((u, u + 1))
    return DiGraph(second + cluster, sorted(edges), name="two-cluster")


def test_scoped_invalidation_retention(benchmark, show_table):
    graph = _two_cluster_graph(cluster=40, bridge=12, seed=31)
    rng = random.Random(32)
    with SPGEngine(graph, executor_backend="serial") as engine:
        queries = []
        while len(queries) < 48:
            s, t = rng.randrange(40), rng.randrange(40)
            if s != t:
                queries.append((s, t, rng.choice((3, 4, 5))))
        engine.run_batch(queries)
        entries_before = len(engine.cache)

        far = [edge for edge in graph.edge_set() if edge[0] >= 52]
        delta = GraphDelta(
            inserts=[(53, 70), (54, 71), (55, 72)], deletes=far[:3]
        )
        report = benchmark.pedantic(
            lambda: engine.apply_delta(delta), rounds=1, iterations=1
        )
        total = report.cache_retained + report.cache_invalidated
        retention = report.cache_retained / max(1, total)

        outcomes = engine.run_batch(queries)
        hits = sum(1 for outcome in outcomes if outcome.cached)
        show_table(
            [
                {
                    "entries": entries_before,
                    "invalidated": report.cache_invalidated,
                    "retained": report.cache_retained,
                    "retention": f"{retention:.0%}",
                    "post-delta hits": f"{hits}/{len(queries)}",
                }
            ],
            "Dynamic graphs: scoped invalidation on a localized mutation",
        )
        assert retention >= RETENTION_BAR, (
            f"scoped invalidation retained only {retention:.0%} "
            f"(bar {RETENTION_BAR:.0%}) on a localized mutation"
        )
        assert hits >= report.cache_retained
