"""Figure 11 companion: propagation + labelling kernel, dict vs flat-buffer.

The Figure 11 ablation varies EVE's distance-search strategy; this file
regression-guards the *other* two phase-2 kernels along the same lines as
``bench_fig10b_distance.py`` does for distances: it times the retained
dict/frozenset propagation + per-edge labelling oracles
(:mod:`repro.core.essential_reference` /
:mod:`repro.core.labeling_reference`) against the CSR flat-buffer path
(:mod:`repro.core.essential` / :mod:`repro.core.labeling`) and asserts the
>= 1.5x speedup that justified moving those phases onto the flat-array
machinery.

The workload follows the Figure 10(b) observation: pairs whose distance is
small relative to ``k`` have the richest candidate spaces, which is where
essential-vertex propagation and labelling dominate per-query latency —
exactly the per-miss profile the serving engine sees.
"""

from __future__ import annotations

import time

import pytest

from repro.core import essential, essential_reference, labeling, labeling_reference
from repro.core.distances import compute_distance_index
from repro.core.eve import QueryScratch
from repro.core.verification import verify_undetermined_edges
from repro.graph.generators import erdos_renyi
from repro.queries.workload import distance_stratified_queries


def _close_pair_queries(graph, k, seed, per_distance=4, distances=(1, 2, 3)):
    buckets = distance_stratified_queries(
        graph, k, per_distance=per_distance, seed=seed, distances=list(distances)
    )
    return [
        (query.source, query.target)
        for distance in distances
        for query in buckets[distance].queries
    ]


def test_fig11_labeling_kernel_speedup(benchmark, scale, show_table):
    """Old dict propagation+labelling vs the flat kernel, answer-checked.

    Cross-checks every stored EV set, every label and the boundary maps on
    the run's dataset proxies first (timing means nothing unless the
    kernels agree), then times both sides on a generated graph large enough
    for kernel cost to dominate, with the flat side reusing one pooled-style
    scratch bundle (the serving configuration).  Asserts the acceptance bar
    of a >= 1.5x speedup.
    """
    scratch = QueryScratch()

    # ------------------------------------------------------------------
    # Answer check on the run's dataset proxies.
    proxy = max(
        (scale.load_graph(code) for code in scale.datasets),
        key=lambda g: g.num_edges,
    )
    proxy_k = max(scale.hop_values)
    for query in scale.workload(proxy, proxy_k).queries:
        for prune in (True, False):
            index = compute_distance_index(
                proxy, query.source, query.target, query.k, scratch=scratch
            )
            forward = essential.propagate_forward(
                proxy, query.source, query.target, query.k,
                distances=index, prune=prune, scratch=scratch.essential,
            )
            backward = essential.propagate_backward(
                proxy, query.source, query.target, query.k,
                distances=index, prune=prune, scratch=scratch.essential,
            )
            upper = labeling.compute_upper_bound(
                proxy, query.source, query.target, query.k, index, forward, backward
            )
            ref_forward = essential_reference.propagate_forward(
                proxy, query.source, query.target, query.k,
                distances=index, prune=prune,
            )
            ref_backward = essential_reference.propagate_backward(
                proxy, query.source, query.target, query.k,
                distances=index, prune=prune,
            )
            ref_upper = labeling_reference.compute_upper_bound(
                proxy, query.source, query.target, query.k,
                index, ref_forward, ref_backward,
            )
            for vertex in proxy.vertices():
                for level in range(query.k):
                    assert forward.get(vertex, level) == ref_forward.get(vertex, level)
                    assert backward.get(vertex, level) == ref_backward.get(vertex, level)
            assert upper.labels == ref_upper.labels
            assert upper.departures == ref_upper.departures
            assert upper.arrivals == ref_upper.arrivals
            assert verify_undetermined_edges(upper) == verify_undetermined_edges(ref_upper)

    # ------------------------------------------------------------------
    # Time on a graph big enough that kernel cost dominates, on the
    # close-pair workload where propagation/labelling dominate the query.
    graph = erdos_renyi(20_000, 8.0, seed=scale.seed, name="labeling-bench")
    k = 7
    graph.csr()
    graph.csr_reverse()
    queries = _close_pair_queries(graph, k, seed=scale.seed)
    if not queries:  # pragma: no cover - generator always has close pairs
        pytest.skip("no close pairs in the generated benchmark graph")
    # Distance indexes are shared, precomputed inputs: both kernels consume
    # the same maps (as they do inside EVE), so only phase 2 is timed.
    indexes = [compute_distance_index(graph, s, t, k) for s, t in queries]
    pairs = list(zip(queries, indexes))
    # Best-of-5 on both sides: the asserted ratio gates CI on shared
    # runners, so buy noise headroom with extra rounds (each is ~100ms).
    rounds = 5

    def run_reference() -> float:
        started = time.perf_counter()
        for (s, t), index in pairs:
            forward = essential_reference.propagate_forward(
                graph, s, t, k, distances=index
            )
            backward = essential_reference.propagate_backward(
                graph, s, t, k, distances=index
            )
            labeling_reference.compute_upper_bound(
                graph, s, t, k, index, forward, backward
            )
        return time.perf_counter() - started

    def run_flat() -> float:
        started = time.perf_counter()
        for (s, t), index in pairs:
            forward = essential.propagate_forward(
                graph, s, t, k, distances=index, scratch=scratch.essential
            )
            backward = essential.propagate_backward(
                graph, s, t, k, distances=index, scratch=scratch.essential
            )
            labeling.compute_upper_bound(graph, s, t, k, index, forward, backward)
        return time.perf_counter() - started

    reference_seconds = min(run_reference() for _ in range(rounds))
    # pedantic returns run_flat's result (the last round's wall time); fold
    # in extra rounds so both sides report their best-of-N.
    flat_seconds = benchmark.pedantic(run_flat, rounds=rounds, iterations=1)
    flat_seconds = min(flat_seconds, *(run_flat() for _ in range(rounds - 1)))

    speedup = reference_seconds / max(flat_seconds, 1e-9)
    show_table(
        [
            {
                "graph": graph.name,
                "queries": len(pairs),
                "kernel": "dict (reference)",
                "seconds": round(reference_seconds, 4),
                "speedup": 1.0,
            },
            {
                "graph": graph.name,
                "queries": len(pairs),
                "kernel": "flat CSR + scratch",
                "seconds": round(flat_seconds, 4),
                "speedup": round(speedup, 2),
            },
        ],
        f"Figure 11 kernel: dict vs flat propagation + labelling, k = {k}",
    )
    assert speedup >= 1.5, (
        f"expected the flat propagation+labelling kernel to be >= 1.5x faster "
        f"than the dict kernel on {graph.name}, got {speedup:.2f}x "
        f"({reference_seconds:.4f}s vs {flat_seconds:.4f}s)"
    )


def test_fig11_labeling_serving_allocations(scale):
    """Zero per-query propagation allocation on the batch serving path.

    The engine-level twin of the kernel benchmark's claim: a single-worker
    batch checks out exactly one scratch bundle, so the new
    ``propagation_scratch_*`` counters show one allocation however many
    cache misses the batch computes.
    """
    from repro.service import SPGEngine

    graph = erdos_renyi(2_000, 4.0, seed=scale.seed, name="labeling-serving")
    queries = _close_pair_queries(graph, 5, seed=scale.seed, per_distance=6)
    batch = [(s, t, 5) for s, t in queries]
    with SPGEngine(graph, cache_size=0, max_workers=1) as engine:
        report = engine.run_batch(batch)
        assert report.num_ok == len(batch)
        stats = engine.stats_snapshot()
    assert stats["propagation_scratch_allocations"] == 1
    assert (
        stats["propagation_scratch_allocations"] + stats["propagation_scratch_reuses"]
        == stats["cache_misses"]
    )
