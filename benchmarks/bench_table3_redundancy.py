"""Table 3: average redundant ratio of the upper-bound graph (k >= 5).

The redundant ratio ``r_D = (|E(SPGu_k)| - |E(SPG_k)|) / |E(SPG_k)|``
measures how tight the essential-vertex upper bound is; the paper reports
well under 1% for most graphs.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table3
from repro.core.eve import EVE
from repro.queries.workload import random_reachable_queries


def test_table3_redundancy(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_table3(scale), rounds=1, iterations=1)
    show_table(rows, "Table 3: average redundant ratio r_D")
    for row in rows:
        assert row["avg_redundant_ratio"] >= 0.0
        # The upper bound is tight: a small single-digit-percent redundancy
        # is the expected order of magnitude even on synthetic proxies.
        assert row["avg_redundant_ratio"] < 1.0


def test_table3_upper_bound_probe(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    k = max(max(scale.hop_values), 5)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]
    engine = EVE(graph)

    def run():
        return engine.upper_bound(query.source, query.target, k).num_upper_bound_edges

    benchmark(run)
