"""Figure 2(b): number of edges in SPG_k vs number of s-t simple paths.

The paper's motivation plot: as ``k`` grows, the number of simple paths
explodes while the number of edges in the simple path graph stays bounded
by ``|E|``.  The benchmark times one EVE query on the densest configured
proxy; the printed table reports the averaged series for two graphs.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig2b
from repro.core.eve import EVE
from repro.queries.workload import random_reachable_queries


def test_fig2b_edges_vs_paths(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig2b(scale), rounds=1, iterations=1)
    show_table(rows, "Figure 2(b): |E(SPG_k)| vs #simple paths (averages per query)")
    for row in rows:
        # The path graph never has more edges than 2x paths * k but, more
        # importantly, it is bounded by the graph size while paths explode.
        assert row["avg_spg_edges"] >= 0


def test_fig2b_single_spg_query(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    query = random_reachable_queries(graph, max(scale.hop_values), 1, seed=scale.seed).queries[0]
    engine = EVE(graph)
    result = benchmark(engine.query, query.source, query.target, query.k)
    assert result.exact
