"""Figure 13 / Section 6.9: fraud-detection case study.

A temporal transaction network with planted fraud rings is generated; for
the flagged ring-closing payment ``e(t, s)`` the benchmark extracts
``SPG_k(s, t)`` over the last-``dT``-days snapshot and checks that the
planted ring is recovered.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig13
from repro.core.eve import EVE
from repro.datasets.transaction import generate_transaction_network


def test_fig13_case_study(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig13(scale), rounds=1, iterations=1)
    show_table(rows, "Figure 13: transaction-network case study")
    row = rows[0]
    assert row["ring_recovered"] >= row["planted_ring_size"] - 1
    assert row["suspicious_accounts"] >= row["ring_recovered"]


def test_fig13_query_latency(benchmark, scale):
    network = generate_transaction_network(
        num_accounts=400, num_transactions=3000, seed=scale.seed
    )
    payer, payee, _ = network.flagged_edge
    snapshot = network.window_around_flag(7.0)
    engine = EVE(snapshot)
    benchmark(engine.query, payee, payer, 5)
