"""Service-layer throughput: batch engine vs the sequential query loop.

A serving deployment answers *workloads*, not single queries: rolling
screening sweeps repeat queries (cache hits) and many sources are checked
against the same hub (shared backward passes).  This benchmark times the
seed's sequential ``build_spg`` loop against ``SPGEngine.run_batch`` on
such a cached/target-grouped workload and asserts the acceptance bar of a
>= 1.5x speedup at identical answers.  A second measurement isolates the
planner's backward-pass reuse on a completely cold, deduplicated batch.
Both paths additionally assert — via the scratch-pool counters in
:class:`repro.service.stats.EngineStats` — that cache misses allocate no
per-query distance buffers: allocations are bounded by the worker count,
everything else reuses pooled flat buffers.

A third measurement compares executor backends on a CPU-bound, cold,
deduplicated multi-query workload: the thread backend is GIL-bound on one
core, the process backend runs EVE queries truly in parallel.  On a
multi-core runner the process backend must be >= 1.5x faster than the
thread backend (answers identical); on a single available core the
assertion is skipped — there is nothing to parallelise — but the
identical-answers check still runs.

Two sharded-serving measurements close the loop on the partition-parallel
PR: per-worker peak RSS for spawn-family pools must *drop* when workers
attach to the shared-memory CSR segment instead of unpickling the graph
(the zero-copy claim, asserted via worker probes), and the sharded engine
must serve a CPU-bound workload without regressing against the plain
process backend (identical answers, bounded slowdown).

A telemetry measurement guards the observability PR's overhead claim:
with tracing *disabled* (no tracer, or a disabled tracer the engine
normalises to ``None``) the query path pays one branch per telemetry site
and must stay within 3% of untraced serving; with a live
:class:`repro.telemetry.Tracer` attached, per-phase span recording must
stay within a modest slack of untraced serving.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.core.eve import build_spg
from repro.exceptions import QueryError
from repro.graph.generators import erdos_renyi
from repro.queries.workload import random_reachable_queries
from repro.queries.workload import target_grouped_queries
from repro.service import Call, ShardedSPGEngine, SPGEngine, default_worker_count
from repro.service.engine import _worker_graph_probe
from repro.telemetry import NOOP_TRACER, Tracer

REPEAT_SWEEPS = 3

#: Thread-vs-process acceptance bar on CPU-bound multi-query workloads.
PARALLEL_SPEEDUP_BAR = 1.5

#: Disabled tracing (the engine normalises a disabled tracer to ``None``,
#: leaving one branch per telemetry site) may not slow serving by more
#: than this fraction — the PR's "< 3% when disabled" acceptance bar.
TRACING_DISABLED_SLACK = 0.03

#: A live tracer records ~6 span events (attribute dicts included) per
#: cache miss; on sub-millisecond queries that is a few percent, so the
#: enabled bar is looser than the disabled one.
TRACING_ENABLED_SLACK = 0.15

#: Minimum per-worker peak-RSS saving (KB) the shared-memory CSR segment
#: must deliver over pickled-graph workers on the RSS benchmark graph (the
#: measured saving is ~26 MB; 8 MB leaves slack for allocator noise).
SHARED_MEMORY_RSS_SAVING_KB = 8 * 1024

#: The sharded engine must not be more than this factor slower than the
#: plain process engine on a CPU-bound workload (identical answers).
SHARDED_REGRESSION_SLACK = 1.5


def _grouped_workload(scale) -> Tuple[object, List[Tuple[int, int, int]]]:
    """A target-grouped workload on the first dataset dense enough to host one."""
    k = max(scale.hop_values)
    shapes = [(4, 4), (3, 3), (2, 2)]
    for code in scale.datasets:
        graph = scale.load_graph(code)
        for num_targets, per_target in shapes:
            try:
                workload = target_grouped_queries(
                    graph, k, num_targets, per_target, seed=scale.seed
                )
            except QueryError:
                continue
            return graph, workload.as_batch()
    raise QueryError("no scale dataset could host a target-grouped workload")


def test_service_batch_speedup(benchmark, scale, show_table):
    graph, unique_queries = _grouped_workload(scale)
    # Rolling sweeps: the same workload arrives REPEAT_SWEEPS times.
    workload = unique_queries * REPEAT_SWEEPS

    started = time.perf_counter()
    sequential = [build_spg(graph, s, t, k) for s, t, k in workload]
    sequential_seconds = time.perf_counter() - started

    engine = SPGEngine(graph, max_workers=1)
    report = benchmark.pedantic(
        lambda: engine.run_batch(workload), rounds=1, iterations=1
    )
    batch_seconds = report.wall_seconds

    assert [outcome.edges for outcome in report] == [r.edges for r in sequential]
    speedup = sequential_seconds / max(batch_seconds, 1e-9)
    show_table(
        [
            {
                "graph": graph.name,
                "queries": len(workload),
                "unique": len(unique_queries),
                "mode": "sequential loop",
                "seconds": round(sequential_seconds, 4),
                "speedup": 1.0,
            },
            {
                "graph": graph.name,
                "queries": len(workload),
                "unique": len(unique_queries),
                "mode": "engine batch",
                "seconds": round(batch_seconds, 4),
                "speedup": round(speedup, 2),
            },
        ],
        "Service throughput: batch engine vs sequential loop",
    )
    assert report.cache_hits >= len(unique_queries) * (REPEAT_SWEEPS - 1)
    assert speedup >= 1.5, (
        f"expected >= 1.5x speedup on a cached/target-grouped workload, "
        f"got {speedup:.2f}x ({sequential_seconds:.4f}s vs {batch_seconds:.4f}s)"
    )
    _assert_zero_per_query_allocation(engine, max_workers=1)


def _assert_zero_per_query_allocation(engine: SPGEngine, max_workers: int) -> None:
    """The batch path must not allocate distance buffers per query.

    Every executed query checks out exactly one scratch from the engine
    pool; allocations are bounded by the number of concurrent workers and
    everything else is a reuse of pooled flat buffers — i.e. zero per-query
    distance-dict (or buffer) allocation on cache misses.  This holds on
    *every* executor backend: in-process backends count checkouts directly,
    and process-pool workers count into their worker-local pools and ship
    the deltas back with each task result
    (:meth:`repro.service.stats.EngineStats.merge_counters`), so the
    process backend is no longer a counter blind spot.  The exact
    miss-count equality below assumes an error-free workload (errored or
    malformed queries count as misses without executing), which both
    benchmark workloads are.
    """
    stats = engine.stats_snapshot()
    assert stats["errors"] == 0
    computed = stats["cache_misses"]
    for prefix in ("scratch", "propagation_scratch", "verification_scratch"):
        allocations = stats[f"{prefix}_allocations"]
        reuses = stats[f"{prefix}_reuses"]
        assert allocations + reuses == computed, (
            f"every computed query should borrow exactly one {prefix} bundle: "
            f"{allocations} allocations + {reuses} reuses != {computed} misses"
        )
        assert allocations <= max_workers, (
            f"{prefix} allocations must be bounded by the worker count "
            f"({max_workers}), not by the query count: got {allocations}"
        )
        assert reuses == computed - allocations


def _parallel_workload(scale) -> Tuple[object, List[Tuple[int, int, int]]]:
    """A cold, deduplicated, CPU-bound workload with per-query parallelism.

    Random reachable queries rarely share a target, so the planner produces
    many singleton groups — the unit of executor parallelism — and neither
    the cache nor the shared backward pass can help: wall time is pure EVE
    compute, which is what separates the GIL-bound thread backend from the
    process backend.
    """
    k = max(scale.hop_values)
    graph = scale.load_graph(scale.datasets[-1])
    count = max(48, 16 * default_worker_count())
    workload = random_reachable_queries(graph, k, count, seed=scale.seed)
    return graph, sorted(set(workload.as_batch()))


def test_service_thread_vs_process_backend(benchmark, scale, show_table):
    """Process pool >= 1.5x over threads on CPU-bound batches (multi-core)."""
    graph, queries = _parallel_workload(scale)
    workers = default_worker_count()
    sequential = [build_spg(graph, s, t, k) for s, t, k in queries]
    expected = [result.edges for result in sequential]

    # Best-of-3 timings: the tiny default scale measures only tens of ms of
    # compute, so a single round is at the mercy of one scheduling hiccup.
    timings = {}
    reports = {}
    for backend in ("thread", "process"):
        with SPGEngine(
            graph, cache_size=0, max_workers=workers, executor_backend=backend
        ) as engine:
            engine.run_batch(queries)  # warm the pool (and ship the graph once)
            if backend == "process":
                report = benchmark.pedantic(
                    lambda: engine.run_batch(queries), rounds=1, iterations=1
                )
            else:
                report = engine.run_batch(queries)
            best = report.wall_seconds
            for _ in range(2):
                best = min(best, engine.run_batch(queries).wall_seconds)
            timings[backend] = best
            reports[backend] = report
            # The zero-per-query-allocation property holds on both sides:
            # the process backend's checkouts arrive as worker deltas.
            _assert_zero_per_query_allocation(engine, max_workers=workers)
        assert [outcome.edges for outcome in reports[backend]] == expected

    speedup = timings["thread"] / max(timings["process"], 1e-9)
    show_table(
        [
            {
                "graph": graph.name,
                "queries": len(queries),
                "workers": workers,
                "backend": backend,
                "seconds": round(timings[backend], 4),
                "speedup_vs_thread": round(timings["thread"] / max(timings[backend], 1e-9), 2),
            }
            for backend in ("thread", "process")
        ],
        "Service parallel serving: thread vs process backend",
    )
    # The full 1.5x bar needs headroom over IPC overhead: on exactly 2-3
    # cores the theoretical ceiling (2-3x) is too close to the bar to be
    # robust, so only a mild win is required there; one core cannot win.
    if workers >= 4:
        bar = PARALLEL_SPEEDUP_BAR
    elif workers >= 2:
        bar = 1.1
    else:
        bar = None
    if bar is not None:
        assert speedup >= bar, (
            f"expected the process backend >= {bar}x over threads on a "
            f"CPU-bound workload with {workers} workers, got {speedup:.2f}x "
            f"({timings['thread']:.4f}s vs {timings['process']:.4f}s)"
        )
    else:
        print(
            "\n[skipped speedup assertion: only one CPU available to this "
            "process — the process backend cannot beat threads without cores]"
        )


def _max_worker_peak_rss_kb(engine: SPGEngine, workers: int) -> Tuple[int, bool]:
    """``(max peak RSS over workers, every worker shared)`` via pool probes."""
    probes = engine._ensure_backend().run([Call(_worker_graph_probe)] * workers)
    return (
        max(probe["peak_rss_kb"] for probe in probes),
        all(probe["shared"] for probe in probes),
    )


def test_service_shared_memory_worker_rss(benchmark, show_table):
    """Shared-memory CSR segments shrink per-worker RSS vs pickled graphs.

    The pool start method defaults to ``forkserver`` (spawn family: workers
    never inherit the parent's graph copy-on-write), so worker RSS isolates
    how the graph *arrives*: unpickling rebuilds adjacency lists and the
    edge set per worker, while attaching to the shared segment maps the CSR
    arrays zero-copy.  The probe also proves no unpickling happened — the
    worker graph must be the shared ``CSRGraphView``.
    """
    graph = erdos_renyi(15_000, 8.0, seed=1, name="rss-bench")
    workers = min(2, default_worker_count())
    warmup = [(0, 1, 2), (1, 2, 2)]
    peaks = {}
    for shared in (True, False):
        def serve(shared=shared):
            with SPGEngine(
                graph,
                executor_backend="process",
                max_workers=workers,
                shared_memory=shared,
            ) as engine:
                engine.run_batch(warmup)
                return _max_worker_peak_rss_kb(engine, workers)

        if shared:
            peaks[shared] = benchmark.pedantic(serve, rounds=1, iterations=1)
        else:
            peaks[shared] = serve()
    shared_peak, shared_flag = peaks[True]
    pickled_peak, pickled_flag = peaks[False]
    assert shared_flag, "shared-memory workers must serve the CSRGraphView"
    assert not pickled_flag, "pickled workers must not report a shared view"
    show_table(
        [
            {
                "graph": graph.name,
                "edges": graph.num_edges,
                "workers": workers,
                "worker graph": "shared-memory view" if shared else "pickled DiGraph",
                "peak_rss_mb": round(peak / 1024.0, 1),
            }
            for shared, (peak, _) in sorted(peaks.items(), reverse=True)
        ],
        "Sharded serving: per-worker peak RSS, shared segment vs pickled graph",
    )
    saving = pickled_peak - shared_peak
    assert saving >= SHARED_MEMORY_RSS_SAVING_KB, (
        f"expected shared-memory workers to save >= "
        f"{SHARED_MEMORY_RSS_SAVING_KB} KB of peak RSS over pickled-graph "
        f"workers, got {saving} KB ({shared_peak} vs {pickled_peak})"
    )


def test_service_sharded_no_throughput_regression(benchmark, scale, show_table):
    """Sharded serving stays within slack of the plain process engine."""
    graph, queries = _parallel_workload(scale)
    workers = default_worker_count()
    expected = [build_spg(graph, s, t, k).edges for s, t, k in queries]

    timings = {}
    for label, factory in (
        ("process", lambda: SPGEngine(
            graph, cache_size=0, max_workers=workers, executor_backend="process"
        )),
        ("sharded-4", lambda: ShardedSPGEngine(
            graph, cache_size=0, max_workers=workers, executor_backend="process",
            num_shards=4,
        )),
    ):
        with factory() as engine:
            engine.run_batch(queries)  # warm pool + segment attach
            if label == "sharded-4":
                report = benchmark.pedantic(
                    lambda: engine.run_batch(queries), rounds=1, iterations=1
                )
            else:
                report = engine.run_batch(queries)
            best = report.wall_seconds
            for _ in range(2):
                best = min(best, engine.run_batch(queries).wall_seconds)
            timings[label] = best
            assert [outcome.edges for outcome in report] == expected, label
    show_table(
        [
            {
                "graph": graph.name,
                "queries": len(queries),
                "workers": workers,
                "engine": label,
                "seconds": round(seconds, 4),
            }
            for label, seconds in timings.items()
        ],
        "Sharded serving: throughput vs the plain process engine",
    )
    assert timings["sharded-4"] <= timings["process"] * SHARDED_REGRESSION_SLACK, (
        f"sharded serving regressed: {timings['sharded-4']:.4f}s vs "
        f"{timings['process']:.4f}s plain "
        f"(allowed slack {SHARDED_REGRESSION_SLACK}x)"
    )


def test_service_tracing_overhead(benchmark, scale, show_table):
    """Disabled tracing < 3%; enabled tracing within a modest slack.

    Best-of-7 serving of a cold, deduplicated workload on the serial
    backend (no pool noise) in three modes: untraced (the baseline),
    *disabled* (:data:`NOOP_TRACER` attached — the engine normalises it to
    ``None``, leaving one branch per telemetry site on the hot path), and
    *traced* (a live :class:`Tracer`).  The EVE driver reuses its existing
    :class:`PhaseStats` clock reads for spans, so even the traced path adds
    no extra timing calls — only event construction.
    """
    graph, queries = _parallel_workload(scale)
    rounds = 7
    timings = {}
    tracer = Tracer()
    for label in ("untraced", "disabled", "traced"):
        with SPGEngine(
            graph, cache_size=0, max_workers=1, executor_backend="serial"
        ) as engine:
            if label == "disabled":
                engine.tracer = NOOP_TRACER
                assert engine.tracer is None, (
                    "a disabled tracer must normalise to None on the engine"
                )
            elif label == "traced":
                engine.tracer = tracer
            engine.run_batch(queries)  # warm the scratch pool
            tracer.clear()

            def serve():
                tracer.clear()  # keep the ring from wrapping across rounds
                return engine.run_batch(queries).wall_seconds

            if label == "traced":
                best = benchmark.pedantic(serve, rounds=1, iterations=1)
            else:
                best = serve()
            for _ in range(rounds - 1):
                best = min(best, serve())
            timings[label] = best
    assert len(tracer) > 0, "the traced run must actually record spans"
    baseline = max(timings["untraced"], 1e-9)
    show_table(
        [
            {
                "graph": graph.name,
                "queries": len(queries),
                "mode": label,
                "seconds": round(seconds, 4),
                "overhead_pct": round((seconds / baseline - 1.0) * 100.0, 2),
            }
            for label, seconds in timings.items()
        ],
        "Service telemetry: tracing overhead (untraced vs disabled vs traced)",
    )
    disabled_overhead = timings["disabled"] / baseline - 1.0
    assert disabled_overhead <= TRACING_DISABLED_SLACK, (
        f"disabled tracing exceeded the {TRACING_DISABLED_SLACK:.0%} overhead "
        f"bar: {disabled_overhead:.2%} "
        f"({timings['disabled']:.4f}s vs {timings['untraced']:.4f}s untraced)"
    )
    traced_overhead = timings["traced"] / baseline - 1.0
    assert traced_overhead <= TRACING_ENABLED_SLACK, (
        f"tracing-enabled serving exceeded the {TRACING_ENABLED_SLACK:.0%} "
        f"overhead slack: {traced_overhead:.2%} "
        f"({timings['traced']:.4f}s vs {timings['untraced']:.4f}s untraced)"
    )


def test_service_cold_backward_reuse(benchmark, scale, show_table):
    """Cold deduplicated batch: only the shared backward passes help."""
    graph, unique_queries = _grouped_workload(scale)

    started = time.perf_counter()
    sequential = [build_spg(graph, s, t, k) for s, t, k in unique_queries]
    sequential_seconds = time.perf_counter() - started

    engine = SPGEngine(graph, cache_size=0, max_workers=1)
    report = benchmark.pedantic(
        lambda: engine.run_batch(unique_queries), rounds=1, iterations=1
    )
    assert [outcome.edges for outcome in report] == [r.edges for r in sequential]
    assert report.reused_backward_passes > 0
    _assert_zero_per_query_allocation(engine, max_workers=1)
    show_table(
        [
            {
                "graph": graph.name,
                "queries": len(unique_queries),
                "shared_groups": report.shared_groups,
                "reused_passes": report.reused_backward_passes,
                "sequential_s": round(sequential_seconds, 4),
                "batch_s": round(report.wall_seconds, 4),
            }
        ],
        "Service cold batch: shared backward passes",
    )
