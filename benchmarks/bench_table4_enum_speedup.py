"""Table 4: speedups for hop-constrained s-t path enumeration.

PathEnum is run on three alternative search spaces: ``G^k_st`` produced by
KHSQ and KHSQ+, and ``SPG_k`` produced by EVE.  Both wall-clock and
work-based (neighbour expansions) speedups are reported; the work column is
the scale-independent view of the effect (see EXPERIMENTS.md for why the
wall-clock column needs larger graphs to cross 1.0 in pure Python).
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table4
from repro.core.eve import EVE
from repro.enumeration.pathenum import PathEnum
from repro.queries.workload import random_reachable_queries


def test_table4_speedups(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_table4(scale), rounds=1, iterations=1)
    show_table(rows, "Table 4: PathEnum speedups per search space")
    eve_rows = [row for row in rows if row["search_space"] == "EVE"]
    khsq_rows = [row for row in rows if row["search_space"] == "KHSQ"]
    assert eve_rows and khsq_rows
    # Work-based: the SPG_k search space never requires more exploration than
    # the full graph.  A small tolerance absorbs per-query budget truncation
    # (a truncated full-graph baseline under-reports its own work).
    for row in eve_rows:
        assert row["work_speedup"] >= 0.9 or row["work_speedup"] == float("inf")


def test_table4_pathenum_on_spg(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    k = max(scale.hop_values)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]
    spg = EVE(graph).query(query.source, query.target, k).to_graph(graph)
    enumerator = PathEnum(spg)
    benchmark(enumerator.enumerate, query.source, query.target, k)
