"""Figure 9: maximum / median / minimum space cost per algorithm at k = 6.

Space is measured as the peak number of retained items (see
``repro.core.space``): JOIN stores whole partial-path sets, PathEnum fewer
thanks to its index, EVE only essential-vertex sets and boundary state.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig9
from repro.bench.harness import AlgorithmRegistry
from repro.queries.workload import random_reachable_queries


def test_fig9_space_table(benchmark, scale, show_table):
    k = max(scale.hop_values)
    rows = benchmark.pedantic(lambda: experiment_fig9(scale, k=k), rounds=1, iterations=1)
    show_table(rows, f"Figure 9: peak retained items at k = {k}")
    assert all(row["space_max"] >= row["space_median"] >= row["space_min"] for row in rows)


def test_fig9_eve_space_probe(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    registry = AlgorithmRegistry(graph, scale.per_query_budget)
    k = max(scale.hop_values)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]
    eve = registry.build("EVE")

    def run():
        return eve(query.source, query.target, k).space.peak

    peak = benchmark(run)
    assert peak >= 0
