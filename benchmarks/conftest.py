"""Shared fixtures and scale control for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper by calling
the corresponding driver in :mod:`repro.bench.experiments` and printing the
resulting rows, while pytest-benchmark times the core measured operation.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable
(``tiny`` | ``small`` | ``paper``); the default is ``tiny`` so a full
``pytest benchmarks/ --benchmark-only`` run completes in a few minutes on a
laptop.  Use ``small`` or ``paper`` for closer-to-the-paper numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import ExperimentScale
from repro.bench.report import render_table


def _resolve_scale() -> ExperimentScale:
    preset = os.environ.get("REPRO_BENCH_SCALE", "tiny").lower()
    presets = {
        "tiny": ExperimentScale.tiny,
        "small": ExperimentScale.small,
        "paper": ExperimentScale.paper,
    }
    if preset not in presets:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(presets)}, got {preset!r}"
        )
    return presets[preset]()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale shared by every benchmark in the session."""
    return _resolve_scale()


@pytest.fixture(scope="session")
def show_table():
    """Print an experiment's rows and append them to ``benchmarks/latest_results.txt``.

    pytest captures stdout for passing tests, so the regenerated tables are
    also persisted to a results file that survives the run (the final state
    of that file is what EXPERIMENTS.md quotes).
    """
    results_path = os.path.join(os.path.dirname(__file__), "latest_results.txt")

    def _show(rows, title: str) -> None:
        table = render_table(rows, title=title)
        print()
        print(table)
        with open(results_path, "a", encoding="utf-8") as handle:
            handle.write(table + "\n\n")

    # Start each benchmark session with a fresh results file.
    with open(results_path, "w", encoding="utf-8") as handle:
        handle.write(f"Benchmark tables (scale preset: {os.environ.get('REPRO_BENCH_SCALE', 'tiny')})\n\n")
    return _show
