"""Figure 10(a): maximum space cost as a function of k (paper: graphs wn, bs).

Enumeration baselines' space grows steeply with ``k`` (exponentially more
partial paths), whereas EVE's retained state grows roughly as ``O(k^2 |V|)``
with a visible bump between k = 4 and k = 5 when the verification machinery
(departures, arrivals, stacks) starts being maintained.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig10a
from repro.core.eve import EVE
from repro.queries.workload import random_reachable_queries


def test_fig10a_space_vs_k_table(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig10a(scale), rounds=1, iterations=1)
    show_table(rows, "Figure 10(a): maximum peak retained items vs k")
    assert rows


def test_fig10a_eve_growth_with_k(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    engine = EVE(graph)
    k = max(scale.hop_values)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]
    result = benchmark(engine.query, query.source, query.target, k)
    assert result.space.peak >= 0
