"""Figure 10(b): average query time for varying distances between s and t.

Queries whose endpoints are close together (relative to ``k``) have many
more hop-constrained simple paths, so enumeration baselines slow down
sharply for small ``dist(s, t)`` while EVE stays flat — it never touches
individual paths.

This file also regression-guards the CSR refactor of the distance layer:
``test_fig10b_csr_kernel_speedup`` times the retained pure-dict kernel
(:mod:`repro.core.distances_reference`) against the flat-array kernel on
the largest generated graph of the run and asserts the >= 1.5x speedup
that justified the refactor.
"""

from __future__ import annotations

import random
import time

from repro.bench.experiments import experiment_fig10b
from repro.core import distances_reference
from repro.core.distances import DISTANCE_STRATEGIES, DistanceScratch, compute_distance_index
from repro.core.eve import EVE
from repro.graph.generators import erdos_renyi
from repro.queries.workload import distance_stratified_queries


def test_fig10b_distance_table(benchmark, scale, show_table):
    k = max(scale.hop_values)
    rows = benchmark.pedantic(lambda: experiment_fig10b(scale, k=k), rounds=1, iterations=1)
    show_table(rows, f"Figure 10(b): average time (ms) per dist(s, t), k = {k}")
    assert rows


def test_fig10b_eve_close_pair(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    k = max(scale.hop_values)
    buckets = distance_stratified_queries(graph, k, per_distance=1, seed=scale.seed, distances=[1])
    queries = buckets[1].queries
    if not queries:
        import pytest

        pytest.skip("graph proxy has no distance-1 reachable pair")
    engine = EVE(graph)
    query = queries[0]
    benchmark(engine.query, query.source, query.target, k)


def test_fig10b_csr_kernel_speedup(benchmark, scale, show_table):
    """Old dict-based distance kernel vs the CSR kernel, answer-checked.

    Runs every query of the Figure 10(b) workload through all three
    strategies with both kernels on the largest generated graph; the CSR
    side reuses one scratch (the serving configuration).  Asserts identical
    distance maps and the acceptance bar of a >= 1.5x speedup.
    """
    # Answer-check on the run's largest dataset proxy first: timing means
    # nothing unless the kernels agree.
    proxy = max(
        (scale.load_graph(code) for code in scale.datasets),
        key=lambda g: g.num_edges,
    )
    proxy_k = max(scale.hop_values)
    scratch = DistanceScratch()
    for q in scale.workload(proxy, proxy_k).queries:
        for strategy in DISTANCE_STRATEGIES:
            new_index = compute_distance_index(
                proxy, q.source, q.target, q.k, strategy, scratch=scratch
            )
            ref_index = distances_reference.compute_distance_index(
                proxy, q.source, q.target, q.k, strategy
            )
            assert dict(new_index.from_source) == dict(ref_index.from_source)
            assert dict(new_index.to_target) == dict(ref_index.to_target)

    # Time on a graph big enough that kernel cost, not per-call constants,
    # dominates — the scale proxies at the tiny preset are a few hundred
    # edges, where any measurement is noise.  This is the largest generated
    # graph of the benchmark run.
    graph = erdos_renyi(30_000, 6.0, seed=scale.seed, name="kernel-bench")
    k = 6
    rng = random.Random(scale.seed)
    queries = []
    while len(queries) < 8:
        s, t = rng.sample(range(graph.num_vertices), 2)
        queries.append((s, t, k))
    rounds = 3
    # The CSR view is built once per immutable graph; warm it so the timing
    # compares steady-state kernels (a cold build is a one-off O(m) cost).
    graph.csr()
    graph.csr_reverse()

    def run_reference() -> float:
        started = time.perf_counter()
        for s, t, hops in queries:
            for strategy in DISTANCE_STRATEGIES:
                distances_reference.compute_distance_index(graph, s, t, hops, strategy)
        return time.perf_counter() - started

    def run_csr() -> float:
        started = time.perf_counter()
        for s, t, hops in queries:
            for strategy in DISTANCE_STRATEGIES:
                compute_distance_index(graph, s, t, hops, strategy, scratch=scratch)
        return time.perf_counter() - started

    reference_seconds = min(run_reference() for _ in range(rounds))
    # pedantic returns run_csr's result (the last round's wall time); fold in
    # extra rounds so both sides report their best-of-N.
    csr_seconds = benchmark.pedantic(run_csr, rounds=rounds, iterations=1)
    csr_seconds = min(csr_seconds, *(run_csr() for _ in range(rounds - 1)))

    speedup = reference_seconds / max(csr_seconds, 1e-9)
    show_table(
        [
            {
                "graph": graph.name,
                "queries": len(queries) * len(DISTANCE_STRATEGIES),
                "kernel": "dict (reference)",
                "seconds": round(reference_seconds, 4),
                "speedup": 1.0,
            },
            {
                "graph": graph.name,
                "queries": len(queries) * len(DISTANCE_STRATEGIES),
                "kernel": "CSR + scratch",
                "seconds": round(csr_seconds, 4),
                "speedup": round(speedup, 2),
            },
        ],
        f"Figure 10(b) kernel: dict vs CSR distance engine, k = {k}",
    )
    assert speedup >= 1.5, (
        f"expected the CSR kernel to be >= 1.5x faster than the dict kernel "
        f"on {graph.name}, got {speedup:.2f}x "
        f"({reference_seconds:.4f}s vs {csr_seconds:.4f}s)"
    )
