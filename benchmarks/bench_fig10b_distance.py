"""Figure 10(b): average query time for varying distances between s and t.

Queries whose endpoints are close together (relative to ``k``) have many
more hop-constrained simple paths, so enumeration baselines slow down
sharply for small ``dist(s, t)`` while EVE stays flat — it never touches
individual paths.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig10b
from repro.core.eve import EVE
from repro.queries.workload import distance_stratified_queries


def test_fig10b_distance_table(benchmark, scale, show_table):
    k = max(scale.hop_values)
    rows = benchmark.pedantic(lambda: experiment_fig10b(scale, k=k), rounds=1, iterations=1)
    show_table(rows, f"Figure 10(b): average time (ms) per dist(s, t), k = {k}")
    assert rows


def test_fig10b_eve_close_pair(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    k = max(scale.hop_values)
    buckets = distance_stratified_queries(graph, k, per_distance=1, seed=scale.seed, distances=[1])
    queries = buckets[1].queries
    if not queries:
        import pytest

        pytest.skip("graph proxy has no distance-1 reachable pair")
    engine = EVE(graph)
    query = queries[0]
    benchmark(engine.query, query.source, query.target, k)
