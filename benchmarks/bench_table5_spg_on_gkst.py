"""Table 5: speedups for generating SPG_k on G^k_st (k = 6 in the paper).

JOIN and PathEnum generate the simple path graph either on the full graph
or on the k-hop s-t subgraph ``G^k_st`` computed first with KHSQ+; the
table reports the resulting speedup and the average edge-count reduction of
the restricted search space.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table5
from repro.enumeration.join import JoinEnumerator
from repro.enumeration.spg_via_enumeration import EnumerationSPGBuilder
from repro.khsq.khsq import KHSQPlus
from repro.queries.workload import random_reachable_queries


def test_table5_speedups(benchmark, scale, show_table):
    k = max(scale.hop_values)
    rows = benchmark.pedantic(lambda: experiment_table5(scale, k=k), rounds=1, iterations=1)
    show_table(rows, f"Table 5: SPG generation speedups on G^k_st (k = {k})")
    assert {row["algorithm"] for row in rows} == {"JOIN", "PathEnum"}
    for row in rows:
        assert row["avg_edge_reduction"] >= 1.0 or row["avg_edge_reduction"] == 0.0


def test_table5_join_on_gkst(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    k = max(scale.hop_values)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]
    subgraph = KHSQPlus(graph).query(query.source, query.target, k).to_graph(graph)
    builder = EnumerationSPGBuilder(subgraph, JoinEnumerator, scale.per_query_budget)
    benchmark(builder.query, query.source, query.target, k)
