"""Figure 12(a): average coverage ratio r_C = |E(SPG_k)| / |E| versus k.

Graphs with larger average degree show higher coverage ratios (denser
connection between the query endpoints), and coverage grows with ``k``.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig12a
from repro.core.eve import EVE
from repro.queries.workload import random_reachable_queries


def test_fig12a_coverage_table(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig12a(scale), rounds=1, iterations=1)
    show_table(rows, "Figure 12(a): average coverage ratio per graph and k")
    for row in rows:
        assert 0.0 <= row["avg_coverage_ratio"] <= 1.0
    # Coverage is monotone in k for a fixed graph (more hops, more paths).
    for code in scale.datasets:
        series = [row["avg_coverage_ratio"] for row in rows if row["graph"] == code]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))


def test_fig12a_single_query_coverage(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    k = max(scale.hop_values)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]
    engine = EVE(graph)

    def run():
        result = engine.query(query.source, query.target, k)
        return result.coverage_ratio(graph)

    ratio = benchmark(run)
    assert 0.0 <= ratio <= 1.0
