"""Figure 8: total query time of EVE vs the enumeration baselines.

The headline comparison of the paper: EVE answers the whole workload orders
of magnitude faster than generating SPG_k by enumerating paths with JOIN or
PathEnum, and the gap widens with ``k`` and with graph density.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig8
from repro.bench.harness import AlgorithmRegistry
from repro.queries.workload import random_reachable_queries


def test_fig8_total_time_table(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig8(scale), rounds=1, iterations=1)
    show_table(rows, "Figure 8: total time (ms) per graph / k / algorithm")
    # Qualitative shape: summed over the workload, EVE is never slower than
    # the slowest baseline at the largest k on the densest graph family.
    largest_k = max(scale.hop_values)
    for code in scale.datasets:
        eve_ms = sum(
            row["total_ms"] for row in rows
            if row["graph"] == code and row["k"] == largest_k and row["algorithm"] == "EVE"
        )
        worst_baseline_ms = max(
            (row["total_ms"] for row in rows
             if row["graph"] == code and row["k"] == largest_k and row["algorithm"] != "EVE"),
            default=0.0,
        )
        assert eve_ms <= worst_baseline_ms * 10 or worst_baseline_ms == 0.0


def test_fig8_eve_single_query(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    registry = AlgorithmRegistry(graph, scale.per_query_budget)
    query = random_reachable_queries(graph, max(scale.hop_values), 1, seed=scale.seed).queries[0]
    eve = registry.build("EVE")
    benchmark(eve, query.source, query.target, query.k)


def test_fig8_pathenum_single_query(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    registry = AlgorithmRegistry(graph, scale.per_query_budget)
    query = random_reachable_queries(graph, max(scale.hop_values), 1, seed=scale.seed).queries[0]
    baseline = registry.build("PathEnum")
    benchmark(baseline, query.source, query.target, query.k)


def test_fig8_join_single_query(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    registry = AlgorithmRegistry(graph, scale.per_query_budget)
    query = random_reachable_queries(graph, max(scale.hop_values), 1, seed=scale.seed).queries[0]
    baseline = registry.build("JOIN")
    benchmark(baseline, query.source, query.target, query.k)
