"""Figure 13(b) companion: verification kernel, dict/recursive vs flat.

Figure 13's case study attributes the per-query latency of EVE's final
phase to Algorithm 3; this file regression-guards that phase the same way
``bench_fig10b_distance.py`` and ``bench_fig11_labeling.py`` guard the
earlier ones: it times the retained dict-adjacency recursive oracle
(:mod:`repro.core.verification_reference`) against the explicit-stack flat
kernel (:mod:`repro.core.verification`) and asserts the >= 1.5x speedup
that justified moving verification onto the epoch-stamped buffer machinery.

The timed workload is UNDETERMINED-heavy by construction: a dense
Erdos-Renyi graph at ``k = 5`` yields upper-bound graphs where nearly every
edge is undetermined (tens of thousands per query), and each one must run
the Theorem 5.6 endpoint test.  That is the per-edge-overhead regime the
rewrite targets — the reference rebuilds a ``{u, v, s, t}`` set, recurses
through ``forward``/``backward`` and allocates two filtered endpoint lists
per edge, while the flat kernel settles the same edge with an epoch bump,
four stamp writes and an allocation-free inline scan.  Both sides follow
the production ordering policy (:class:`repro.core.eve.EVE` applies the
Section 5.3 ordering only for ``k >= 6``), so neither pays for an ordering
pass the pipeline would skip.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core import verification_reference
from repro.core.distances import compute_distance_index
from repro.core.essential import propagate_backward, propagate_forward
from repro.core.labeling import compute_upper_bound
from repro.core.verification import (
    VerificationScratch,
    VerificationStats,
    prepare_verification,
)
from repro.graph.generators import erdos_renyi


def _undetermined_heavy_uppers(graph, k, seed, want, min_undetermined):
    """Sample s-t pairs until ``want`` uppers with rich undetermined sets."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    uppers = []
    tries = 0
    while len(uppers) < want and tries < 50 * want:
        tries += 1
        source, target = rng.sample(vertices, 2)
        index = compute_distance_index(graph, source, target, k)
        if index.shortest_st_distance() > k:
            continue
        forward = propagate_forward(graph, source, target, k, distances=index)
        backward = propagate_backward(graph, source, target, k, distances=index)
        upper = compute_upper_bound(
            graph, source, target, k, index, forward, backward
        )
        if len(upper.undetermined_edges) >= min_undetermined:
            uppers.append(upper)
    return uppers


def test_fig13b_verification_kernel_speedup(benchmark, scale, show_table):
    """Old recursive verification vs the flat kernel, answer-checked.

    Cross-checks confirmed-edge-set identity on the run's dataset proxies
    first (timing means nothing unless the kernels agree), then times both
    sides on a dense generated workload where every query carries thousands
    of undetermined edges, with the flat side reusing one pooled-style
    scratch (the serving configuration).  Asserts the acceptance bar of a
    >= 1.5x speedup.
    """
    scratch = VerificationScratch()

    # ------------------------------------------------------------------
    # Answer check on the run's dataset proxies, across k and ordering.
    proxy = max(
        (scale.load_graph(code) for code in scale.datasets),
        key=lambda g: g.num_edges,
    )
    for k in scale.hop_values:
        for query in scale.workload(proxy, k).queries:
            index = compute_distance_index(proxy, query.source, query.target, k)
            forward = propagate_forward(
                proxy, query.source, query.target, k, distances=index
            )
            backward = propagate_backward(
                proxy, query.source, query.target, k, distances=index
            )
            upper = compute_upper_bound(
                proxy, query.source, query.target, k, index, forward, backward
            )
            prepared = prepare_verification(upper, scratch=scratch)
            if k >= 6:
                prepared.apply_search_ordering()
                verification_reference.order_adjacency_reference(upper)
            assert prepared.verify() == (
                verification_reference.verify_undetermined_edges_reference(upper)
            )

    # ------------------------------------------------------------------
    # Time on the dense k = 5 workload: every upper is UNDETERMINED-heavy
    # and every undetermined edge costs one endpoint test.
    graph = erdos_renyi(5_000, 40.0, seed=scale.seed, name="verification-bench")
    k = 5
    uppers = _undetermined_heavy_uppers(
        graph, k, seed=scale.seed, want=10, min_undetermined=2_000
    )
    if len(uppers) < 5:  # pragma: no cover - dense generator always qualifies
        pytest.skip("not enough undetermined-heavy uppers in the generated graph")
    undetermined_total = sum(len(u.undetermined_edges) for u in uppers)
    assert undetermined_total >= 10_000, "workload is not undetermined-heavy"
    # Best-of-5 on both sides: the asserted ratio gates CI on shared
    # runners, so buy noise headroom with extra rounds.
    rounds = 5

    def run_reference() -> float:
        started = time.perf_counter()
        for upper in uppers:
            verification_reference.verify_undetermined_edges_reference(upper)
        return time.perf_counter() - started

    def run_flat() -> float:
        started = time.perf_counter()
        for upper in uppers:
            prepare_verification(upper, scratch=scratch).verify()
        return time.perf_counter() - started

    flat_answers = [
        prepare_verification(upper, scratch=scratch).verify() for upper in uppers
    ]
    reference_answers = [
        verification_reference.verify_undetermined_edges_reference(upper)
        for upper in uppers
    ]
    assert flat_answers == reference_answers

    reference_seconds = min(run_reference() for _ in range(rounds))
    # pedantic returns run_flat's result (the last round's wall time); fold
    # in extra rounds so both sides report their best-of-N.
    flat_seconds = benchmark.pedantic(run_flat, rounds=rounds, iterations=1)
    flat_seconds = min(flat_seconds, *(run_flat() for _ in range(rounds - 1)))

    stats = VerificationStats()
    for upper in uppers:
        prepare_verification(upper, scratch=scratch).verify(stats=stats)

    speedup = reference_seconds / max(flat_seconds, 1e-9)
    show_table(
        [
            {
                "graph": graph.name,
                "uppers": len(uppers),
                "undetermined": undetermined_total,
                "kernel": "dict/recursive (reference)",
                "seconds": round(reference_seconds, 4),
                "speedup": 1.0,
            },
            {
                "graph": graph.name,
                "uppers": len(uppers),
                "undetermined": undetermined_total,
                "kernel": "flat explicit-stack",
                "seconds": round(flat_seconds, 4),
                "speedup": round(speedup, 2),
            },
        ],
        f"Figure 13(b) kernel: dict/recursive vs flat verification, k = {k} "
        f"({stats.edges_checked} edges checked)",
    )
    assert speedup >= 1.5, (
        f"expected the flat verification kernel to be >= 1.5x faster than "
        f"the dict/recursive kernel on {graph.name}, got {speedup:.2f}x "
        f"({reference_seconds:.4f}s vs {flat_seconds:.4f}s)"
    )


def test_fig13b_verification_serving_allocations(scale):
    """Zero per-query verification allocation on the batch serving path.

    The engine-level twin of the kernel benchmark's claim: a single-worker
    batch checks out exactly one scratch bundle, so the
    ``verification_scratch_*`` counters show one allocation however many
    cache misses the batch computes.
    """
    from repro.service import SPGEngine

    graph = erdos_renyi(2_000, 8.0, seed=scale.seed, name="verification-serving")
    rng = random.Random(scale.seed)
    vertices = sorted(graph.vertices())
    batch = []
    while len(batch) < 24:
        source, target = rng.sample(vertices, 2)
        batch.append((source, target, 5 + len(batch) % 3))
    with SPGEngine(graph, cache_size=0, max_workers=1) as engine:
        report = engine.run_batch(batch)
        assert report.num_ok == len(batch)
        stats = engine.stats_snapshot()
    assert stats["verification_scratch_allocations"] == 1
    assert (
        stats["verification_scratch_allocations"]
        + stats["verification_scratch_reuses"]
        == stats["cache_misses"]
    )
