"""Figure 12(b): EVE vs JOIN/PathEnum enhanced by the KHSQ+ search space.

Even when the baselines are given ``G^k_st`` (computed by KHSQ+) as their
search space, EVE remains faster for generating the simple path graph,
because ``G^k_st`` still contains cycles and edges that only lie on
non-simple paths.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig12b
from repro.bench.harness import AlgorithmRegistry
from repro.queries.workload import random_reachable_queries


def test_fig12b_table(benchmark, scale, show_table):
    rows = benchmark.pedantic(lambda: experiment_fig12b(scale), rounds=1, iterations=1)
    show_table(rows, "Figure 12(b): EVE vs KHSQ+-assisted baselines, total time (ms)")
    algorithms = {row["algorithm"] for row in rows}
    assert algorithms == {"EVE", "KHSQ+JOIN", "KHSQ+PathEnum"}


def test_fig12b_khsq_assisted_pathenum(benchmark, scale):
    graph = scale.load_graph(scale.datasets[0])
    registry = AlgorithmRegistry(graph, scale.per_query_budget)
    k = max(scale.hop_values)
    query = random_reachable_queries(graph, k, 1, seed=scale.seed).queries[0]
    assisted = registry.build("KHSQ+PathEnum")
    benchmark(assisted, query.source, query.target, k)
