"""Open-loop HTTP load generator and run-table harness for the front end.

``python benchmarks/loadgen.py run`` boots an in-process
:class:`~repro.service.http.server.HTTPFrontend` (or targets an already
running one with ``--host/--port``) and drives it **open-loop**: requests
are fired on a fixed arrival schedule regardless of when earlier ones
complete, so a saturated server shows up as climbing latency and shed
rate instead of the generator politely slowing down with it (the
closed-loop coordination-omission trap).

The run table sweeps ``topology x scale x rate x repetitions`` with
warm-up runs excluded from the record, and exports one row per run as CSV
and/or JSON: offered vs achieved throughput, p50/p95/p99 latency, shed
rate and error counts — the columns the ``serving.http`` trajectory
entries and the ROADMAP's saturation question need.

``python benchmarks/loadgen.py smoke`` is the CI leg: an ephemeral-port
server with a deliberately tiny admission bound, one overload burst, then
hard assertions — zero 5xx, nonzero 429 shedding, a parseable
``/metrics`` exposition with matching shed counters, and a clean drain.
Exit status 1 on any violation.

``python benchmarks/loadgen.py mutate-smoke`` is the dynamic-graph CI
leg: it boots ``python -m repro.service.http`` as a subprocess (or an
in-process frontend with ``--in-process``), fires open-loop query
traffic at it while a mutator coroutine posts ``POST /mutate`` deltas
concurrently, then asserts zero 5xx, zero transport errors, an advanced
``repro_graph_epoch`` gauge, and a clean SIGTERM drain.
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import json
import random
import signal
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.registry import dataset_names, load_dataset  # noqa: E402
from repro.service.engine import EngineConfig, SPGEngine  # noqa: E402
from repro.service.http import HTTPConfig, HTTPFrontend  # noqa: E402
from repro.service.http.client import request  # noqa: E402
from repro.telemetry.prometheus import parse_exposition  # noqa: E402

__all__ = [
    "RunResult",
    "run_open_loop",
    "run_table",
    "smoke",
    "mutation_smoke",
    "main",
]


@dataclass
class RunResult:
    """One row of the run table: one (topology, scale, rate, rep) run."""

    topology: str
    scale: float
    offered_qps: float
    rep: int
    duration_seconds: float
    sent: int
    completed: int
    ok: int
    shed: int  # 429 responses (queue bound or tenant quota)
    errors_4xx: int  # non-429 client errors
    errors_5xx: int
    transport_errors: int
    achieved_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    shed_rate: float
    saturated: bool  # achieved < 90% of offered, or any shedding
    warmup: bool = False


@dataclass
class _Sample:
    status: int  # 0 for transport failure
    latency_ms: float


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _make_queries(
    num_vertices: int, count: int, seed: int
) -> List[Tuple[int, int, int]]:
    rng = random.Random(seed)
    queries: List[Tuple[int, int, int]] = []
    while len(queries) < count:
        source, target = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if source != target:
            queries.append((source, target, rng.choice((3, 4, 5))))
    return queries


async def run_open_loop(
    address: Tuple[str, int],
    queries: Sequence[Tuple[int, int, int]],
    *,
    rate: float,
    duration: float,
    tenant: Optional[str] = None,
) -> List[_Sample]:
    """Fire ``POST /query`` requests at ``rate``/s for ``duration`` seconds.

    Open loop: arrival times are fixed up front (``i / rate``); each
    request runs as its own task with its own connection, so slow
    responses never throttle the offered load.  Returns one sample per
    *fired* request (transport failures record status 0).
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    total = max(1, int(rate * duration))
    headers = {"X-Tenant": tenant} if tenant is not None else None
    samples: List[_Sample] = []

    async def one(arrival: float, query: Tuple[int, int, int]) -> None:
        delay = arrival - (time.perf_counter() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        body = json.dumps(
            {"source": query[0], "target": query[1], "k": query[2]}
        ).encode("utf-8")
        fired = time.perf_counter()
        try:
            response = await request(
                address, None, "POST", "/query", body=body, headers=headers
            )
            status = response.status
        except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError):
            status = 0
        samples.append(_Sample(status, (time.perf_counter() - fired) * 1000.0))

    started = time.perf_counter()
    tasks = [
        asyncio.create_task(one(index / rate, queries[index % len(queries)]))
        for index in range(total)
    ]
    await asyncio.gather(*tasks)
    return samples


def _summarise(
    samples: Sequence[_Sample],
    *,
    topology: str,
    scale: float,
    rate: float,
    rep: int,
    duration: float,
    warmup: bool,
) -> RunResult:
    ok = [s for s in samples if 200 <= s.status < 300]
    shed = sum(1 for s in samples if s.status == 429)
    errors_4xx = sum(1 for s in samples if 400 <= s.status < 500 and s.status != 429)
    errors_5xx = sum(1 for s in samples if s.status >= 500)
    transport = sum(1 for s in samples if s.status == 0)
    latencies = sorted(s.latency_ms for s in ok)
    achieved = len(ok) / duration if duration > 0 else 0.0
    shed_rate = shed / len(samples) if samples else 0.0
    return RunResult(
        topology=topology,
        scale=scale,
        offered_qps=rate,
        rep=rep,
        duration_seconds=duration,
        sent=len(samples),
        completed=len(samples) - transport,
        ok=len(ok),
        shed=shed,
        errors_4xx=errors_4xx,
        errors_5xx=errors_5xx,
        transport_errors=transport,
        achieved_qps=achieved,
        p50_ms=_percentile(latencies, 0.50),
        p95_ms=_percentile(latencies, 0.95),
        p99_ms=_percentile(latencies, 0.99),
        max_ms=latencies[-1] if latencies else 0.0,
        shed_rate=shed_rate,
        saturated=bool(shed) or achieved < 0.9 * rate,
        warmup=warmup,
    )


@dataclass
class _Target:
    """One server under test: in-process (owned) or external (addressed)."""

    address: Tuple[str, int]
    frontend: Optional[HTTPFrontend] = None
    engine: Optional[SPGEngine] = None
    num_vertices: int = 0

    async def aclose(self) -> None:
        if self.frontend is not None:
            await self.frontend.shutdown(10.0)
        if self.engine is not None:
            self.engine.close()


async def _boot(
    topology: str,
    scale: float,
    *,
    seed: int,
    backend: str,
    max_queue_depth: int,
    tenant_rate: Optional[float],
) -> _Target:
    graph = load_dataset(topology, scale=scale, seed=seed)
    engine = SPGEngine.from_config(
        graph, EngineConfig(executor_backend=backend, cache_size=0)
    )
    frontend = HTTPFrontend(
        engine,
        config=HTTPConfig(
            port=0, max_queue_depth=max_queue_depth, tenant_rate=tenant_rate
        ),
    )
    address = await frontend.start()
    return _Target(
        address=address,
        frontend=frontend,
        engine=engine,
        num_vertices=graph.num_vertices,
    )


async def run_table(
    *,
    topologies: Sequence[str],
    scales: Sequence[float],
    rates: Sequence[float],
    repetitions: int,
    duration: float,
    warmup_runs: int = 1,
    seed: int = 20230901,
    backend: str = "thread",
    max_queue_depth: int = 256,
    host: Optional[str] = None,
    port: Optional[int] = None,
    external_vertices: int = 0,
    progress: bool = True,
) -> List[RunResult]:
    """Sweep the full run table; returns recorded (non-warm-up) rows.

    With ``host``/``port`` the sweep targets an external server and the
    topology axis collapses to one ``external`` pseudo-topology
    (``external_vertices`` bounds the random query endpoints).
    """
    results: List[RunResult] = []
    combos: List[Tuple[str, float]] = (
        [("external", 1.0)]
        if host is not None
        else [(topology, scale) for topology in topologies for scale in scales]
    )
    for topology, scale in combos:
        if host is not None:
            target = _Target(address=(host, port or 8080), num_vertices=external_vertices)
        else:
            target = await _boot(
                topology,
                scale,
                seed=seed,
                backend=backend,
                max_queue_depth=max_queue_depth,
                tenant_rate=None,
            )
        queries = _make_queries(max(2, target.num_vertices), 512, seed)
        try:
            for rate in rates:
                for rep in range(-warmup_runs, repetitions):
                    warmup = rep < 0
                    samples = await run_open_loop(
                        target.address, queries, rate=rate, duration=duration
                    )
                    row = _summarise(
                        samples,
                        topology=topology,
                        scale=scale,
                        rate=rate,
                        rep=max(rep, 0),
                        duration=duration,
                        warmup=warmup,
                    )
                    if progress:
                        tag = "warmup" if warmup else f"rep {rep}"
                        print(
                            f"[{topology} x{scale} @ {rate:g} qps {tag}] "
                            f"achieved {row.achieved_qps:.1f} qps, "
                            f"p99 {row.p99_ms:.2f} ms, shed {row.shed_rate:.1%}",
                            file=sys.stderr,
                        )
                    if not warmup:
                        results.append(row)
        finally:
            await target.aclose()
    return results


_CSV_COLUMNS = [
    "topology",
    "scale",
    "offered_qps",
    "rep",
    "duration_seconds",
    "sent",
    "completed",
    "ok",
    "shed",
    "errors_4xx",
    "errors_5xx",
    "transport_errors",
    "achieved_qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "shed_rate",
    "saturated",
]


def export_results(
    results: Sequence[RunResult],
    *,
    csv_path: Optional[str] = None,
    json_path: Optional[str] = None,
) -> None:
    """Write the run table as CSV and/or JSON (one row per run)."""
    if csv_path is not None:
        with open(csv_path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_CSV_COLUMNS)
            for row in results:
                record = asdict(row)
                writer.writerow([record[column] for column in _CSV_COLUMNS])
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump([asdict(row) for row in results], handle, indent=2)
            handle.write("\n")


# ----------------------------------------------------------------------
# CI smoke: overload a deliberately tiny admission bound and assert the
# contract — shed, don't break.
# ----------------------------------------------------------------------
async def smoke(
    *,
    topology: str = "tw",
    scale: float = 0.05,
    burst: int = 48,
    max_queue_depth: int = 2,
    seed: int = 20230901,
) -> List[str]:
    """Run the overload smoke; returns a list of violations (empty = pass)."""
    violations: List[str] = []
    target = await _boot(
        topology,
        scale,
        seed=seed,
        backend="serial",
        max_queue_depth=max_queue_depth,
        tenant_rate=None,
    )
    try:
        queries = _make_queries(target.num_vertices, 64, seed)

        async def fire(query: Tuple[int, int, int]) -> int:
            body = json.dumps(
                {"source": query[0], "target": query[1], "k": query[2]}
            ).encode("utf-8")
            response = await request(
                target.address, None, "POST", "/query", body=body
            )
            return response.status

        statuses = await asyncio.gather(
            *(fire(queries[index % len(queries)]) for index in range(burst))
        )
        ok = sum(1 for status in statuses if status == 200)
        shed = sum(1 for status in statuses if status == 429)
        errors_5xx = sum(1 for status in statuses if status >= 500)
        if errors_5xx:
            violations.append(f"{errors_5xx} 5xx responses under overload")
        if shed == 0:
            violations.append(
                f"no 429 shedding despite queue bound {max_queue_depth} "
                f"and burst {burst}"
            )
        if ok == 0:
            violations.append("no request succeeded under overload")

        stats = target.engine.stats
        if stats.http_queue_depth_peak > max_queue_depth:
            violations.append(
                f"queue depth peaked at {stats.http_queue_depth_peak} "
                f"> bound {max_queue_depth}"
            )
        if stats.http_requests_shed + stats.http_quota_rejections != shed:
            violations.append(
                f"shed counters ({stats.http_requests_shed} shed + "
                f"{stats.http_quota_rejections} quota) != observed 429s ({shed})"
            )

        metrics = await request(target.address, None, "GET", "/metrics")
        if metrics.status != 200:
            violations.append(f"GET /metrics returned {metrics.status}")
        else:
            try:
                samples = parse_exposition(metrics.text)
            except ValueError as exc:
                violations.append(f"/metrics exposition failed to parse: {exc}")
            else:
                names = {sample.name for sample in samples}
                for family in (
                    "repro_http_requests_admitted_total",
                    "repro_http_requests_shed_total",
                    "repro_http_queue_depth",
                ):
                    if family not in names:
                        violations.append(f"/metrics is missing {family}")

        drained = await target.frontend.shutdown(10.0)
        target.frontend = None  # aclose must not shut down twice
        if not drained:
            violations.append("drain did not complete within 10s")
        if target.engine.stats.http_queue_depth != 0:
            violations.append(
                f"queue depth {target.engine.stats.http_queue_depth} after drain"
            )
        print(
            f"smoke: {ok} ok, {shed} shed, {errors_5xx} 5xx over burst {burst} "
            f"(queue bound {max_queue_depth}); drained={drained}",
            file=sys.stderr,
        )
    finally:
        await target.aclose()
    return violations


# ----------------------------------------------------------------------
# CI smoke: mutate the served graph under live traffic and assert the
# contract — no 5xx, no torn connection, epoch advances, clean drain.
# ----------------------------------------------------------------------
async def _spawn_http_server(
    topology: str, scale: float, seed: int
) -> Tuple[subprocess.Popen, Tuple[str, int]]:
    """Boot ``python -m repro.service.http`` and wait for its listen line."""
    src_dir = Path(__file__).resolve().parent.parent / "src"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.http",
            "--dataset",
            topology,
            "--scale",
            str(scale),
            "--seed",
            str(seed),
            "--port",
            "0",
            "--backend",
            "thread",
            "--cache-size",
            "256",
        ],
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": str(src_dir)},
    )
    loop = asyncio.get_running_loop()
    line = await asyncio.wait_for(
        loop.run_in_executor(None, process.stderr.readline), 60.0
    )
    prefix = "serving on http://"
    if not line.startswith(prefix):
        process.terminate()
        raise RuntimeError(f"unexpected server banner: {line!r}")
    host, _, port = line[len(prefix):].strip().rpartition(":")
    return process, (host, int(port))


async def _mutator(
    address: Tuple[str, int],
    num_vertices: int,
    *,
    rounds: int,
    interval: float,
    seed: int,
) -> List[int]:
    """Post ``rounds`` deltas, alternating insert and delete of the same
    fresh edges so the graph keeps churning without drifting unboundedly."""
    rng = random.Random(seed)
    statuses: List[int] = []
    pending: List[List[int]] = []
    for round_index in range(rounds):
        if pending:
            payload = {"delete": pending}
            pending = []
        else:
            pending = []
            while len(pending) < 4:
                u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
                if u != v:
                    pending.append([u, v])
            payload = {"insert": pending}
        try:
            response = await request(
                address, None, "POST", "/mutate", body=json.dumps(payload).encode()
            )
            statuses.append(response.status)
        except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError):
            statuses.append(0)
        await asyncio.sleep(interval)
    return statuses


async def mutation_smoke(
    *,
    topology: str = "tw",
    scale: float = 0.05,
    rate: float = 60.0,
    duration: float = 3.0,
    mutation_rounds: int = 12,
    seed: int = 20230901,
    in_process: bool = False,
) -> List[str]:
    """Run the mutation-under-traffic smoke; returns violations (empty = pass)."""
    violations: List[str] = []
    process: Optional[subprocess.Popen] = None
    target: Optional[_Target] = None
    graph = load_dataset(topology, scale=scale, seed=seed)
    try:
        if in_process:
            target = await _boot(
                topology,
                scale,
                seed=seed,
                backend="thread",
                max_queue_depth=256,
                tenant_rate=None,
            )
            address = target.address
        else:
            process, address = await _spawn_http_server(topology, scale, seed)

        queries = _make_queries(graph.num_vertices, 128, seed)
        interval = duration / max(1, mutation_rounds)
        samples, mutation_statuses = await asyncio.gather(
            run_open_loop(address, queries, rate=rate, duration=duration),
            _mutator(
                address,
                graph.num_vertices,
                rounds=mutation_rounds,
                interval=interval,
                seed=seed + 1,
            ),
        )

        errors_5xx = sum(1 for s in samples if s.status >= 500)
        transport = sum(1 for s in samples if s.status == 0)
        ok = sum(1 for s in samples if s.status == 200)
        mutations_ok = sum(1 for status in mutation_statuses if status == 200)
        mutations_5xx = sum(1 for status in mutation_statuses if status >= 500)
        if errors_5xx:
            violations.append(f"{errors_5xx} query 5xx responses during mutation")
        if mutations_5xx:
            violations.append(f"{mutations_5xx} mutate 5xx responses")
        if transport:
            violations.append(f"{transport} torn connections during mutation")
        if ok == 0:
            violations.append("no query succeeded under mutation traffic")
        if mutations_ok == 0:
            violations.append("no mutation was accepted")

        metrics = await request(address, None, "GET", "/metrics")
        samples_by_name = {s.name: s.value for s in parse_exposition(metrics.text)}
        epoch = samples_by_name.get("repro_graph_epoch", 0.0)
        applied = samples_by_name.get("repro_deltas_applied_total", 0.0)
        if applied < mutations_ok:
            violations.append(
                f"repro_deltas_applied_total {applied:g} < accepted {mutations_ok}"
            )
        if epoch <= 0:
            violations.append(f"repro_graph_epoch never advanced ({epoch:g})")

        if process is not None:
            process.send_signal(signal.SIGTERM)
            loop = asyncio.get_running_loop()
            try:
                returncode = await asyncio.wait_for(
                    loop.run_in_executor(None, process.wait), 30.0
                )
            except asyncio.TimeoutError:
                process.kill()
                violations.append("server did not drain within 30s of SIGTERM")
            else:
                if returncode != 0:
                    violations.append(f"server exited {returncode} on SIGTERM drain")
            process = None
        else:
            drained = await target.frontend.shutdown(10.0)
            target.frontend = None
            if not drained:
                violations.append("in-process drain did not complete within 10s")

        print(
            f"mutate-smoke: {ok} queries ok, {mutations_ok}/{len(mutation_statuses)} "
            f"mutations ok, epoch {epoch:g}, {errors_5xx} 5xx, "
            f"{transport} transport errors",
            file=sys.stderr,
        )
    finally:
        if process is not None:
            process.kill()
            process.wait()
        if target is not None:
            await target.aclose()
    return violations


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/loadgen.py",
        description="Open-loop load generator for the SPG HTTP front end.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="sweep the run table and export results")
    run.add_argument(
        "--topologies",
        default="tw",
        help="comma-separated dataset names (default: tw); "
        f"known: {', '.join(dataset_names())}",
    )
    run.add_argument(
        "--scales", default="0.05", help="comma-separated proxy scale factors"
    )
    run.add_argument(
        "--rates",
        default="50,200",
        help="comma-separated offered rates in queries/second",
    )
    run.add_argument("--repetitions", type=int, default=2)
    run.add_argument("--duration", type=float, default=2.0, help="seconds per run")
    run.add_argument("--warmup-runs", type=int, default=1)
    run.add_argument("--seed", type=int, default=20230901)
    run.add_argument(
        "--backend", default="thread", help="engine executor backend (in-process mode)"
    )
    run.add_argument("--max-queue-depth", type=int, default=256)
    run.add_argument(
        "--host", default=None, help="target an external server instead of booting one"
    )
    run.add_argument("--port", type=int, default=None)
    run.add_argument(
        "--external-vertices",
        type=int,
        default=1024,
        help="random query endpoint bound when targeting an external server",
    )
    run.add_argument("--csv", default=None, metavar="PATH")
    run.add_argument("--json", default=None, metavar="PATH")

    smoke_parser = sub.add_parser("smoke", help="CI overload smoke (exit 1 on violation)")
    smoke_parser.add_argument("--topology", default="tw")
    smoke_parser.add_argument("--scale", type=float, default=0.05)
    smoke_parser.add_argument("--burst", type=int, default=48)
    smoke_parser.add_argument("--max-queue-depth", type=int, default=2)
    smoke_parser.add_argument("--seed", type=int, default=20230901)

    mutate_parser = sub.add_parser(
        "mutate-smoke",
        help="CI mutation-under-traffic smoke (exit 1 on violation)",
    )
    mutate_parser.add_argument("--topology", default="tw")
    mutate_parser.add_argument("--scale", type=float, default=0.05)
    mutate_parser.add_argument("--rate", type=float, default=60.0)
    mutate_parser.add_argument("--duration", type=float, default=3.0)
    mutate_parser.add_argument("--mutation-rounds", type=int, default=12)
    mutate_parser.add_argument("--seed", type=int, default=20230901)
    mutate_parser.add_argument(
        "--in-process",
        action="store_true",
        help="boot the frontend in-process instead of python -m repro.service.http",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "mutate-smoke":
        violations = asyncio.run(
            mutation_smoke(
                topology=args.topology,
                scale=args.scale,
                rate=args.rate,
                duration=args.duration,
                mutation_rounds=args.mutation_rounds,
                seed=args.seed,
                in_process=args.in_process,
            )
        )
        for violation in violations:
            print(f"MUTATE-SMOKE VIOLATION: {violation}", file=sys.stderr)
        return 1 if violations else 0
    if args.command == "smoke":
        violations = asyncio.run(
            smoke(
                topology=args.topology,
                scale=args.scale,
                burst=args.burst,
                max_queue_depth=args.max_queue_depth,
                seed=args.seed,
            )
        )
        for violation in violations:
            print(f"SMOKE VIOLATION: {violation}", file=sys.stderr)
        return 1 if violations else 0

    results = asyncio.run(
        run_table(
            topologies=[name for name in args.topologies.split(",") if name],
            scales=_parse_floats(args.scales),
            rates=_parse_floats(args.rates),
            repetitions=args.repetitions,
            duration=args.duration,
            warmup_runs=args.warmup_runs,
            seed=args.seed,
            backend=args.backend,
            max_queue_depth=args.max_queue_depth,
            host=args.host,
            port=args.port,
            external_vertices=args.external_vertices,
        )
    )
    export_results(results, csv_path=args.csv, json_path=args.json)
    writer = csv.writer(sys.stdout)
    writer.writerow(_CSV_COLUMNS)
    for row in results:
        record = asdict(row)
        writer.writerow([record[column] for column in _CSV_COLUMNS])
    return 0


if __name__ == "__main__":
    sys.exit(main())
