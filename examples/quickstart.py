#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 example, end to end.

Builds the motivating graph of the paper, asks for the 4-hop-constrained
s-t simple path graph, and shows how the answer relates to enumerating all
simple paths (which is what the simple path graph avoids).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import EVEConfig, build_spg
from repro.enumeration import PathEnum
from repro.graph.builder import build_graph
from repro.viz import render_result_summary, result_to_dot

# The graph of Figure 1(a): vertices are labelled exactly as in the paper.
FIGURE1_EDGES = [
    ("s", "c"), ("s", "a"), ("a", "c"), ("a", "h"), ("a", "i"),
    ("c", "t"), ("c", "b"), ("b", "t"), ("b", "a"), ("b", "j"),
    ("h", "b"), ("i", "j"), ("j", "h"),
]


def main() -> None:
    graph, builder = build_graph(FIGURE1_EDGES, name="figure-1")
    source = builder.vertex_id("s")
    target = builder.vertex_id("t")

    print("=== All 4-hop-constrained s-t simple paths (what a user is shown today) ===")
    enumerator = PathEnum(graph)
    for path in enumerator.enumerate(source, target, 4).paths:
        print("  " + " -> ".join(builder.vertex_label(v) for v in path))

    print()
    print("=== The 4-hop-constrained s-t simple path graph (Figure 1(c)) ===")
    result = build_spg(graph, source, target, k=4)
    print(render_result_summary(result, label=builder.vertex_label))

    print()
    print("=== Same query with k = 7 (verification phase kicks in) ===")
    result7 = build_spg(graph, source, target, k=7, config=EVEConfig())
    print(render_result_summary(result7, label=builder.vertex_label))

    print()
    print("=== Graphviz DOT of the k = 4 answer (paste into any DOT viewer) ===")
    print(result_to_dot(result, graph, label=builder.vertex_label))


if __name__ == "__main__":
    main()
