#!/usr/bin/env python3
"""Fraud detection on a temporal transaction network (paper Section 6.9).

A transaction network is modelled as a directed graph where each edge is a
payment.  Short simple cycles completed within a narrow time window are a
strong fraud signal (money moving in a ring).  Given one flagged
transaction ``e(t, s)``, every account and payment taking part in a
``(k+1)``-hop-constrained simple cycle through it is exactly the content of
``SPG_k(s, t)`` computed on the snapshot of recent transactions.

This example generates a synthetic transaction network with planted fraud
rings, flags the closing payment of one ring, and recovers the whole ring
with a single EVE query — then compares against the planted ground truth.

Run with::

    python examples/fraud_detection.py
"""

from __future__ import annotations

from repro import build_spg
from repro.datasets import generate_transaction_network
from repro.viz import render_result_summary

HOP_CONSTRAINT = 5          # cycles of length at most k + 1 = 6 transactions
WINDOW_DAYS = 7.0           # only transactions of the last week are considered


def main() -> None:
    network = generate_transaction_network(
        num_accounts=500,
        num_transactions=4000,
        num_fraud_rings=3,
        ring_size=4,
        seed=2023,
    )
    payer, payee, flagged_time = network.flagged_edge
    print(f"Flagged transaction: account {payer} -> account {payee} "
          f"at day {flagged_time:.2f}")

    # Restrict the graph to the transactions of the last WINDOW_DAYS days.
    snapshot = network.window_around_flag(WINDOW_DAYS)
    print(f"Snapshot of the last {WINDOW_DAYS:g} days: "
          f"{snapshot.num_edges} distinct payment edges")

    # The flagged edge goes t -> s; simple cycles through it correspond to
    # simple paths from s (= payee) back to t (= payer).
    result = build_spg(snapshot, payee, payer, k=HOP_CONSTRAINT)
    print()
    print(render_result_summary(result))

    suspicious_accounts = set(result.vertices)
    planted_ring = set(network.fraud_rings[0])
    recovered = suspicious_accounts & planted_ring
    print()
    print(f"Planted fraud ring ({len(planted_ring)} accounts): {sorted(planted_ring)}")
    print(f"Accounts recovered by the query: {sorted(recovered)}")
    print(f"Recall on the planted ring: {len(recovered) / len(planted_ring):.0%}")
    print()
    print("Suspicious payments (edges of the simple path graph):")
    for u, v in sorted(result.edges):
        print(f"  account {u} -> account {v}")


if __name__ == "__main__":
    main()
