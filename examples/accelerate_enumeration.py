#!/usr/bin/env python3
"""Accelerating hop-constrained path enumeration with SPG_k (paper Table 4).

PathEnum is the state-of-the-art hop-constrained s-t simple path enumerator.
The paper shows that first generating ``SPG_k(s, t)`` with EVE and handing
it to PathEnum as the search space speeds enumeration up — every edge that
cannot appear in any output path has already been removed.

This example measures that effect on a dense synthetic proxy graph:
PathEnum on the full graph versus EVE + PathEnum on ``SPG_k``, and versus
the KHSQ+ alternative search space ``G^k_st``.

Run with::

    python examples/accelerate_enumeration.py
"""

from __future__ import annotations

import time

from repro import EVE
from repro.datasets import load_dataset
from repro.enumeration import PathEnum
from repro.khsq import KHSQPlus
from repro.queries import random_reachable_queries

DATASET = "ye"        # dense biological-network proxy
SCALE = 0.25
K = 5
NUM_QUERIES = 5


def main() -> None:
    graph = load_dataset(DATASET, scale=SCALE)
    print(f"Graph {graph.name}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges (avg degree {graph.average_degree():.1f})")
    workload = random_reachable_queries(graph, K, NUM_QUERIES, seed=11)
    eve = EVE(graph)
    khsq = KHSQPlus(graph)

    plain_total = assisted_total = khsq_total = 0.0
    plain_work = assisted_work = khsq_work = 0
    total_paths = 0
    for query in workload:
        s, t = query.source, query.target

        enumerator = PathEnum(graph)
        started = time.perf_counter()
        plain = enumerator.enumerate(s, t, K)
        plain_total += time.perf_counter() - started
        plain_work += enumerator.expansions
        total_paths += plain.count

        started = time.perf_counter()
        spg = eve.query(s, t, K)
        enumerator = PathEnum(spg.to_graph(graph))
        enumerator.enumerate(s, t, K)
        assisted_total += time.perf_counter() - started
        assisted_work += enumerator.expansions

        started = time.perf_counter()
        subgraph = khsq.query(s, t, K).to_graph(graph)
        enumerator = PathEnum(subgraph)
        enumerator.enumerate(s, t, K)
        khsq_total += time.perf_counter() - started
        khsq_work += enumerator.expansions

    print(f"\n{NUM_QUERIES} queries, k = {K}, "
          f"{total_paths} simple paths enumerated per run")
    print("                                  wall clock            search work (edge expansions)")
    print(f"  PathEnum on the full graph   : {plain_total * 1000:8.1f} ms          {plain_work:10d}")
    print(f"  KHSQ+  -> PathEnum on G^k_st : {khsq_total * 1000:8.1f} ms "
          f"({plain_total / khsq_total:4.1f}x)  {khsq_work:10d} ({plain_work / max(1, khsq_work):4.1f}x less)")
    print(f"  EVE    -> PathEnum on SPG_k  : {assisted_total * 1000:8.1f} ms "
          f"({plain_total / assisted_total:4.1f}x)  {assisted_work:10d} ({plain_work / max(1, assisted_work):4.1f}x less)")
    print("\nSPG_k is a subgraph of G^k_st, so the EVE-assisted run explores the")
    print("fewest edges (Table 4 / Section 6.7).  At this laptop scale the wall-")
    print("clock speedup is diluted by the cost of generating the search space in")
    print("pure Python; the work column shows the effect the paper measures.")


if __name__ == "__main__":
    main()
