#!/usr/bin/env python3
"""RelFinder-style relation visualisation between two entities.

Knowledge-graph front ends such as RelFinder show *how* two entities are
related by displaying the graph of all short simple paths between them
instead of a long list of paths (paper Section 1.1, Figure 2(a)).  This
example builds a small synthetic knowledge graph of people, companies,
papers and cities, then extracts and renders the relationship graph between
two entities with one EVE query.

Run with::

    python examples/relation_visualization.py [entity_a] [entity_b] [k]
"""

from __future__ import annotations

import sys

from repro import build_spg
from repro.graph.builder import build_graph
from repro.viz import render_adjacency, result_to_dot

# A tiny "knowledge graph": subject -> object facts (edge labels elided).
KNOWLEDGE_GRAPH_FACTS = [
    # employment & affiliation
    ("alice", "fudan_university"), ("bob", "fudan_university"),
    ("carol", "acme_corp"), ("dave", "acme_corp"), ("erin", "globex"),
    # co-authorship chains (directed citation-ish links)
    ("alice", "paper_spg"), ("bob", "paper_spg"), ("paper_spg", "paper_reach"),
    ("carol", "paper_reach"), ("paper_reach", "paper_enum"), ("dave", "paper_enum"),
    # geography
    ("fudan_university", "shanghai"), ("acme_corp", "shanghai"),
    ("globex", "beijing"), ("shanghai", "china"), ("beijing", "china"),
    # social links
    ("alice", "bob"), ("bob", "carol"), ("carol", "dave"), ("dave", "erin"),
    ("erin", "alice"), ("carol", "alice"),
    # reverse affiliation edges so institutions lead back to people
    ("fudan_university", "alice"), ("acme_corp", "carol"), ("globex", "erin"),
    ("paper_spg", "alice"), ("paper_reach", "carol"), ("paper_enum", "dave"),
]


def main() -> None:
    entity_a = sys.argv[1] if len(sys.argv) > 1 else "alice"
    entity_b = sys.argv[2] if len(sys.argv) > 2 else "dave"
    k = int(sys.argv[3]) if len(sys.argv) > 3 else 4

    graph, builder = build_graph(KNOWLEDGE_GRAPH_FACTS, name="knowledge-graph")
    print("Knowledge graph:")
    print(render_adjacency(graph, label=builder.vertex_label, max_vertices=12))
    print()

    source = builder.vertex_id(entity_a)
    target = builder.vertex_id(entity_b)
    result = build_spg(graph, source, target, k=k)

    print(f"Relationship graph between {entity_a!r} and {entity_b!r} (k = {k}):")
    if result.is_empty:
        print("  no connection within the hop budget")
        return
    for u, v in sorted(result.edges):
        print(f"  {builder.vertex_label(u)} -> {builder.vertex_label(v)}")
    print()
    print(f"{result.num_edges} relations / {len(result.vertices)} entities "
          f"(out of {graph.num_edges} facts) — "
          f"computed in {result.phases.total_seconds * 1000:.2f} ms")
    print()
    print("Graphviz DOT (render with `dot -Tpng` or an online viewer):")
    print(result_to_dot(result, graph, label=builder.vertex_label))


if __name__ == "__main__":
    main()
