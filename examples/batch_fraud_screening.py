#!/usr/bin/env python3
"""Batch fraud screening: test every recent transaction for short cycles.

While ``fraud_detection.py`` investigates a single flagged transaction,
this example runs the screening pipeline a payment provider would run: for
every transaction of the last day, check whether it closes a simple cycle
of bounded length inside the preceding 7-day window (one EVE query per
screened transaction), and compare the flagged accounts against the
planted fraud rings.

Run with::

    python examples/batch_fraud_screening.py
"""

from __future__ import annotations

from repro.cycles import FraudScreener
from repro.datasets import generate_transaction_network

MAX_CYCLE_LENGTH = 6
WINDOW_DAYS = 7.0
SCREEN_SINCE_DAY = 29.0        # screen transactions of the last day


def main() -> None:
    network = generate_transaction_network(
        num_accounts=300,
        num_transactions=2500,
        num_fraud_rings=3,
        ring_size=4,
        horizon_days=30.0,
        fraud_window_days=2.0,
        seed=77,
    )
    print(f"Transaction network: {network.num_accounts} accounts, "
          f"{len(network.transactions)} transactions over 30 days")
    print(f"Planted fraud rings: {network.fraud_rings}")

    screener = FraudScreener(
        network, max_cycle_length=MAX_CYCLE_LENGTH, window_days=WINDOW_DAYS
    )
    report = screener.screen_recent(since=SCREEN_SINCE_DAY)

    print(f"\nScreened {report.screened} transactions from day "
          f"{SCREEN_SINCE_DAY:g} onwards "
          f"(cycles up to {MAX_CYCLE_LENGTH} hops, {WINDOW_DAYS:g}-day window)")
    print(f"Transactions closing a short cycle: {report.num_suspicious}")
    for finding in report.suspicious:
        print(f"  day {finding.timestamp:5.2f}  "
              f"{finding.edge[0]:>4} -> {finding.edge[1]:<4}  "
              f"cycle-graph edges: {finding.cycle_edges:3d}  "
              f"accounts: {list(finding.involved_accounts)}")

    precision, recall = report.precision_recall(network.fraud_accounts())
    print(f"\nFlagged accounts: {sorted(report.suspicious_accounts())}")
    print(f"Precision vs planted rings: {precision:.0%}")
    print(f"Recall    vs planted rings: {recall:.0%}")


if __name__ == "__main__":
    main()
