#!/usr/bin/env python3
"""Batch fraud screening through the SPG serving engine.

While ``fraud_detection.py`` investigates a single flagged transaction,
this example runs the screening pipeline a payment provider would run: for
every transaction of the last day, check whether it closes a simple cycle
of bounded length inside the recent time window.  A transaction ``u -> v``
closes a cycle of length ``<= L`` exactly when a simple path ``v -> u`` of
length ``<= L - 1`` exists, so screening is one SPG query per transaction —
a *batch* of queries against one graph, which is exactly the workload
:class:`repro.service.SPGEngine` is built for:

* repeated account pairs hit the result cache instead of re-running EVE;
* transactions received by the same account share one backward pass
  (the batch planner groups queries by target);
* per-query latency and hit-rate statistics come for free.

Screening runs on a rolling schedule: every few hours the pipeline
re-screens the whole trailing day (earlier transactions again, plus the new
ones).  Each sweep is also answered with the plain sequential loop the seed
used, to show the serving layer's speedup on identical answers.

Run with::

    python examples/batch_fraud_screening.py
"""

from __future__ import annotations

import time

from repro import build_spg
from repro.datasets import generate_transaction_network
from repro.service import SPGEngine

MAX_CYCLE_LENGTH = 6
WINDOW_DAYS = 7.0
SCREEN_SINCE_DAY = 29.0        # screen transactions of the last day
HORIZON_DAYS = 30.0


def main() -> None:
    network = generate_transaction_network(
        num_accounts=300,
        num_transactions=2500,
        num_fraud_rings=3,
        ring_size=4,
        horizon_days=HORIZON_DAYS,
        fraud_window_days=2.0,
        seed=77,
    )
    print(f"Transaction network: {network.num_accounts} accounts, "
          f"{len(network.transactions)} transactions over {HORIZON_DAYS:g} days")
    print(f"Planted fraud rings: {network.fraud_rings}")

    # One *pooled* window graph covers every screened transaction: all
    # transactions from WINDOW_DAYS before the screening period up to the
    # horizon.  This is what makes the job a single batch against one graph
    # (and is how a daily screening job would pool its input); unlike
    # repro.cycles.FraudScreener, which rebuilds an exact per-transaction
    # preceding window, cycles here may involve transactions from anywhere
    # inside the pooled window.
    window_start = SCREEN_SINCE_DAY - WINDOW_DAYS
    window_graph = network.snapshot(
        start_time=window_start,
        end_time=HORIZON_DAYS,
        name="screening-window",
    )
    recent = [
        txn for txn in network.transactions
        if txn.timestamp >= SCREEN_SINCE_DAY
        and window_graph.has_edge(txn.source, txn.target)
    ]
    # Cycle through u -> v  ==  simple path v -> u of length <= L - 1.
    queries = [(txn.target, txn.source, MAX_CYCLE_LENGTH - 1) for txn in recent]

    # Rolling screening: every 6 simulated hours, re-screen the whole
    # trailing day (everything screened so far plus the newly arrived
    # transactions).  The sequential baseline recomputes each sweep cold;
    # the engine serves repeats from its cache.
    sweep_times = [SCREEN_SINCE_DAY + 0.25 * step for step in range(1, 5)]
    sweeps = [
        [q for txn, q in zip(recent, queries) if txn.timestamp <= cutoff]
        for cutoff in sweep_times
    ]

    # The demo queries are ~0.1 ms each, so a thread pool's startup cost
    # would drown the numbers; run the executor inline.  Large workloads
    # (see benchmarks/bench_service_throughput.py) leave this at the
    # default.
    engine = SPGEngine(window_graph, cache_size=4096, max_workers=1)
    sequential_seconds = 0.0
    batch_seconds = 0.0
    report = None
    for sweep in sweeps:
        started = time.perf_counter()
        sequential = [build_spg(window_graph, s, t, k) for s, t, k in sweep]
        sequential_seconds += time.perf_counter() - started

        started = time.perf_counter()
        report = engine.run_batch(sweep)
        batch_seconds += time.perf_counter() - started

        assert [outcome.edges for outcome in report] == [r.edges for r in sequential]

    print(f"\nScreened {len(queries)} transactions from day "
          f"{SCREEN_SINCE_DAY:g} onwards (cycles up to {MAX_CYCLE_LENGTH} hops, "
          f"pooled window day {window_start:g}-{HORIZON_DAYS:g})")
    suspicious = [
        (txn, outcome) for txn, outcome in zip(recent, report)
        if outcome.ok and outcome.edges
    ]
    print(f"Transactions closing a short cycle: {len(suspicious)}")
    flagged: set = set()
    for txn, outcome in suspicious:
        accounts = sorted(outcome.result.vertices | {txn.source, txn.target})
        flagged.update(accounts)
        print(f"  day {txn.timestamp:5.2f}  "
              f"{txn.source:>4} -> {txn.target:<4}  "
              f"cycle-graph edges: {len(outcome.edges) + 1:3d}  "
              f"accounts: {accounts}")

    true_accounts = network.fraud_accounts()
    true_positives = len(flagged & true_accounts)
    precision = true_positives / len(flagged) if flagged else 0.0
    recall = true_positives / len(true_accounts) if true_accounts else 0.0
    print(f"\nFlagged accounts: {sorted(flagged)}")
    print(f"Precision vs planted rings: {precision:.0%}")
    print(f"Recall    vs planted rings: {recall:.0%}")

    stats = engine.stats_snapshot()
    print("\nServing-layer statistics "
          f"({len(sweeps)} rolling sweeps, {stats['queries_served']} queries total):")
    print(f"  sequential loops: {sequential_seconds * 1000:7.1f} ms")
    print(f"  engine batches  : {batch_seconds * 1000:7.1f} ms "
          f"({sequential_seconds / max(batch_seconds, 1e-9):.1f}x speedup)")
    print(f"  cache hit rate  : {stats['hit_rate']:.0%} "
          f"({stats['cache_hits']} of {stats['queries_served']} queries)")
    print(f"  shared backward passes reused: {report.reused_backward_passes} "
          f"({report.shared_groups} target groups of {report.planned_groups})")
    print(f"  latency p50/p95: {stats['p50_ms']:.2f} / {stats['p95_ms']:.2f} ms")


if __name__ == "__main__":
    main()
