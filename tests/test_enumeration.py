"""Tests for the hop-constrained s-t simple path enumerators."""

from __future__ import annotations

import pytest

from repro.analysis.validate import brute_force_paths, check_path
from repro.enumeration import (
    BCDFS,
    EnumerationSPGBuilder,
    JoinEnumerator,
    NaiveDFS,
    PathEnum,
    TDFS,
)
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, power_law_cluster

ENUMERATORS = [NaiveDFS, TDFS, BCDFS, JoinEnumerator, PathEnum]


def sorted_paths(paths):
    return sorted(tuple(p) for p in paths)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("enumerator_class", ENUMERATORS)
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3, 5, 6])
    def test_random_graphs(self, enumerator_class, seed, k):
        graph = erdos_renyi(10, 2.0, seed=seed)
        expected = sorted_paths(brute_force_paths(graph, 0, 9, k))
        result = enumerator_class(graph).enumerate(0, 9, k)
        assert sorted_paths(result.paths) == expected
        assert not result.truncated

    @pytest.mark.parametrize("enumerator_class", ENUMERATORS)
    def test_figure1_k4_paths(self, enumerator_class, figure1):
        graph, builder = figure1
        vid = builder.vertex_id
        result = enumerator_class(graph).enumerate(vid("s"), vid("t"), 4)
        labels = {
            tuple(builder.vertex_label(v) for v in path) for path in result.paths
        }
        assert labels == {
            ("s", "c", "t"),
            ("s", "a", "c", "t"),
            ("s", "c", "b", "t"),
            ("s", "a", "c", "b", "t"),
            ("s", "a", "h", "b", "t"),
        }

    @pytest.mark.parametrize("enumerator_class", ENUMERATORS)
    def test_no_duplicates(self, enumerator_class):
        graph = power_law_cluster(12, 2, seed=5)
        result = enumerator_class(graph).enumerate(0, 11, 5)
        assert len(result.paths) == len(set(result.paths))

    @pytest.mark.parametrize("enumerator_class", ENUMERATORS)
    def test_all_paths_are_valid(self, enumerator_class):
        graph = erdos_renyi(12, 2.5, seed=9)
        result = enumerator_class(graph).enumerate(0, 11, 5)
        for path in result.paths:
            assert check_path(graph, path, 0, 11, 5)

    @pytest.mark.parametrize("enumerator_class", ENUMERATORS)
    def test_unreachable_target(self, enumerator_class):
        graph = DiGraph(4, [(0, 1), (2, 3)])
        result = enumerator_class(graph).enumerate(0, 3, 4)
        assert result.count == 0


class TestResultObject:
    def test_edges_union(self):
        graph = DiGraph(4, [(0, 1), (1, 3), (0, 2), (2, 3)])
        result = NaiveDFS(graph).enumerate(0, 3, 2)
        assert result.edges() == {(0, 1), (1, 3), (0, 2), (2, 3)}
        assert result.vertices() == {0, 1, 2, 3}

    def test_lengths_histogram(self):
        graph = DiGraph(4, [(0, 3), (0, 1), (1, 3), (0, 2), (2, 3)])
        result = NaiveDFS(graph).enumerate(0, 3, 2)
        assert result.lengths_histogram() == {1: 1, 2: 2}

    def test_count_paths_matches_enumerate(self):
        graph = erdos_renyi(10, 2.0, seed=3)
        enumerator = PathEnum(graph)
        assert enumerator.count_paths(0, 9, 5) == len(enumerator.enumerate(0, 9, 5).paths)

    def test_time_budget_truncates(self):
        graph = erdos_renyi(30, 6.0, seed=1)
        result = NaiveDFS(graph).enumerate(0, 29, 8, time_budget=0.0)
        assert result.truncated or result.count == 0

    def test_validation_errors(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(QueryError):
            NaiveDFS(graph).enumerate(0, 0, 3)
        with pytest.raises(QueryError):
            NaiveDFS(graph).enumerate(0, 1, 0)


class TestPathEnumOptimizer:
    def test_forced_strategies_agree(self):
        graph = erdos_renyi(12, 2.5, seed=7)
        dfs_paths = sorted_paths(PathEnum(graph, force_strategy="dfs").enumerate(0, 11, 5).paths)
        join_paths = sorted_paths(PathEnum(graph, force_strategy="join").enumerate(0, 11, 5).paths)
        assert dfs_paths == join_paths

    def test_invalid_forced_strategy(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(ValueError):
            PathEnum(graph, force_strategy="magic")

    def test_last_strategy_recorded(self):
        graph = erdos_renyi(12, 2.5, seed=7)
        enumerator = PathEnum(graph)
        enumerator.enumerate(0, 11, 4)
        assert enumerator.last_strategy in ("dfs", "join")


class TestSpaceAccounting:
    def test_join_uses_more_space_than_dfs_on_dense_graph(self):
        graph = erdos_renyi(30, 5.0, seed=2)
        join_result = JoinEnumerator(graph).enumerate(0, 29, 4)
        dfs_result = NaiveDFS(graph).enumerate(0, 29, 4)
        if join_result.count > 0:
            assert join_result.space.peak >= dfs_result.space.peak


class TestSPGViaEnumeration:
    @pytest.mark.parametrize("enumerator_class", [JoinEnumerator, PathEnum])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_eve(self, enumerator_class, seed):
        from repro import build_spg

        graph = erdos_renyi(11, 2.0, seed=seed)
        builder = EnumerationSPGBuilder(graph, enumerator_class)
        for k in (3, 5):
            baseline = builder.query(0, 10, k)
            eve_result = build_spg(graph, 0, 10, k)
            assert baseline.edges == eve_result.edges
            assert baseline.exact

    def test_name_mentions_enumerator(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        builder = EnumerationSPGBuilder(graph, PathEnum)
        assert "PathEnum" in builder.name

    def test_budget_marks_result_inexact(self):
        graph = erdos_renyi(30, 6.0, seed=4)
        builder = EnumerationSPGBuilder(graph, NaiveDFS, time_budget=0.0)
        result = builder.query(0, 29, 8)
        assert not result.exact or result.num_edges == 0
