"""Tests for the phase-level telemetry stack (repro.telemetry + stats).

Covers the tracer (bounded ring, spans, JSONL export, worker-event
merging), the Prometheus text-format renderers and the strict exposition
parser, the :class:`LatencyWindow` histogram/quantile mechanics,
:class:`EngineStats` exposition and worker-counter merging (including a
concurrent scrape-while-recording hammer), the EVE query spans, the
cross-backend telemetry consistency contract (every executor backend and
the sharded engine report identical phase counters, and phase spans cover
>= 90% of recorded miss latency), and the BENCH_<pr>.json trajectory
schema plus its CLI entry points.
"""

from __future__ import annotations

import io
import json
import math
import random
import subprocess
import sys
import threading
from collections import Counter
from pathlib import Path

import pytest

from repro.bench.trajectory import (
    SCHEMA_VERSION,
    collect_snapshot,
    load_snapshot,
    snapshot_filename,
    validate_snapshot,
    write_snapshot,
)
from repro.core.eve import EVE
from repro.core.result import PHASE_NAMES
from repro.graph.generators import erdos_renyi
from repro.service import EngineStats, LatencyWindow, ShardedSPGEngine, SPGEngine
from repro.service.executor import EXECUTOR_BACKENDS
from repro.service.stats import DEFAULT_LATENCY_BUCKETS
from repro.telemetry import (
    NOOP_TRACER,
    NoopTracer,
    TraceEvent,
    Tracer,
    parse_exposition,
    render_counter,
    render_gauge,
    render_histogram,
)
from repro.telemetry.prometheus import samples_by_name

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
REPO_ROOT = Path(__file__).resolve().parent.parent


def _event(name: str = "x", duration: float = 0.001, **attributes) -> TraceEvent:
    return TraceEvent(
        name=name, started=0.0, duration=duration, wall_time=1.0, attributes=attributes
    )


# ======================================================================
# Tracer
# ======================================================================
class TestTracer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_record_returns_and_retains_event(self):
        tracer = Tracer()
        event = tracer.record("phase.distance", 10.0, 0.25, strategy="adaptive")
        assert event.name == "phase.distance"
        assert event.duration == 0.25
        assert event.attributes == {"strategy": "adaptive"}
        assert tracer.events() == [event]
        assert len(tracer) == 1

    def test_ring_drops_oldest_and_counts_dropped(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.record(f"e{index}", 0.0, 0.0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [event.name for event in tracer.events()] == ["e2", "e3", "e4"]

    def test_extend_merges_worker_events(self):
        tracer = Tracer()
        tracer.extend([_event("a"), _event("b")])
        assert [event.name for event in tracer.events()] == ["a", "b"]

    def test_span_measures_and_records_attributes(self):
        tracer = Tracer()
        with tracer.span("work", fixed=1) as span:
            span.set(late=2)
        (event,) = tracer.events()
        assert event.name == "work"
        assert event.duration >= 0.0
        assert event.attributes == {"fixed": 1, "late": 2}

    def test_span_records_on_exception_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [event.name for event in tracer.events()] == ["failing"]

    def test_drain_empties_buffer(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 0.0)
        drained = tracer.drain()
        assert [event.name for event in drained] == ["a"]
        assert len(tracer) == 0
        assert tracer.drain() == []

    def test_clear_resets_dropped(self):
        tracer = Tracer(capacity=1)
        tracer.record("a", 0.0, 0.0)
        tracer.record("b", 0.0, 0.0)
        assert tracer.dropped == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_export_jsonl_to_handle_and_path(self, tmp_path):
        tracer = Tracer()
        tracer.record("query", 1.0, 0.5, source=0, target=3, k=2)
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 1
        record = json.loads(buffer.getvalue())
        assert record["name"] == "query"
        assert record["duration_seconds"] == 0.5
        assert record["attributes"] == {"source": 0, "target": 3, "k": 2}

        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        assert json.loads(path.read_text(encoding="utf-8")) == record
        # export does not drain
        assert len(tracer) == 1

    def test_events_are_picklable(self):
        import pickle

        event = _event("phase.distance", strategy="adaptive", index_size=7)
        clone = pickle.loads(pickle.dumps(event))
        assert clone == event

    def test_noop_tracer_records_nothing(self, tmp_path):
        noop = NoopTracer()
        assert noop.record("a", 0.0, 0.0) is None
        noop.append(_event())
        noop.extend([_event()])
        with noop.span("s") as span:
            span.set(ignored=True)
        assert noop.events() == [] and noop.drain() == []
        assert len(noop) == 0
        assert noop.export_jsonl(str(tmp_path / "never.jsonl")) == 0
        assert not (tmp_path / "never.jsonl").exists()
        assert NOOP_TRACER.enabled is False and Tracer().enabled is True


# ======================================================================
# Prometheus rendering
# ======================================================================
class TestPrometheusRender:
    def test_counter_golden(self):
        assert render_counter("repro_queries_served_total", "Queries served.", 7) == [
            "# HELP repro_queries_served_total Queries served.",
            "# TYPE repro_queries_served_total counter",
            "repro_queries_served_total 7",
        ]

    def test_gauge_with_labels_and_float_value(self):
        lines = render_gauge("pool_size", "Pool size.", 0.5, labels={"pool": "a b"})
        assert lines[2] == 'pool_size{pool="a b"} 0.5'

    def test_histogram_golden(self):
        lines = render_histogram(
            "lat_seconds",
            "Latency.",
            [({"phase": "distance"}, (0.1, 1.0), [2, 3], 0.75, 4)],
        )
        assert lines == [
            "# HELP lat_seconds Latency.",
            "# TYPE lat_seconds histogram",
            'lat_seconds_bucket{phase="distance",le="0.1"} 2',
            'lat_seconds_bucket{phase="distance",le="1"} 3',
            'lat_seconds_bucket{phase="distance",le="+Inf"} 4',
            'lat_seconds_sum{phase="distance"} 0.75',
            'lat_seconds_count{phase="distance"} 4',
        ]

    def test_histogram_rejects_non_cumulative_counts(self):
        with pytest.raises(ValueError, match="cumulative"):
            render_histogram("h", "x", [(None, (0.1, 1.0), [3, 2], 0.0, 3)])

    def test_histogram_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="bounds"):
            render_histogram("h", "x", [(None, (0.1,), [1, 2], 0.0, 2)])

    def test_histogram_rejects_finite_buckets_exceeding_count(self):
        with pytest.raises(ValueError, match="count"):
            render_histogram("h", "x", [(None, (0.1,), [5], 0.0, 3)])

    def test_invalid_metric_and_label_names_rejected(self):
        with pytest.raises(ValueError):
            render_counter("bad-name", "x", 1)
        with pytest.raises(ValueError):
            render_gauge("ok", "x", 1, labels={"bad-label": "v"})
        with pytest.raises(ValueError):
            render_gauge("ok", "x", 1, labels={"__reserved": "v"})

    def test_label_value_escaping_round_trips_through_parser(self):
        tricky = 'quote " backslash \\ newline \n end'
        lines = render_gauge("g", "help", 1.0, labels={"value": tricky})
        (sample,) = parse_exposition("\n".join(lines))
        assert sample.labels == {"value": tricky}


# ======================================================================
# Prometheus parsing
# ======================================================================
class TestPrometheusParser:
    VALID = (
        "# free-form comment, skipped\n"
        "# HELP requests_total The total.\n"
        "# TYPE requests_total counter\n"
        "requests_total 10\n"
        "# TYPE lat histogram\n"
        'lat_bucket{le="0.1"} 1\n'
        'lat_bucket{le="+Inf"} 2\n'
        "lat_sum 0.3\n"
        "lat_count 2\n"
        "free_sample 1.5e-3 1700000000\n"
    )

    def test_parses_valid_exposition(self):
        samples = parse_exposition(self.VALID)
        grouped = samples_by_name(samples)
        assert grouped["requests_total"][0].value == 10
        assert [s.labels["le"] for s in grouped["lat_bucket"]] == ["0.1", "+Inf"]
        assert grouped["free_sample"][0].value == pytest.approx(0.0015)

    def test_histogram_family_samples_after_type_are_legal(self):
        # _bucket/_sum/_count resolve to the typed family, so no error.
        parse_exposition(self.VALID)

    @pytest.mark.parametrize(
        "text, message",
        [
            ("metric oops\n", "bad sample value"),
            ("9metric 1\n", "bad metric name"),
            ('m{le="0.1" 1\n', "unterminated label"),
            ('m{le="a\\q"} 1\n', "invalid escape"),
            ('m{le="1",le="2"} 1\n', "duplicate label"),
            ("# TYPE m wat\nm 1\n", "unknown metric type"),
            ("# TYPE m counter\n# TYPE m counter\nm 1\n", "repeated TYPE"),
            ("m 1\n# TYPE m counter\n", "after its samples"),
            ("# TYPE m\n", "TYPE needs a name and a type"),
            ("m 1 not-a-timestamp\n", "bad timestamp"),
        ],
    )
    def test_grammar_violations_raise(self, text, message):
        with pytest.raises(ValueError, match=message):
            parse_exposition(text)


# ======================================================================
# LatencyWindow
# ======================================================================
class TestLatencyWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyWindow(capacity=0)
        with pytest.raises(ValueError):
            LatencyWindow(buckets=())
        with pytest.raises(ValueError):
            LatencyWindow(buckets=(0.1, 0.1))
        with pytest.raises(ValueError):
            LatencyWindow().quantile(1.5)

    def test_capacity_is_public(self):
        assert LatencyWindow(capacity=16).capacity == 16
        assert LatencyWindow().bucket_bounds == DEFAULT_LATENCY_BUCKETS

    def test_quantiles_nearest_rank(self):
        window = LatencyWindow()
        for value in (0.1, 0.2, 0.3, 0.4):
            window.record(value)
        assert window.quantile(0.0) == 0.1
        assert window.quantile(0.5) == 0.2
        assert window.quantile(1.0) == 0.4

    def test_quantile_cache_invalidated_by_record(self):
        window = LatencyWindow()
        window.record(0.5)
        assert window.quantile(1.0) == 0.5  # populates the cached sort
        window.record(0.9)
        assert window.quantile(1.0) == 0.9  # cache was invalidated

    def test_histogram_is_cumulative_and_survives_ring_overwrite(self):
        window = LatencyWindow(capacity=2, buckets=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 0.5, 0.5):
            window.record(value)
        bounds, cumulative, total, count = window.histogram()
        assert bounds == (0.1, 1.0)
        # The ring only retains the last 2 samples, but the histogram
        # remembers all 5 — Prometheus counters never decrease.
        assert len(window) == 2
        assert cumulative == [2, 5]
        assert count == window.recorded == 5
        assert total == pytest.approx(0.05 * 2 + 0.5 * 3)
        assert window.sum_seconds == total

    def test_bucket_counts_monotone_for_random_samples(self):
        window = LatencyWindow()
        rng = random.Random(3)
        for _ in range(500):
            window.record(rng.expovariate(100.0))
        _, cumulative, _, count = window.histogram()
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] <= count == 500

    def test_sample_above_every_bound_lands_only_in_inf(self):
        window = LatencyWindow(buckets=(0.1,))
        window.record(5.0)
        _, cumulative, _, count = window.histogram()
        assert cumulative == [0] and count == 1

    def test_reset(self):
        window = LatencyWindow(capacity=4)
        for value in (0.1, 0.2):
            window.record(value)
        window.reset()
        assert len(window) == 0 and window.recorded == 0
        assert window.quantile(0.5) == 0.0
        _, cumulative, total, count = window.histogram()
        assert sum(cumulative) == 0 and total == 0.0 and count == 0
        window.record(0.3)
        assert window.quantile(0.5) == 0.3


# ======================================================================
# EngineStats: exposition + worker-counter merging
# ======================================================================
class TestEngineStats:
    def _populated(self) -> EngineStats:
        stats = EngineStats()
        stats.record_query(0.002, cached=False, phases={"distance": 0.001, "verification": 0.0005})
        stats.record_query(0.0001, cached=True)
        stats.record_query(0.05, cached=False, error=True, reused_backward=True)
        stats.record_batch()
        stats.record_scratch(reused=False)
        stats.record_scratch(reused=True)
        stats.record_propagation_scratch(reused=False)
        return stats

    def test_phase_windows_recorded_only_for_computed_queries(self):
        stats = self._populated()
        assert stats.phase_recorded("distance") == 1
        assert stats.phase_recorded("verification") == 1
        assert stats.phase_recorded("ordering") == 0
        assert stats.phase_percentile_seconds("distance", 0.5) == 0.001
        snap = stats.snapshot()
        assert set(snap["phases"]) == {"distance", "verification"}
        assert snap["phases"]["distance"]["samples"] == 1
        assert snap["phases"]["distance"]["total_seconds"] == pytest.approx(0.001)

    def test_record_query_rejects_unknown_phase(self):
        stats = EngineStats()
        with pytest.raises(KeyError):
            stats.record_query(0.001, cached=False, phases={"warmup": 0.1})

    def test_merge_counters_folds_worker_deltas(self):
        stats = EngineStats()
        stats.record_scratch(reused=False)
        stats.merge_counters(
            {"scratch_allocations": 2, "scratch_reuses": 5, "sharded_backward_passes": 1}
        )
        assert stats.scratch_allocations == 3
        assert stats.scratch_reuses == 5
        assert stats.sharded_backward_passes == 1

    def test_merge_counters_rejects_unknown_and_negative(self):
        stats = EngineStats()
        with pytest.raises(ValueError, match="unknown counter"):
            stats.merge_counters({"cache_hits": 1})
        with pytest.raises(ValueError, match=">= 0"):
            stats.merge_counters({"scratch_reuses": -1})
        # A rejected mapping must not partially apply.
        assert stats.scratch_reuses == 0

    def test_to_prometheus_parses_and_matches_snapshot(self):
        stats = self._populated()
        exposition = stats.to_prometheus()
        assert exposition.endswith("\n")
        grouped = samples_by_name(parse_exposition(exposition))
        snap = stats.snapshot()
        assert grouped["repro_queries_served_total"][0].value == snap["queries_served"] == 3
        assert grouped["repro_cache_hits_total"][0].value == 1
        assert grouped["repro_cache_misses_total"][0].value == 2
        assert grouped["repro_errors_total"][0].value == 1
        assert grouped["repro_shared_backward_reuses_total"][0].value == 1
        assert grouped["repro_scratch_allocations_total"][0].value == 1
        assert grouped["repro_scratch_reuses_total"][0].value == 1
        assert grouped["repro_cache_hit_ratio"][0].value == pytest.approx(1 / 3)

    def test_to_prometheus_histogram_semantics(self):
        exposition = self._populated().to_prometheus()
        grouped = samples_by_name(parse_exposition(exposition))

        def check_series(samples, expected_count):
            values = [s.value for s in samples]
            assert all(a <= b for a, b in zip(values, values[1:]))
            assert samples[-1].labels["le"] == "+Inf"
            assert samples[-1].value == expected_count

        check_series(grouped["repro_query_latency_seconds_bucket"], 3)
        assert grouped["repro_query_latency_seconds_count"][0].value == 3
        assert grouped["repro_query_latency_seconds_sum"][0].value == pytest.approx(
            0.002 + 0.0001 + 0.05
        )
        # One labelled series per canonical phase, each internally monotone.
        phase_buckets = grouped["repro_phase_latency_seconds_bucket"]
        assert {s.labels["phase"] for s in phase_buckets} == set(PHASE_NAMES)
        for phase in PHASE_NAMES:
            series = [s for s in phase_buckets if s.labels["phase"] == phase]
            check_series(series, 1 if phase in ("distance", "verification") else 0)

    def test_reset_zeroes_exposition(self):
        stats = self._populated()
        stats.reset()
        grouped = samples_by_name(parse_exposition(stats.to_prometheus()))
        assert grouped["repro_queries_served_total"][0].value == 0
        assert grouped["repro_query_latency_seconds_count"][0].value == 0
        assert stats.phase_recorded("distance") == 0

    def test_concurrent_scrape_while_recording(self):
        """Scrapes taken mid-hammer always parse and end totals are exact."""
        stats = EngineStats(latency_window=64)
        per_thread, threads = 300, 4
        stop = threading.Event()
        failures: list = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for index in range(per_thread):
                    stats.record_query(
                        rng.random() / 100.0,
                        cached=index % 3 == 0,
                        phases=None if index % 3 == 0 else {"distance": 0.001},
                    )
                    stats.merge_counters({"scratch_reuses": 1})
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        def scrape() -> None:
            try:
                while not stop.is_set():
                    samples = parse_exposition(stats.to_prometheus())
                    grouped = samples_by_name(samples)
                    served = grouped["repro_queries_served_total"][0].value
                    hits = grouped["repro_cache_hits_total"][0].value
                    misses = grouped["repro_cache_misses_total"][0].value
                    assert hits + misses == served
                    stats.snapshot()
                    stats.percentile_seconds(0.95)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        workers = [threading.Thread(target=hammer, args=(seed,)) for seed in range(threads)]
        scraper = threading.Thread(target=scrape)
        scraper.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        scraper.join()
        assert not failures
        assert stats.queries_served == per_thread * threads
        assert stats.scratch_reuses == per_thread * threads
        assert stats.phase_recorded("distance") == stats.cache_misses


# ======================================================================
# EVE query spans
# ======================================================================
class TestEVESpans:
    def test_query_records_phase_spans_with_attributes(self, figure1_graph, figure1_ids):
        tracer = Tracer()
        eve = EVE(figure1_graph)
        result = eve.query(
            figure1_ids("s"), figure1_ids("t"), 4, tracer=tracer
        )
        by_name = {event.name: event for event in tracer.events()}
        # k = 4 answers exactly from the upper bound: no ordering (k < 6)
        # and no verification span.
        assert set(by_name) >= {
            "phase.distance",
            "phase.propagation",
            "phase.upper_bound",
            "query",
        }
        assert by_name["phase.distance"].attributes["strategy"]
        propagation = by_name["phase.propagation"].attributes
        assert "forward_reached" in propagation and "backward_reached" in propagation
        upper = by_name["phase.upper_bound"].attributes
        assert upper["labeled_edges"] >= upper["definite_edges"]
        query_span = by_name["query"]
        assert query_span.attributes["source"] == figure1_ids("s")
        assert query_span.attributes["k"] == 4
        assert query_span.attributes["answer_edges"] == len(result.edges)
        # Span durations mirror PhaseStats — no second clock read.
        assert by_name["phase.distance"].duration == result.phases.distance_seconds

    def test_large_k_query_records_ordering_span(self, figure1_graph, figure1_ids):
        tracer = Tracer()
        eve = EVE(figure1_graph)
        eve.query(figure1_ids("s"), figure1_ids("t"), 7, tracer=tracer)
        names = {event.name for event in tracer.events()}
        assert "phase.ordering" in names

    def test_verification_span_counts_dfs_work(self, small_power_law_graph):
        tracer = Tracer()
        eve = EVE(small_power_law_graph)
        for source in range(4):
            for target in range(4, 8):
                eve.query(source, target, 7, tracer=tracer)
        verification = [
            event for event in tracer.events() if event.name == "phase.verification"
        ]
        assert verification
        assert any(event.attributes["edges_checked"] > 0 for event in verification)
        for event in verification:
            attrs = event.attributes
            assert attrs["expansions"] >= 0
            assert attrs["edges_confirmed"] >= 0

    def test_unreachable_query_still_records_query_span(self, diamond_graph):
        tracer = Tracer()
        eve = EVE(diamond_graph)
        result = eve.query(3, 0, 4, tracer=tracer)  # no 3 -> 0 path
        assert result.is_empty
        query_events = [event for event in tracer.events() if event.name == "query"]
        assert len(query_events) == 1
        assert query_events[0].attributes["empty"] is True

    def test_tracer_off_records_nothing(self, figure1_graph, figure1_ids):
        eve = EVE(figure1_graph)
        untraced = eve.query(figure1_ids("s"), figure1_ids("t"), 4)
        traced = eve.query(figure1_ids("s"), figure1_ids("t"), 4, tracer=Tracer())
        assert sorted(untraced.edges) == sorted(traced.edges)


# ======================================================================
# Cross-backend consistency (the PR's acceptance contract)
# ======================================================================
def _workload(graph, count: int, seed: int, ks=(4, 6, 7)):
    rng = random.Random(seed)
    n = graph.num_vertices
    queries = []
    while len(queries) < count:
        source, target = rng.randrange(n), rng.randrange(n)
        if source != target:
            queries.append((source, target, rng.choice(ks)))
    return queries


@pytest.fixture(scope="module")
def telemetry_graph():
    # Large enough that per-miss phase work (hundreds of microseconds to
    # milliseconds at k >= 6) dominates the fixed per-query overhead the
    # coverage assertion tolerates (validation, result assembly, the
    # tracer.record calls themselves — a few microseconds each).
    return erdos_renyi(800, 4.0, seed=7, name="telemetry")


@pytest.fixture(scope="module")
def backend_telemetry(telemetry_graph):
    """Serve one seeded workload on every backend, tracing enabled."""
    queries = _workload(telemetry_graph, 40, seed=11, ks=(6, 7, 8))
    observed = {}
    for backend in EXECUTOR_BACKENDS:
        engine = SPGEngine(
            telemetry_graph, executor_backend=backend, cache_size=0, max_workers=2
        )
        engine.tracer = Tracer()
        with engine:
            report = engine.run_batch(queries)
        observed[backend] = {
            "snapshot": engine.stats.snapshot(),
            "events": engine.tracer.events(),
            "latency_sum": sum(
                outcome.latency_seconds
                for outcome in report.outcomes
                if not outcome.cached
            ),
            "answers": [
                (outcome.source, outcome.target, outcome.k, sorted(outcome.edges or []))
                for outcome in report.outcomes
            ],
        }
    return observed


class TestBackendTelemetryConsistency:
    def test_scratch_counters_cover_every_miss_on_every_backend(self, backend_telemetry):
        """The process backend's scratch blind spot is closed: on *every*
        backend each miss checks out exactly one scratch bundle, and
        allocations stay bounded by the worker pool."""
        for backend, data in backend_telemetry.items():
            snap = data["snapshot"]
            assert (
                snap["scratch_allocations"] + snap["scratch_reuses"]
                == snap["cache_misses"]
            ), backend
            assert (
                snap["propagation_scratch_allocations"]
                + snap["propagation_scratch_reuses"]
                == snap["cache_misses"]
            ), backend
            assert 1 <= snap["scratch_allocations"] <= 2, backend

    def test_phase_histograms_identical_across_backends(self, backend_telemetry):
        reference = backend_telemetry["serial"]["snapshot"]
        for backend, data in backend_telemetry.items():
            snap = data["snapshot"]
            assert snap["cache_misses"] == reference["cache_misses"], backend
            assert set(snap["phases"]) == set(reference["phases"]), backend
            for phase, aggregates in snap["phases"].items():
                assert (
                    aggregates["samples"] == reference["phases"][phase]["samples"]
                ), (backend, phase)

    def test_every_phase_window_counts_every_miss(self, backend_telemetry):
        for backend, data in backend_telemetry.items():
            snap = data["snapshot"]
            for phase in PHASE_NAMES:
                assert (
                    snap["phases"][phase]["samples"] == snap["cache_misses"]
                ), (backend, phase)

    def test_trace_event_names_identical_across_backends(self, backend_telemetry):
        """Process workers ship their spans home: every backend yields the
        same multiset of span names for the same workload."""
        reference = Counter(e.name for e in backend_telemetry["serial"]["events"])
        assert reference["query"] == backend_telemetry["serial"]["snapshot"]["cache_misses"]
        for backend, data in backend_telemetry.items():
            assert Counter(e.name for e in data["events"]) == reference, backend

    def test_phase_spans_cover_85_percent_of_miss_latency(self, backend_telemetry):
        """Acceptance bar: per-phase spans explain >= 85% of the recorded
        end-to-end miss latency on every backend (the remainder is cache
        keying, scratch checkout and result plumbing — a fixed per-query
        cost, so its *share* grew when the flat verification kernel cut the
        dominant phase time; the bar was 90% before that rewrite)."""
        for backend, data in backend_telemetry.items():
            phase_seconds = sum(
                event.duration
                for event in data["events"]
                if event.name.startswith("phase.")
            )
            assert data["latency_sum"] > 0.0, backend
            coverage = phase_seconds / data["latency_sum"]
            assert coverage >= 0.85, (backend, coverage)
            # Spans measure real time inside the query: never more than
            # the whole query took (allow timer-resolution slack).
            assert coverage <= 1.0 + 1e-6, (backend, coverage)

    def test_answers_identical_across_backends(self, backend_telemetry):
        reference = backend_telemetry["serial"]["answers"]
        for backend, data in backend_telemetry.items():
            assert data["answers"] == reference, backend


class TestEngineTracerAttachment:
    def test_disabled_tracer_normalises_to_none(self, telemetry_graph):
        with SPGEngine(telemetry_graph, tracer=NOOP_TRACER) as engine:
            # A disabled tracer must leave the hot path on the one-branch
            # ``tracer is None`` fast path, so the engine folds it to None.
            assert engine.tracer is None
            live = Tracer()
            engine.tracer = live
            assert engine.tracer is live
            engine.tracer = NoopTracer()
            assert engine.tracer is None


class TestShardedTelemetry:
    def test_sharded_process_engine_reports_full_telemetry(self, telemetry_graph):
        # Repeat targets so the planner forms shared (t, k) groups and the
        # sharded backward kernel runs inside pool workers.  k is kept high
        # so per-query forward work dwarfs fixed per-query overhead even
        # when the backward pass is shared (the coverage bar below).
        base = _workload(telemetry_graph, 12, seed=23, ks=(7, 8))
        queries = []
        for source, target, k in base:
            queries.append((source, target, k))
            queries.append(((source + 1) % telemetry_graph.num_vertices, target, k))
        queries = [q for q in queries if q[0] != q[1]]

        engine = ShardedSPGEngine(
            telemetry_graph,
            num_shards=3,
            executor_backend="process",
            cache_size=0,
            max_workers=2,
        )
        engine.tracer = Tracer()
        with engine:
            report = engine.run_batch(queries)
        snap = engine.stats.snapshot()
        events = engine.tracer.events()

        # Worker-side sharded backward passes reached the parent counter.
        assert snap["sharded_backward_passes"] > 0
        misses = snap["cache_misses"]
        assert snap["scratch_allocations"] + snap["scratch_reuses"] == misses
        for phase in PHASE_NAMES:
            assert snap["phases"][phase]["samples"] == misses
        names = Counter(event.name for event in events)
        assert names["query"] == misses
        phase_seconds = sum(
            event.duration for event in events if event.name.startswith("phase.")
        )
        latency_sum = sum(
            outcome.latency_seconds for outcome in report.outcomes if not outcome.cached
        )
        assert phase_seconds / latency_sum >= 0.90

        # And the answers match unsharded serial serving.
        with SPGEngine(telemetry_graph, executor_backend="serial", cache_size=0) as ref:
            reference = ref.run_batch(queries)
        assert [
            sorted(outcome.edges or []) for outcome in report.outcomes
        ] == [sorted(outcome.edges or []) for outcome in reference.outcomes]


# ======================================================================
# Trajectory snapshots (BENCH_<pr>.json)
# ======================================================================
def _valid_snapshot(pr: int = 99) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "pr": pr,
        "scale": "tiny",
        "created": "2026-01-01T00:00:00Z",
        "workload": {"num_vertices": 10, "num_queries": 2, "seed": 1, "repeats": 1},
        "entries": [
            {"name": "kernel.distance_index.best_ms_per_query", "kind": "kernel", "value": 0.5, "unit": "ms"},
            {"name": "phase.distance.p50_ms", "kind": "phase", "value": 0.1, "unit": "ms"},
            {"name": "serving.throughput_qps", "kind": "serving", "value": 1000.0, "unit": "qps"},
        ],
    }


class TestTrajectorySchema:
    def test_valid_snapshot_passes(self):
        validate_snapshot(_valid_snapshot())

    def test_snapshot_filename(self):
        assert snapshot_filename(6) == "BENCH_6.json"

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.__setitem__("schema_version", 0), "schema_version"),
            (lambda d: d.__setitem__("pr", "six"), "'pr'"),
            (lambda d: d.__setitem__("pr", True), "'pr'"),
            (lambda d: d.__setitem__("scale", 3), "'scale'"),
            (lambda d: d.__setitem__("entries", []), "non-empty"),
            (lambda d: d["entries"].append(dict(d["entries"][0])), "duplicate"),
            (lambda d: d["entries"][0].pop("unit"), "missing fields"),
            (lambda d: d["entries"][0].__setitem__("kind", "vibes"), "not in"),
            (lambda d: d["entries"][0].__setitem__("value", float("nan")), "finite"),
            (lambda d: d["entries"][0].__setitem__("value", float("inf")), "finite"),
            (lambda d: d["entries"][0].__setitem__("value", True), "number"),
            (lambda d: d["entries"][0].__setitem__("name", ""), "non-empty string"),
            (lambda d: d["entries"].pop(0), "no 'kernel' entries"),
            (lambda d: d["entries"].pop(1), "no 'phase' entries"),
        ],
    )
    def test_invalid_snapshots_rejected(self, mutate, message):
        data = _valid_snapshot()
        mutate(data)
        with pytest.raises(ValueError, match=message):
            validate_snapshot(data)

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_99.json"
        write_snapshot(_valid_snapshot(), str(path))
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert load_snapshot(str(path)) == _valid_snapshot()

    def test_write_refuses_invalid(self, tmp_path):
        bad = _valid_snapshot()
        bad["entries"] = []
        with pytest.raises(ValueError):
            write_snapshot(bad, str(tmp_path / "nope.json"))
        assert not (tmp_path / "nope.json").exists()

    def test_collect_snapshot_measures_all_kinds(self):
        data = collect_snapshot(7, num_vertices=150, num_queries=12, repeats=1)
        validate_snapshot(data)
        assert data["pr"] == 7
        names = {entry["name"] for entry in data["entries"]}
        assert "kernel.distance_index.best_ms_per_query" in names
        assert "kernel.backward_bfs.best_ms_per_pass" in names
        assert "serving.throughput_qps" in names
        assert "serving.dynamic.apply_ms" in names
        assert "serving.dynamic.overlay_vs_rebuild_speedup" in names
        assert "serving.dynamic.cache_retention_ratio" in names
        assert any(name.startswith("phase.") for name in names)
        kinds = {entry["kind"] for entry in data["entries"]}
        assert kinds == {"kernel", "phase", "serving"}
        assert all(
            entry["value"] >= 0 and math.isfinite(entry["value"])
            for entry in data["entries"]
        )

    def test_committed_pr_snapshot_is_valid(self):
        """BENCH_6.json at the repo root must load under the schema — the
        same gate CI runs via ``python -m repro.bench check --pr 6``."""
        data = load_snapshot(str(REPO_ROOT / "BENCH_6.json"))
        assert data["pr"] == 6


class TestTrajectoryCLI:
    def _run(self, *args, timeout=120):
        return subprocess.run(
            [sys.executable, "-m", "repro.bench", *args],
            capture_output=True,
            text=True,
            timeout=timeout,
            env={"PYTHONPATH": str(SRC_DIR)},
        )

    def test_check_passes_on_valid_snapshot(self, tmp_path):
        path = tmp_path / "BENCH_99.json"
        write_snapshot(_valid_snapshot(), str(path))
        completed = self._run("check", "--pr", "99", "--path", str(path))
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout
        assert "kernel" in completed.stdout and "phase" in completed.stdout

    def test_check_fails_on_missing_snapshot(self, tmp_path):
        completed = self._run("check", "--pr", "99", "--path", str(tmp_path / "no.json"))
        assert completed.returncode == 1
        assert "snapshot" in completed.stderr and "commit" in completed.stderr

    def test_check_fails_on_invalid_snapshot(self, tmp_path):
        path = tmp_path / "BENCH_99.json"
        path.write_text('{"schema_version": 0}\n', encoding="utf-8")
        completed = self._run("check", "--pr", "99", "--path", str(path))
        assert completed.returncode == 1
        assert "invalid" in completed.stderr

    def test_trajectory_commands_require_pr(self):
        completed = self._run("check")
        assert completed.returncode == 2
        assert "--pr" in completed.stderr


# ======================================================================
# Service CLI: --metrics-out / --trace-out
# ======================================================================
class TestServiceCLITelemetry:
    def _run(self, args, stdin_text):
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *args],
            input=stdin_text,
            capture_output=True,
            text=True,
            timeout=300,
            env={"PYTHONPATH": str(SRC_DIR)},
        )

    def test_metrics_and_trace_round_trip(self, tmp_path):
        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\na c\nc d\nd e\nb e\n", encoding="utf-8")
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        stdin_text = "a d 3\na e 4\nb e 2\na d 3\n"
        completed = self._run(
            [
                "--edges", str(edges),
                "--backend", "serial",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
            ],
            stdin_text,
        )
        assert completed.returncode == 0, completed.stderr

        grouped = samples_by_name(parse_exposition(metrics.read_text(encoding="utf-8")))
        assert grouped["repro_queries_served_total"][0].value == 4
        assert grouped["repro_cache_hits_total"][0].value == 1
        assert grouped["repro_cache_misses_total"][0].value == 3
        assert grouped["repro_query_latency_seconds_count"][0].value == 4
        phase_counts = {
            sample.labels["phase"]: sample.value
            for sample in grouped["repro_phase_latency_seconds_bucket"]
            if sample.labels["le"] == "+Inf"
        }
        assert phase_counts == {phase: 3 for phase in PHASE_NAMES}

        lines = trace.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert sum(1 for record in records if record["name"] == "query") == 3
        for record in records:
            assert {"name", "started", "duration_seconds", "wall_time", "attributes"} <= set(record)

    def test_metrics_to_stderr(self, tmp_path):
        edges = tmp_path / "graph.txt"
        edges.write_text("a b\nb c\n", encoding="utf-8")
        completed = self._run(["--edges", str(edges), "--metrics-out", "-"], "a c 2\n")
        assert completed.returncode == 0, completed.stderr
        samples = parse_exposition(completed.stderr)
        assert samples_by_name(samples)["repro_queries_served_total"][0].value == 1


# ======================================================================
# Atomic JSONL export (regression: truncate-on-open destroyed the
# previous export whenever serialisation failed mid-write)
# ======================================================================
class TestAtomicExport:
    def test_failed_export_leaves_previous_file_intact(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.append(_event("good", phase="one"))
        assert tracer.export_jsonl(str(path)) == 1
        before = path.read_text(encoding="utf-8")

        tracer.append(_event("bad", payload=object()))  # not JSON-serialisable
        with pytest.raises(TypeError):
            tracer.export_jsonl(str(path))
        assert path.read_text(encoding="utf-8") == before

    def test_failed_export_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.append(_event("bad", payload=object()))
        with pytest.raises(TypeError):
            tracer.export_jsonl(str(path))
        assert list(tmp_path.iterdir()) == []

    def test_successful_export_replaces_previous_content(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.append(_event("first"))
        tracer.export_jsonl(str(path))
        tracer.append(_event("second"))
        assert tracer.export_jsonl(str(path)) == 2
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["first", "second"]
        assert [entry.name for entry in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_handle_export_is_unchanged(self):
        buffer = io.StringIO()
        tracer = Tracer()
        tracer.append(_event("x"))
        assert tracer.export_jsonl(buffer) == 1
        assert json.loads(buffer.getvalue())["name"] == "x"
