"""Dynamic graphs: delta overlays, epoch swap, and scoped invalidation.

Four layers of guarantees, each with its own differential oracle:

1. **Structure** — a :class:`~repro.graph.delta.DeltaOverlayView` is
   content-identical to a from-scratch :class:`DiGraph` over the mutated
   edge list (adjacency, CSR views, edge set), while sharing untouched
   rows with the previous epoch and chaining its fingerprint lineage.
2. **Serving** — for random mutation schedules over generator topologies
   x ``k in {3..8}`` x executor backends, every post-delta engine answer
   is identical to a cold engine on a from-scratch rebuild at the same
   epoch, including answers served from retained cache entries.
3. **Scoped invalidation** — over-invalidation is allowed, under-
   invalidation is a failure: after every delta, every *retained* cache
   entry is audited against a from-scratch oracle; a localized-mutation
   workload must retain >= 50% of its entries (the acceptance bar).
4. **Concurrency** — interleaving ``apply_delta`` with live
   ``run_batch``/``astream`` traffic never yields a torn epoch: each
   individual answer matches one of the graph epochs alive during the
   call, never a mix.
"""

from __future__ import annotations

import asyncio
import pickle
import random
import threading

import pytest

from repro.core.eve import EVE, EVEConfig
from repro.core.distances import bounded_multi_source_distances
from repro.exceptions import EdgeError, GraphError
from repro.graph import DeltaOverlayView, DiGraph, GraphDelta, apply_delta
from repro.graph.delta import _splice_csr
from repro.graph.digraph import _build_csr
from repro.graph.generators import erdos_renyi, power_law_cluster
from repro.service import ResultCache, SPGEngine, ShardedSPGEngine, make_cache_key


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def random_delta(graph: DiGraph, rng: random.Random, inserts: int, deletes: int) -> GraphDelta:
    """A random delta against ``graph``: fresh edges in, existing edges out."""
    n = graph.num_vertices
    insert_edges = []
    for _ in range(inserts):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            insert_edges.append((u, v))
    existing = sorted(graph.edge_set())
    delete_edges = rng.sample(existing, min(len(existing), deletes))
    insert_edges = [edge for edge in insert_edges if edge not in set(delete_edges)]
    return GraphDelta(inserts=insert_edges, deletes=delete_edges)


def mutated_edges(graph: DiGraph, delta: GraphDelta) -> set:
    """The edge set a from-scratch rebuild at the next epoch must have."""
    edges = graph.edge_set()
    edges.difference_update(delta.deletes)
    edges.update(delta.inserts)
    return edges


def rebuild(graph: DiGraph, delta: GraphDelta) -> DiGraph:
    return DiGraph(graph.num_vertices, sorted(mutated_edges(graph, delta)))


def random_queries(rng: random.Random, n: int, count: int, ks=(3, 4, 5, 6, 7, 8)):
    queries = []
    while len(queries) < count:
        s, t = rng.randrange(n), rng.randrange(n)
        if s != t:
            queries.append((s, t, rng.choice(ks)))
    return queries


def assert_same_outcomes(report, oracle_report):
    for got, want in zip(report, oracle_report):
        assert (got.source, got.target, got.k) == (want.source, want.target, want.k)
        assert (got.error is None) == (want.error is None), (got, want)
        assert got.edges == want.edges, (got.source, got.target, got.k)


# ----------------------------------------------------------------------
# GraphDelta validation
# ----------------------------------------------------------------------
class TestGraphDelta:
    def test_deduplicates_preserving_order(self):
        delta = GraphDelta(inserts=[(3, 4), (1, 2), (3, 4)], deletes=[(5, 6), (5, 6)])
        assert delta.inserts == ((3, 4), (1, 2))
        assert delta.deletes == ((5, 6),)
        assert delta.num_inserts == 2 and delta.num_deletes == 1

    def test_self_loops_dropped(self):
        delta = GraphDelta(inserts=[(2, 2), (0, 1)], deletes=[(7, 7)])
        assert delta.inserts == ((0, 1),)
        assert delta.deletes == ()
        assert delta.dropped_self_loops == 2

    def test_edge_in_both_lists_rejected(self):
        with pytest.raises(GraphError, match="both inserts and deletes"):
            GraphDelta(inserts=[(0, 1)], deletes=[(0, 1)])

    @pytest.mark.parametrize("bad", [(True, 1), (0, 2.5), ("a", 1), (None, 0)])
    def test_non_integer_endpoints_rejected(self, bad):
        with pytest.raises(GraphError, match="non-integer endpoint"):
            GraphDelta(inserts=[bad])

    def test_malformed_pairs_rejected(self):
        with pytest.raises(GraphError, match="not a \\(u, v\\) pair"):
            GraphDelta(inserts=[(1, 2, 3)])

    def test_lists_accepted_as_pairs(self):
        delta = GraphDelta(inserts=[[0, 1]], deletes=[[2, 3]])
        assert delta.inserts == ((0, 1),) and delta.deletes == ((2, 3),)

    def test_out_of_range_rejected_at_apply(self):
        graph = DiGraph(4, [(0, 1)])
        with pytest.raises(EdgeError, match="outside"):
            apply_delta(graph, GraphDelta(inserts=[(0, 9)]))
        with pytest.raises(EdgeError, match="outside"):
            apply_delta(graph, GraphDelta(deletes=[(-1, 2)]))

    def test_empty_and_touched(self):
        assert GraphDelta().is_empty
        delta = GraphDelta(inserts=[(0, 1)], deletes=[(2, 3)])
        assert delta.touched_vertices() == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# Overlay structure vs from-scratch rebuild
# ----------------------------------------------------------------------
class TestDeltaOverlayView:
    def test_matches_rebuild_everywhere(self):
        rng = random.Random(11)
        graph = erdos_renyi(50, 3.0, seed=4)
        view = graph
        for step in range(12):
            delta = random_delta(view, rng, inserts=4, deletes=3)
            oracle = rebuild(view, delta)
            view = apply_delta(view, delta)
            assert isinstance(view, DeltaOverlayView)
            assert view == oracle
            assert view.num_edges == oracle.num_edges
            for u in range(50):
                assert sorted(view.out_neighbors(u)) == sorted(oracle.out_neighbors(u))
                assert sorted(view.in_neighbors(u)) == sorted(oracle.in_neighbors(u))
            # The spliced CSR must equal a from-scratch flatten of the
            # view's own adjacency (same order, same offsets).
            assert view.csr() == _build_csr(view._out)
            assert view.csr_reverse() == _build_csr(view._in)

    def test_untouched_rows_shared_by_reference(self):
        graph = erdos_renyi(40, 2.0, seed=9)
        view = apply_delta(graph, GraphDelta(inserts=[(0, 20)]))
        shared_out = sum(1 for u in range(40) if view._out[u] is graph._out[u])
        assert shared_out >= 39  # only vertex 0's out-row is fresh
        shared_in = sum(1 for u in range(40) if view._in[u] is graph._in[u])
        assert shared_in >= 39  # only vertex 20's in-row is fresh

    def test_idempotent_noops_are_skipped(self):
        graph = DiGraph(5, [(0, 1), (1, 2)])
        view = apply_delta(
            graph, GraphDelta(inserts=[(0, 1), (2, 3)], deletes=[(3, 4)])
        )
        assert view.applied_inserts == ((2, 3),)
        assert view.applied_deletes == ()
        noop = apply_delta(graph, GraphDelta(inserts=[(0, 1)], deletes=[(2, 0)]))
        assert noop.is_noop
        assert noop.fingerprint() == graph.fingerprint()

    def test_fingerprint_lineage(self):
        graph = erdos_renyi(30, 2.0, seed=1)
        delta = GraphDelta(inserts=[(0, 15)])
        view = apply_delta(graph, delta)
        assert view.fingerprint() != graph.fingerprint()
        assert view.root_fingerprint == graph.fingerprint()
        # Deterministic: same base + same net overlay -> same fingerprint,
        # regardless of the order the delta was split into steps.
        two_step = apply_delta(
            apply_delta(graph, GraphDelta(inserts=[(0, 15), (1, 16)])),
            GraphDelta(deletes=[(1, 16)]),
        )
        assert two_step.fingerprint() == view.fingerprint()
        # Content differs from an equal from-scratch graph's fingerprint —
        # allowed (over-invalidation only) and documented.
        assert view.fingerprint() != rebuild(graph, delta).fingerprint()

    def test_cancelling_delta_restores_root_fingerprint(self):
        graph = erdos_renyi(30, 2.0, seed=2)
        view = apply_delta(graph, GraphDelta(inserts=[(0, 15)]))
        back = apply_delta(view, GraphDelta(deletes=[(0, 15)]))
        assert back == graph
        assert back.fingerprint() == graph.fingerprint()
        assert back.overlay_size == 0

    def test_overlay_merges_instead_of_chaining(self):
        graph = erdos_renyi(30, 2.0, seed=3)
        view = graph
        rng = random.Random(5)
        for _ in range(6):
            view = apply_delta(view, random_delta(view, rng, 2, 1))
        assert isinstance(view, DeltaOverlayView)
        # The lineage root is still the original base, not an intermediate.
        assert view.root_fingerprint == graph.fingerprint()

    def test_compact_shares_storage_and_fingerprint(self):
        graph = erdos_renyi(30, 2.0, seed=6)
        view = apply_delta(graph, GraphDelta(inserts=[(0, 15), (1, 16)]))
        compacted = view.compact()
        assert type(compacted) is DiGraph
        assert compacted == view
        assert compacted.fingerprint() == view.fingerprint()
        assert compacted._out is view._out
        assert compacted._csr is view._csr
        # Deltas on the compacted graph chain off the *new* root.
        next_view = apply_delta(compacted, GraphDelta(inserts=[(2, 17)]))
        assert next_view.root_fingerprint == compacted.fingerprint()
        assert next_view.overlay_size == 1

    def test_pickle_round_trip(self):
        graph = erdos_renyi(30, 2.0, seed=7)
        view = apply_delta(graph, GraphDelta(inserts=[(0, 15)], deletes=[]))
        clone = pickle.loads(pickle.dumps(view))
        assert isinstance(clone, DeltaOverlayView)
        assert clone == view
        assert clone.fingerprint() == view.fingerprint()
        assert clone.csr() == view.csr()
        # Unpickled views are detached (empty overlay, self-rooted).
        assert clone.overlay_size == 0

    def test_reverse_and_copy_still_work(self):
        graph = erdos_renyi(30, 2.0, seed=8)
        view = apply_delta(graph, GraphDelta(inserts=[(0, 15)]))
        reverse = view.reverse()
        assert reverse.edge_set() == {(v, u) for (u, v) in view.edge_set()}
        clone = view.copy()
        assert clone == view and clone.fingerprint() == view.fingerprint()

    def test_empty_graph_and_full_deletion(self):
        empty = DiGraph.empty(3)
        grown = apply_delta(empty, GraphDelta(inserts=[(0, 1), (1, 2)]))
        assert grown.edge_set() == {(0, 1), (1, 2)}
        bare = apply_delta(grown, GraphDelta(deletes=[(0, 1), (1, 2)]))
        assert bare.num_edges == 0
        assert bare.fingerprint() == empty.fingerprint()

    def test_splice_csr_against_reference(self):
        rng = random.Random(13)
        for trial in range(20):
            n = rng.randrange(1, 12)
            adjacency = [
                sorted(rng.sample(range(n), rng.randrange(0, n))) for _ in range(n)
            ]
            base = _build_csr(adjacency)
            changed = {}
            for u in rng.sample(range(n), rng.randrange(0, n + 1)):
                changed[u] = sorted(rng.sample(range(n), rng.randrange(0, n)))
            merged = [changed.get(u, adjacency[u]) for u in range(n)]
            assert _splice_csr(base, changed, n) == _build_csr(merged), trial


# ----------------------------------------------------------------------
# Union-graph bounded multi-source BFS
# ----------------------------------------------------------------------
class TestBoundedMultiSourceDistances:
    def _oracle(self, edges, n, sources, depth):
        from collections import deque

        adjacency = {u: [] for u in range(n)}
        for u, v in edges:
            adjacency[u].append(v)
        dist = {s: 0 for s in sources}
        queue = deque(sources)
        while queue:
            u = queue.popleft()
            if dist[u] >= depth:
                continue
            for v in adjacency[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_oracle_with_extra_edges(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi(40, 2.5, seed=seed)
        extra = {}
        extra_edges = []
        for _ in range(6):
            u, v = rng.randrange(40), rng.randrange(40)
            if u != v:
                extra.setdefault(u, []).append(v)
                extra_edges.append((u, v))
        sources = {rng.randrange(40) for _ in range(3)}
        depth = rng.randrange(0, 6)
        union_edges = list(graph.edge_set()) + extra_edges
        want = self._oracle(union_edges, 40, sources, depth)
        got = bounded_multi_source_distances(
            graph, sources, depth, extra_adjacency=extra
        )
        assert got == want
        # Reverse traversal == forward traversal of the flipped edges.
        reverse_extra = {}
        for u, v in extra_edges:
            reverse_extra.setdefault(v, []).append(u)
        want_reverse = self._oracle(
            [(v, u) for (u, v) in union_edges], 40, sources, depth
        )
        got_reverse = bounded_multi_source_distances(
            graph, sources, depth, reverse=True, extra_adjacency=reverse_extra
        )
        assert got_reverse == want_reverse

    def test_empty_sources_and_zero_depth(self):
        graph = erdos_renyi(10, 2.0, seed=0)
        assert bounded_multi_source_distances(graph, (), 5) == {}
        assert bounded_multi_source_distances(graph, (3,), 0) == {3: 0}


# ----------------------------------------------------------------------
# ResultCache: invalidate_where / rekey_fingerprint
# ----------------------------------------------------------------------
class TestCacheScopedInvalidation:
    CONFIG = EVEConfig()

    def _fill(self, cache, fingerprint, count, result):
        for index in range(count):
            cache.put(make_cache_key(index, index + 1, 4, self.CONFIG, fingerprint), result)

    def test_invalidate_where_removes_exactly_matches(self, figure1_graph):
        result = EVE(figure1_graph, self.CONFIG).query(0, 3, 4)
        cache = ResultCache(64)
        self._fill(cache, "fp-a", 10, result)
        removed = cache.invalidate_where(lambda key: key[0] % 2 == 0)
        assert removed == 5
        assert len(cache) == 5
        assert all(key[0] % 2 == 1 for key in cache.keys())
        assert cache.stats()["invalidations"] == 5

    def test_hit_rate_counters_consistent_across_partial_invalidation(self, figure1_graph):
        result = EVE(figure1_graph, self.CONFIG).query(0, 3, 4)
        cache = ResultCache(64)
        self._fill(cache, "fp-a", 8, result)
        for index in range(8):
            assert cache.get(make_cache_key(index, index + 1, 4, self.CONFIG, "fp-a"))
        before = cache.stats()
        assert before["hits"] == 8 and before["misses"] == 0
        cache.invalidate_where(lambda key: key[0] < 4)
        # Invalidation itself is not a lookup: hit/miss untouched.
        mid = cache.stats()
        assert mid["hits"] == 8 and mid["misses"] == 0
        # Removed entries now miss; retained entries still hit.
        for index in range(8):
            hit = cache.get(make_cache_key(index, index + 1, 4, self.CONFIG, "fp-a"))
            assert (hit is not None) == (index >= 4)
        after = cache.stats()
        assert after["hits"] == 12 and after["misses"] == 4
        assert after["hits"] + after["misses"] == 16
        assert after["hit_rate"] == pytest.approx(12 / 16)

    def test_rekey_fingerprint_migrates_and_drops(self, figure1_graph):
        result = EVE(figure1_graph, self.CONFIG).query(0, 3, 4)
        cache = ResultCache(64)
        self._fill(cache, "fp-old", 6, result)
        self._fill(cache, "fp-other", 3, result)
        invalidated, retained = cache.rekey_fingerprint(
            "fp-old", "fp-new", keep=lambda key: key[0] >= 2
        )
        assert (invalidated, retained) == (2, 4)
        fingerprints = {key[4] for key in cache.keys()}
        assert fingerprints == {"fp-new", "fp-other"}
        # Retained entries answer under the new fingerprint without a miss.
        assert cache.get(make_cache_key(2, 3, 4, self.CONFIG, "fp-new")) is result
        assert cache.get(make_cache_key(0, 1, 4, self.CONFIG, "fp-old")) is None

    def test_rekey_none_keep_drops_all(self, figure1_graph):
        result = EVE(figure1_graph, self.CONFIG).query(0, 3, 4)
        cache = ResultCache(64)
        self._fill(cache, "fp-old", 4, result)
        invalidated, retained = cache.rekey_fingerprint("fp-old", "fp-new", None)
        assert (invalidated, retained) == (4, 0)
        assert len(cache) == 0

    def test_concurrent_invalidation_with_traffic(self, figure1_graph):
        result = EVE(figure1_graph, self.CONFIG).query(0, 3, 4)
        cache = ResultCache(512)
        stop = threading.Event()
        errors = []

        def traffic():
            rng = random.Random(0)
            while not stop.is_set():
                index = rng.randrange(64)
                key = make_cache_key(index, index + 1, 4, self.CONFIG, "fp")
                cache.put(key, result)
                cache.get(key)

        def invalidator():
            try:
                for _ in range(200):
                    cache.invalidate_where(lambda key: key[0] % 3 == 0)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=traffic) for _ in range(3)]
        worker = threading.Thread(target=invalidator)
        for thread in threads:
            thread.start()
        worker.start()
        worker.join()
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0


# ----------------------------------------------------------------------
# The delta-vs-rebuild differential harness
# ----------------------------------------------------------------------
def run_schedule(engine_factory, graph, seed, steps=4, query_count=16):
    """Drive one engine through a random mutation schedule.

    After every delta the engine's answers (including cache hits — each
    round queries twice) are compared to a cold serial engine on a
    from-scratch ``DiGraph`` with the same edge set, and every *retained*
    cache entry is audited against a fresh EVE run on the new graph
    (under-invalidation check).
    """
    rng = random.Random(seed)
    engine = engine_factory(graph)
    current = graph
    try:
        queries = random_queries(rng, graph.num_vertices, query_count)
        engine.run_batch(queries)
        for step in range(steps):
            delta = random_delta(current, rng, inserts=3, deletes=2)
            current = rebuild(current, delta)
            report = engine.apply_delta(delta)
            assert engine.graph == current, f"step {step}: wrong edge set"

            with SPGEngine(current, executor_backend="serial", cache_size=0) as oracle:
                oracle_report = oracle.run_batch(queries)
                # First run may mix retained-cache hits and fresh computes;
                # second run must be all-hits — both must match the oracle.
                assert_same_outcomes(engine.run_batch(queries), oracle_report)
                second = engine.run_batch(queries)
                assert_same_outcomes(second, oracle_report)

            if engine.cache is not None:
                fingerprint = engine._batch_fingerprint(engine.graph)
                config = engine.config
                for key, cached in engine.cache.items():
                    if key[4] != fingerprint:
                        continue
                    expected = EVE(current, config).query(key[0], key[1], key[2])
                    assert cached.edges == expected.edges, (
                        f"stale retained entry {key[:3]} after step {step}"
                    )

            snapshot = engine.stats_snapshot()
            assert snapshot["graph_epoch"] == engine.graph_epoch
            assert snapshot["deltas_applied"] == step + 1
            assert snapshot["delta_edges_inserted"] >= report.inserted
            assert (
                report.cache_invalidated + report.cache_retained >= 0
            )
    finally:
        engine.close()


class TestDifferentialHarness:
    TOPOLOGIES = [
        ("erdos", lambda: erdos_renyi(48, 2.5, seed=21)),
        ("power-law", lambda: power_law_cluster(48, 3, seed=22)),
    ]

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("topology", [name for name, _ in TOPOLOGIES])
    def test_delta_answers_match_rebuild(self, backend, topology):
        build = dict(self.TOPOLOGIES)[topology]
        run_schedule(
            lambda g: SPGEngine(g, executor_backend=backend, max_workers=2),
            build(),
            seed=hash((backend, topology)) % (2**31),
        )

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_sharded_engine_matches_rebuild(self, num_shards):
        run_schedule(
            lambda g: ShardedSPGEngine(
                g, num_shards=num_shards, executor_backend="serial"
            ),
            erdos_renyi(48, 2.5, seed=23),
            seed=num_shards,
        )

    def test_process_backend_pool_refreshes_across_epochs(self):
        # One schedule on the process backend: the warm pool serving the
        # old fingerprint must be detected stale and rebuilt lazily, and
        # the answers must still match the from-scratch rebuild.
        run_schedule(
            lambda g: SPGEngine(g, executor_backend="process", max_workers=2),
            erdos_renyi(36, 2.5, seed=24),
            seed=99,
            steps=2,
            query_count=10,
        )

    def test_every_k_in_range(self):
        # Explicit sweep of the spec'd k range on one schedule: every k
        # gets its own query set against the same mutation sequence.
        rng = random.Random(31)
        graph = erdos_renyi(40, 2.5, seed=31)
        with SPGEngine(graph, executor_backend="serial") as engine:
            current = graph
            for _ in range(3):
                delta = random_delta(current, rng, 3, 2)
                current = rebuild(current, delta)
                engine.apply_delta(delta)
                for k in range(3, 9):
                    queries = [
                        (s, t, k) for (s, t, _) in random_queries(rng, 40, 6)
                    ]
                    with SPGEngine(
                        current, executor_backend="serial", cache_size=0
                    ) as oracle:
                        assert_same_outcomes(
                            engine.run_batch(queries), oracle.run_batch(queries)
                        )


# ----------------------------------------------------------------------
# Engine delta semantics
# ----------------------------------------------------------------------
class TestEngineDeltaSemantics:
    def test_epoch_and_report_bookkeeping(self):
        graph = erdos_renyi(30, 2.0, seed=41)
        with SPGEngine(graph, executor_backend="serial") as engine:
            assert engine.graph_epoch == 0
            report = engine.apply_delta(GraphDelta(inserts=[(0, 15)]))
            assert report.epoch == 1 and engine.graph_epoch == 1
            assert report.inserted == 1 and report.deleted == 0
            assert not report.noop
            # Idempotent replay: everything skipped, nothing changes.
            replay = engine.apply_delta(GraphDelta(inserts=[(0, 15)]))
            assert replay.noop and replay.skipped_inserts == 1
            assert engine.graph_epoch == 1
            snapshot = engine.stats_snapshot()
            assert snapshot["deltas_applied"] == 2
            assert snapshot["graph_epoch"] == 1

    def test_noop_delta_keeps_cache_warm(self):
        graph = erdos_renyi(30, 2.0, seed=42)
        with SPGEngine(graph, executor_backend="serial") as engine:
            queries = random_queries(random.Random(1), 30, 8)
            engine.run_batch(queries)
            engine.run_batch(queries)
            existing = next(iter(graph.edge_set()))
            report = engine.apply_delta(GraphDelta(inserts=[existing]))
            assert report.noop
            outcomes = engine.run_batch(queries)
            assert all(outcome.cached for outcome in outcomes)

    def test_compaction_threshold_triggers(self):
        graph = erdos_renyi(40, 2.0, seed=43)
        with SPGEngine(
            graph, executor_backend="serial", compact_threshold=4
        ) as engine:
            report = engine.apply_delta(
                GraphDelta(inserts=[(0, 20), (1, 21), (2, 22)])
            )
            assert not report.compacted  # overlay size 3 < 4
            assert isinstance(engine.graph, DeltaOverlayView)
            report = engine.apply_delta(GraphDelta(inserts=[(3, 23), (4, 24)]))
            assert report.compacted  # overlay size 5 >= 4
            assert type(engine.graph) is DiGraph
            assert engine.stats_snapshot()["delta_compactions"] == 1
            # Post-compaction queries still serve correctly.
            with SPGEngine(
                DiGraph(40, sorted(engine.graph.edge_set())),
                executor_backend="serial",
                cache_size=0,
            ) as oracle:
                queries = random_queries(random.Random(2), 40, 8)
                assert_same_outcomes(
                    engine.run_batch(queries), oracle.run_batch(queries)
                )

    def test_bad_threshold_rejected(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(ValueError, match="compact_threshold"):
            SPGEngine(graph, compact_threshold=0)

    def test_out_of_range_delta_leaves_engine_untouched(self):
        graph = DiGraph(4, [(0, 1), (1, 2)])
        with SPGEngine(graph, executor_backend="serial") as engine:
            with pytest.raises(EdgeError):
                engine.apply_delta(GraphDelta(inserts=[(0, 99)]))
            assert engine.graph is graph
            assert engine.graph_epoch == 0

    def test_unscoped_invalidation_flushes_old_epoch(self):
        graph = erdos_renyi(30, 2.0, seed=44)
        with SPGEngine(graph, executor_backend="serial") as engine:
            queries = random_queries(random.Random(3), 30, 8)
            engine.run_batch(queries)
            report = engine.apply_delta(
                GraphDelta(inserts=[(0, 15)]), scoped_invalidation=False
            )
            assert report.cache_retained == 0
            assert report.cache_invalidated > 0


# ----------------------------------------------------------------------
# Scoped invalidation: the >= 50% retention acceptance bar
# ----------------------------------------------------------------------
class TestScopedRetention:
    def _two_cluster_graph(self):
        """Two dense 30-vertex clusters joined by one long directed path.

        Queries inside cluster A (vertices 0..29) have k-balls that cannot
        reach cluster B (vertices 40..69) within k <= 5 hops: the bridge
        path 29 -> 30 -> ... -> 40 is 11 hops long.
        """
        rng = random.Random(51)
        edges = set()
        for base in (0, 40):
            for _ in range(120):
                u = base + rng.randrange(30)
                v = base + rng.randrange(30)
                if u != v:
                    edges.add((u, v))
        for u in range(29, 40):
            edges.add((u, u + 1))
        return DiGraph(70, sorted(edges))

    def test_localized_mutation_retains_majority(self):
        graph = self._two_cluster_graph()
        with SPGEngine(graph, executor_backend="serial") as engine:
            rng = random.Random(52)
            queries = []
            while len(queries) < 20:
                s, t = rng.randrange(30), rng.randrange(30)
                if s != t:
                    queries.append((s, t, rng.choice((3, 4, 5))))
            engine.run_batch(queries)
            entries_before = len(engine.cache)
            assert entries_before >= 15

            # Mutate only cluster B: insert and delete edges far from
            # every cached query's k-ball.
            b_edges = [e for e in graph.edge_set() if e[0] >= 40]
            delta = GraphDelta(
                inserts=[(41, 55), (42, 56)], deletes=b_edges[:2]
            )
            report = engine.apply_delta(delta)
            assert not report.noop
            retention = report.cache_retained / max(
                1, report.cache_retained + report.cache_invalidated
            )
            assert retention >= 0.5, (
                f"scoped invalidation retained only {retention:.0%} on a "
                f"localized mutation ({report})"
            )
            # The retained entries actually serve: the same workload is
            # all cache hits, and matches a from-scratch oracle.
            outcomes = engine.run_batch(queries)
            assert all(outcome.cached for outcome in outcomes)
            rebuilt = rebuild(graph, delta)
            with SPGEngine(
                rebuilt, executor_backend="serial", cache_size=0
            ) as oracle:
                assert_same_outcomes(outcomes, oracle.run_batch(queries))

    def test_mutation_inside_ball_invalidates(self):
        graph = self._two_cluster_graph()
        with SPGEngine(graph, executor_backend="serial") as engine:
            engine.query(0, 5, 4)
            # Delete an edge adjacent to the cached source: its ball
            # certainly intersects, so the entry must die.
            victim = next(e for e in graph.edge_set() if e[0] == 0)
            report = engine.apply_delta(GraphDelta(deletes=[victim]))
            assert report.cache_invalidated >= 1


# ----------------------------------------------------------------------
# Concurrent mutation under live traffic: no torn epochs
# ----------------------------------------------------------------------
class TestConcurrentMutation:
    def _oracle_answers(self, graphs, queries):
        """Per-query answer sets acceptable under each epoch."""
        table = []
        for s, t, k in queries:
            accepted = []
            for graph in graphs:
                try:
                    accepted.append(EVE(graph, EVEConfig()).query(s, t, k).edges)
                except Exception:
                    accepted.append(None)  # errored under this epoch
            table.append(accepted)
        return table

    @pytest.mark.parametrize("seed", [0, 1])
    def test_run_batch_interleaved_with_apply_delta(self, seed):
        rng = random.Random(seed)
        base = erdos_renyi(36, 2.5, seed=seed)
        deltas = []
        graphs = [base]
        current = base
        for _ in range(3):
            delta = random_delta(current, rng, 2, 1)
            deltas.append(delta)
            current = rebuild(current, delta)
            graphs.append(current)
        queries = random_queries(rng, 36, 12)
        oracle = self._oracle_answers(graphs, queries)

        with SPGEngine(base, executor_backend="thread", max_workers=2) as engine:
            start = threading.Barrier(2)
            mutator_done = threading.Event()

            def mutate():
                start.wait()
                for delta in deltas:
                    engine.apply_delta(delta)
                mutator_done.set()

            mutator = threading.Thread(target=mutate)
            mutator.start()
            start.wait()
            reports = []
            for _ in range(6):
                reports.append(engine.run_batch(queries))
            mutator.join()
            reports.append(engine.run_batch(queries))  # final epoch only

        for report in reports:
            for index, outcome in enumerate(report):
                accepted = oracle[index]
                if outcome.error is not None:
                    assert any(answer is None for answer in accepted), (
                        f"query {queries[index]} errored but no epoch errors"
                    )
                else:
                    assert outcome.edges in [a for a in accepted if a is not None], (
                        f"torn epoch: query {queries[index]} answer matches "
                        f"no single epoch"
                    )
        # The final batch (after all mutations) must match the last epoch.
        final = reports[-1]
        for index, outcome in enumerate(final):
            last = oracle[index][-1]
            if last is None:
                assert outcome.error is not None
            else:
                assert outcome.edges == last

    def test_astream_interleaved_with_apply_delta(self):
        rng = random.Random(7)
        base = erdos_renyi(36, 2.5, seed=7)
        delta = random_delta(base, rng, 3, 2)
        after = rebuild(base, delta)
        queries = random_queries(rng, 36, 10)
        oracle = self._oracle_answers([base, after], queries)

        async def drive():
            with SPGEngine(base, executor_backend="thread", max_workers=2) as engine:
                outcomes = []
                stream = engine.astream(queries, batch_size=2)
                loop = asyncio.get_running_loop()
                applied = False
                async for outcome in stream:
                    outcomes.append(outcome)
                    if not applied and len(outcomes) == 4:
                        applied = True
                        await loop.run_in_executor(None, engine.apply_delta, delta)
                return outcomes

        outcomes = asyncio.run(drive())
        assert len(outcomes) == len(queries)
        for index, outcome in enumerate(outcomes):
            accepted = oracle[index]
            if outcome.error is not None:
                assert any(answer is None for answer in accepted)
            else:
                assert outcome.edges in [a for a in accepted if a is not None]

    def test_concurrent_mutators_serialize(self):
        base = erdos_renyi(30, 2.0, seed=9)
        with SPGEngine(base, executor_backend="serial") as engine:
            inserts = [(u, (u + 15) % 30) for u in range(12)]
            inserts = [e for e in inserts if e not in base.edge_set()]

            def apply_one(edge):
                return engine.apply_delta(GraphDelta(inserts=[edge]))

            threads = [
                threading.Thread(target=apply_one, args=(edge,)) for edge in inserts
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert engine.graph_epoch == len(inserts)
            assert engine.graph.edge_set() == base.edge_set() | set(inserts)
            snapshot = engine.stats_snapshot()
            assert snapshot["delta_edges_inserted"] == len(inserts)
