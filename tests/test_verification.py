"""Tests for the verification phase (Section 5)."""

from __future__ import annotations

import pytest

from repro.analysis.validate import brute_force_spg
from repro.core.distances import compute_distance_index
from repro.core.essential import propagate_backward, propagate_forward
from repro.core.labeling import compute_upper_bound
from repro.core.space import SpaceMeter
from repro.core.verification import multi_source_bfs, order_adjacency, verify_undetermined_edges
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, power_law_cluster


def build_upper(graph, source, target, k):
    distances = compute_distance_index(graph, source, target, k)
    forward = propagate_forward(graph, source, target, k, distances=distances)
    backward = propagate_backward(graph, source, target, k, distances=distances)
    return compute_upper_bound(graph, source, target, k, distances, forward, backward)


class TestMultiSourceBFS:
    def test_distances_from_nearest_source(self):
        adjacency = {0: [1], 1: [2], 2: [3], 5: [3]}
        distances = multi_source_bfs(adjacency, [0, 5])
        assert distances[0] == 0
        assert distances[5] == 0
        assert distances[1] == 1
        assert distances[3] == 1  # closer through 5

    def test_empty_sources(self):
        assert multi_source_bfs({0: [1]}, []) == {}


class TestOrderAdjacency:
    def test_arrivals_come_first_in_out_lists(self, figure1):
        graph, builder = figure1
        s, t = builder.vertex_id("s"), builder.vertex_id("t")
        upper = build_upper(graph, s, t, 7)
        order_adjacency(upper)
        to_arrival = multi_source_bfs(upper.in_adjacency, upper.arrivals.keys())
        for vertex, neighbors in upper.out_adjacency.items():
            keys = [to_arrival.get(n, float("inf")) for n in neighbors]
            assert keys == sorted(keys)

    def test_departures_come_first_in_in_lists(self, figure1):
        graph, builder = figure1
        s, t = builder.vertex_id("s"), builder.vertex_id("t")
        upper = build_upper(graph, s, t, 7)
        order_adjacency(upper)
        from_departure = multi_source_bfs(upper.out_adjacency, upper.departures.keys())
        for vertex, neighbors in upper.in_adjacency.items():
            keys = [from_departure.get(n, float("inf")) for n in neighbors]
            assert keys == sorted(keys)


class TestVerification:
    def test_example_5_7_edge_ij_confirmed(self, figure1):
        graph, builder = figure1
        vid = builder.vertex_id
        s, t = vid("s"), vid("t")
        upper = build_upper(graph, s, t, 7)
        assert (vid("i"), vid("j")) in upper.undetermined_edges
        edges = verify_undetermined_edges(upper)
        assert (vid("i"), vid("j")) in edges
        assert (vid("j"), vid("h")) in edges

    def test_counterexample_edge_ba_rejected(self, figure1):
        graph, builder = figure1
        vid = builder.vertex_id
        s, t = vid("s"), vid("t")
        upper = build_upper(graph, s, t, 7)
        edges = verify_undetermined_edges(upper)
        assert (vid("b"), vid("a")) not in edges
        assert edges == brute_force_spg(graph, s, t, 7)

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [5, 6, 7])
    def test_matches_brute_force_on_random_graphs(self, seed, k):
        graph = erdos_renyi(11, 2.0, seed=seed)
        source, target = 0, 10
        upper = build_upper(graph, source, target, k)
        edges = verify_undetermined_edges(upper)
        assert edges == brute_force_spg(graph, source, target, k)

    @pytest.mark.parametrize("seed", range(5))
    def test_ordering_does_not_change_the_answer(self, seed):
        graph = power_law_cluster(14, 2, seed=seed)
        source, target = 0, 13
        for k in (5, 6, 7):
            plain = build_upper(graph, source, target, k)
            ordered = build_upper(graph, source, target, k)
            order_adjacency(ordered)
            assert verify_undetermined_edges(plain) == verify_undetermined_edges(ordered)

    def test_small_k_returns_definite_edges_only(self):
        graph = erdos_renyi(10, 2.0, seed=1)
        upper = build_upper(graph, 0, 9, 4)
        assert verify_undetermined_edges(upper) == upper.definite_edges

    def test_space_meter_tracks_stack(self):
        graph = erdos_renyi(12, 2.5, seed=2)
        upper = build_upper(graph, 0, 11, 6)
        meter = SpaceMeter()
        verify_undetermined_edges(upper, space=meter)
        assert meter.current == 0  # everything released after the search
        if upper.undetermined_edges:
            assert meter.peak >= 5


class TestTheorem59SmallK:
    """For k = 5 the verification needs no expansion beyond the edge itself."""

    @pytest.mark.parametrize("seed", range(5))
    def test_k5_exactness(self, seed):
        graph = erdos_renyi(12, 2.5, seed=seed)
        upper = build_upper(graph, 0, 11, 5)
        assert verify_undetermined_edges(upper) == brute_force_spg(graph, 0, 11, 5)
