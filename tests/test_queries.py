"""Tests for k-hop reachability and workload generation."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, path_graph
from repro.queries import (
    distance_stratified_queries,
    is_k_hop_reachable,
    k_hop_distance,
    random_reachable_queries,
)
from repro.queries.reachability import k_hop_distance as khd


class TestKHopDistance:
    def test_path_graph_exact_distance(self):
        graph = path_graph(8)
        assert k_hop_distance(graph, 0, 7, 10) == 7
        assert k_hop_distance(graph, 0, 7, 7) == 7
        assert k_hop_distance(graph, 0, 7, 6) is None

    def test_same_vertex(self):
        graph = path_graph(3)
        assert k_hop_distance(graph, 1, 1, 3) == 0

    def test_unreachable(self):
        graph = DiGraph(4, [(0, 1), (2, 3)])
        assert k_hop_distance(graph, 0, 3, 10) is None
        assert not is_k_hop_reachable(graph, 0, 3, 10)

    def test_direction_matters(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        assert k_hop_distance(graph, 0, 2, 5) == 2
        assert k_hop_distance(graph, 2, 0, 5) is None

    def test_negative_budget_rejected(self):
        graph = path_graph(3)
        with pytest.raises(QueryError):
            k_hop_distance(graph, 0, 2, -1)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bfs_reference(self, seed):
        from repro.core.distances import bounded_bfs

        graph = erdos_renyi(25, 2.0, seed=seed)
        reference = bounded_bfs(graph, 0, 6)
        for target in range(1, 25):
            expected = reference.get(target)
            assert k_hop_distance(graph, 0, target, 6) == expected


class TestRandomReachableQueries:
    def test_all_queries_are_reachable(self):
        graph = erdos_renyi(40, 3.0, seed=1)
        workload = random_reachable_queries(graph, 4, 10, seed=3)
        assert len(workload) == 10
        for query in workload:
            assert query.source != query.target
            assert is_k_hop_reachable(graph, query.source, query.target, 4)
            assert query.distance is not None and query.distance <= 4

    def test_deterministic_given_seed(self):
        graph = erdos_renyi(40, 3.0, seed=1)
        first = random_reachable_queries(graph, 4, 8, seed=5)
        second = random_reachable_queries(graph, 4, 8, seed=5)
        assert [q.as_tuple() for q in first] == [q.as_tuple() for q in second]

    def test_zero_queries(self):
        graph = erdos_renyi(10, 2.0, seed=0)
        assert len(random_reachable_queries(graph, 3, 0)) == 0

    def test_empty_graph_raises(self):
        graph = DiGraph(5)
        with pytest.raises(QueryError):
            random_reachable_queries(graph, 3, 2)

    def test_invalid_parameters(self):
        graph = path_graph(4)
        with pytest.raises(QueryError):
            random_reachable_queries(graph, 0, 2)
        with pytest.raises(QueryError):
            random_reachable_queries(graph, 3, -1)

    def test_workload_metadata(self):
        graph = erdos_renyi(30, 3.0, seed=2)
        workload = random_reachable_queries(graph, 3, 5, seed=1)
        assert workload.graph_name == graph.name
        assert workload.k == 3
        assert len(list(iter(workload))) == 5


class TestDistanceStratifiedQueries:
    def test_buckets_have_correct_distances(self):
        graph = erdos_renyi(60, 3.0, seed=4)
        buckets = distance_stratified_queries(graph, 5, per_distance=3, seed=2)
        assert set(buckets) == {1, 2, 3, 4, 5}
        for distance, workload in buckets.items():
            for query in workload:
                assert k_hop_distance(graph, query.source, query.target, 5) == distance

    def test_respects_requested_distances(self):
        graph = erdos_renyi(60, 3.0, seed=4)
        buckets = distance_stratified_queries(
            graph, 6, per_distance=2, seed=2, distances=[1, 2]
        )
        assert set(buckets) == {1, 2}

    def test_sparse_graph_returns_partial_buckets(self):
        graph = path_graph(3)
        buckets = distance_stratified_queries(graph, 4, per_distance=5, seed=0)
        # Distances 3 and 4 cannot exist on a 3-vertex path.
        assert all(len(w) == 0 for d, w in buckets.items() if d >= 3)

    def test_invalid_per_distance(self):
        graph = path_graph(4)
        with pytest.raises(QueryError):
            distance_stratified_queries(graph, 3, per_distance=-1)
