"""Tests for the FPT colour-coding machinery (Theorem 2.7)."""

from __future__ import annotations

import pytest

from repro.analysis.validate import brute_force_paths, brute_force_spg
from repro.exceptions import QueryError
from repro.fpt import ColorCodingDetector, fpt_edge_in_spg, fpt_spg, subdivide_except
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, path_graph


class TestSubdivision:
    def test_counts(self):
        graph = DiGraph(3, [(0, 1), (1, 2), (0, 2)])
        auxiliary = subdivide_except(graph, (0, 2))
        # |V'| = |V| + |E| - 1 and |E'| = 2|E| - 1 (Theorem 2.7).
        assert auxiliary.num_vertices == 3 + 3 - 1
        assert auxiliary.num_edges == 2 * 3 - 1
        assert auxiliary.has_edge(0, 2)
        assert not auxiliary.has_edge(0, 1)

    def test_missing_edge_rejected(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(QueryError):
            subdivide_except(graph, (1, 2))


class TestDetector:
    def test_exact_detection_on_path(self):
        graph = path_graph(5)
        detector = ColorCodingDetector(graph, method="exact")
        assert detector.exists_path(0, 4, 4)
        assert not detector.exists_path(0, 4, 3)
        assert not detector.exists_path(0, 4, 5)

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_matches_brute_force(self, seed):
        graph = erdos_renyi(8, 1.8, seed=seed)
        detector = ColorCodingDetector(graph, method="exact")
        lengths = {len(p) - 1 for p in brute_force_paths(graph, 0, 7, 7)}
        for length in range(1, 8):
            assert detector.exists_path(0, 7, length) == (length in lengths)

    def test_color_coding_finds_short_paths(self):
        graph = path_graph(4)
        detector = ColorCodingDetector(graph, method="color-coding", seed=1, trials=200)
        assert detector.exists_path(0, 3, 3)
        assert not detector.exists_path(0, 3, 2)

    def test_degenerate_queries(self):
        graph = path_graph(3)
        detector = ColorCodingDetector(graph)
        assert not detector.exists_path(0, 0, 2)
        assert not detector.exists_path(0, 2, 0)

    def test_bad_method_rejected(self):
        with pytest.raises(QueryError):
            ColorCodingDetector(path_graph(3), method="quantum")


class TestReduction:
    @pytest.mark.parametrize("seed", range(3))
    def test_fpt_spg_matches_brute_force(self, seed):
        graph = erdos_renyi(7, 1.5, seed=seed)
        for k in (2, 3, 4):
            assert fpt_spg(graph, 0, 6, k, method="exact") == brute_force_spg(graph, 0, 6, k)

    def test_single_edge_membership(self, diamond_graph):
        assert fpt_edge_in_spg(diamond_graph, 0, 3, 2, (0, 1), method="exact")
        assert fpt_edge_in_spg(diamond_graph, 0, 3, 1, (0, 3), method="exact")
        assert not fpt_edge_in_spg(diamond_graph, 0, 3, 1, (0, 1), method="exact")

    def test_absent_edge_is_never_member(self, diamond_graph):
        assert not fpt_edge_in_spg(diamond_graph, 0, 3, 3, (3, 0), method="exact")
