"""Shared fixtures for the test suite.

The ``figure1`` fixtures reproduce the worked example of the paper
(Figure 1 / Figure 5 / Figure 6), which several tests check against the
values printed in the paper.
"""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder, build_graph
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, power_law_cluster

FIGURE1_EDGES = [
    ("s", "c"),
    ("s", "a"),
    ("a", "c"),
    ("a", "h"),
    ("a", "i"),
    ("c", "t"),
    ("c", "b"),
    ("b", "t"),
    ("b", "a"),
    ("b", "j"),
    ("h", "b"),
    ("i", "j"),
    ("j", "h"),
]


@pytest.fixture
def figure1() -> tuple[DiGraph, GraphBuilder]:
    """The paper's Figure 1 graph, with its label <-> id mapping."""
    graph, builder = build_graph(FIGURE1_EDGES, name="figure-1")
    return graph, builder


@pytest.fixture
def figure1_graph(figure1) -> DiGraph:
    """Just the Figure 1 graph."""
    return figure1[0]


@pytest.fixture
def figure1_ids(figure1):
    """Callable mapping Figure 1 labels to vertex ids."""
    _, builder = figure1
    return builder.vertex_id


@pytest.fixture
def small_dense_graph() -> DiGraph:
    """A small dense random graph (many paths, still brute-forceable)."""
    return erdos_renyi(12, 2.5, seed=42, name="small-dense")


@pytest.fixture
def small_power_law_graph() -> DiGraph:
    """A small preferential-attachment graph with hubs and short cycles."""
    return power_law_cluster(15, 2, seed=7, name="small-power-law")


@pytest.fixture
def diamond_graph() -> DiGraph:
    """Two disjoint 2-hop routes from 0 to 3 plus a direct edge."""
    return DiGraph(4, [(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)], name="diamond")
