"""Tests for the benchmark harness (report rendering, runner, experiment drivers).

Experiment drivers are exercised end to end at a deliberately tiny scale so
the whole file stays fast; the benchmarks/ directory runs them at larger
scales.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import AlgorithmRegistry, ExperimentScale, QueryRunner
from repro.bench.report import format_value, pivot_rows, render_series, render_table
from repro.exceptions import ExperimentError
from repro.graph.generators import erdos_renyi
from repro.queries.workload import random_reachable_queries

TINY = ExperimentScale(
    dataset_scale=0.05,
    num_queries=1,
    hop_values=(3, 5),
    datasets=("tw", "ps"),
    seed=3,
    timeout_seconds=20.0,
    per_query_budget=0.5,
)


class TestReport:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.14159, precision=3) == "3.14"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(True) == "True"
        assert format_value(12345.6) == "12345.6"

    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 2 + 2 + 1  # title + header + separator + 2 rows

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_table_missing_cells(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = render_table(rows, columns=["a", "b"])
        assert "-" in text

    def test_pivot_rows(self):
        rows = [
            {"k": 3, "alg": "EVE", "ms": 1.0},
            {"k": 3, "alg": "JOIN", "ms": 5.0},
            {"k": 4, "alg": "EVE", "ms": 2.0},
        ]
        pivoted = pivot_rows(rows, index="k", column="alg", value="ms")
        assert pivoted[0] == {"k": 3, "EVE": 1.0, "JOIN": 5.0}
        assert pivoted[1] == {"k": 4, "EVE": 2.0}

    def test_render_series(self):
        rows = [
            {"k": 3, "alg": "EVE", "ms": 1.0},
            {"k": 3, "alg": "JOIN", "ms": 5.0},
        ]
        text = render_series(rows, x="k", y="ms", series="alg")
        assert "EVE" in text and "JOIN" in text


class TestScale:
    def test_presets(self):
        assert ExperimentScale.tiny().num_queries <= ExperimentScale.small().num_queries
        assert len(ExperimentScale.paper().datasets) == 15

    def test_load_graph_and_workload(self):
        scale = TINY
        graph = scale.load_graph("tw")
        workload = scale.workload(graph, 3)
        assert len(workload) == scale.num_queries


class TestQueryRunner:
    def test_measurements(self):
        graph = erdos_renyi(40, 2.5, seed=1)
        registry = AlgorithmRegistry(graph)
        workload = random_reachable_queries(graph, 4, 3, seed=2)
        runner = QueryRunner()
        measurements = runner.run("EVE", registry.build("EVE"), workload)
        assert len(measurements) == 3
        assert all(m.seconds >= 0 for m in measurements)
        assert QueryRunner.total_seconds(measurements) >= QueryRunner.average_seconds(measurements)

    def test_timeout_skips_remaining(self):
        graph = erdos_renyi(40, 2.5, seed=1)
        registry = AlgorithmRegistry(graph)
        workload = random_reachable_queries(graph, 4, 5, seed=2)
        runner = QueryRunner()
        measurements = runner.run("EVE", registry.build("EVE"), workload, timeout_seconds=0.0)
        assert len(measurements) <= 1

    def test_average_of_empty(self):
        assert QueryRunner.average_seconds([]) == 0.0

    def test_keep_results(self):
        graph = erdos_renyi(30, 2.5, seed=1)
        registry = AlgorithmRegistry(graph)
        workload = random_reachable_queries(graph, 3, 1, seed=2)
        runner = QueryRunner(keep_results=True)
        measurements = runner.run("EVE", registry.build("EVE"), workload)
        assert measurements[0].result is not None


class TestAlgorithmRegistry:
    def test_known_algorithms_agree_on_answer(self):
        graph = erdos_renyi(25, 2.0, seed=4)
        registry = AlgorithmRegistry(graph)
        workload = random_reachable_queries(graph, 4, 1, seed=1)
        query = workload.queries[0]
        results = {}
        for name in ("EVE", "JOIN", "PathEnum", "BC-DFS", "KHSQ+JOIN", "KHSQ+PathEnum"):
            results[name] = registry.build(name)(query.source, query.target, query.k).edges
        reference = results.pop("EVE")
        for name, edges in results.items():
            assert edges == reference, name

    def test_unknown_algorithm(self):
        graph = erdos_renyi(10, 2.0, seed=0)
        with pytest.raises(ExperimentError):
            AlgorithmRegistry(graph).build("magic")


class TestExperimentDrivers:
    def test_registry_contains_all_figures_and_tables(self):
        assert set(EXPERIMENTS) == {
            "fig2b", "fig8", "fig9", "fig10a", "fig10b", "fig10c", "fig11",
            "fig12a", "fig12b", "table3", "table4", "table5", "fig13",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", TINY)

    @pytest.mark.parametrize("name", ["fig2b", "fig12a", "table3", "fig13"])
    def test_cheap_drivers_produce_rows(self, name):
        rows = run_experiment(name, TINY)
        assert rows
        assert all(isinstance(row, dict) for row in rows)

    def test_fig8_rows_have_expected_columns(self):
        rows = run_experiment("fig8", TINY)
        assert {"graph", "k", "algorithm", "total_ms"} <= set(rows[0])

    def test_fig11_variants(self):
        rows = run_experiment("fig11", TINY)
        assert {"Naive EVE", "EVE (full)"} <= {row["variant"] for row in rows}

    def test_table4_columns(self):
        rows = run_experiment("table4", TINY)
        assert {"time_speedup", "work_speedup", "search_space"} <= set(rows[0])

    def test_fig13_recovers_ring(self):
        rows = run_experiment("fig13", TINY)
        assert rows[0]["recall"] >= 0.75


class TestCommandLine:
    def test_main_runs_one_experiment(self, capsys):
        from repro.bench.__main__ import main

        exit_code = main(["fig13", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fig13" in captured.out

    def test_main_with_overrides(self, capsys):
        from repro.bench.__main__ import main

        exit_code = main(["fig12a", "--scale", "tiny", "--queries", "1", "--datasets", "tw"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "avg_coverage_ratio" in captured.out
