"""Tests for DOT / ASCII rendering."""

from __future__ import annotations

from repro import build_spg
from repro.graph.digraph import DiGraph
from repro.viz import render_adjacency, render_result_summary, result_to_dot, to_dot


class TestDot:
    def test_basic_structure(self):
        graph = DiGraph(3, [(0, 1), (1, 2)], name="toy")
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert "v0 -> v1;" in dot
        assert dot.rstrip().endswith("}")

    def test_highlighting(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        dot = to_dot(graph, highlight_vertices={0}, highlight_edges={(1, 2)})
        assert "fillcolor=lightblue" in dot
        assert "color=crimson" in dot

    def test_custom_labels(self):
        graph = DiGraph(2, [(0, 1)])
        dot = to_dot(graph, label=lambda v: f"node{v}")
        assert 'label="node0"' in dot

    def test_isolated_vertices_are_hidden(self):
        graph = DiGraph(5, [(0, 1)])
        dot = to_dot(graph)
        assert "v4" not in dot

    def test_result_to_dot(self, figure1):
        graph, builder = figure1
        result = build_spg(graph, builder.vertex_id("s"), builder.vertex_id("t"), 4)
        dot = result_to_dot(result, graph, label=builder.vertex_label)
        assert 'label="s"' in dot
        assert "penwidth" in dot


class TestAscii:
    def test_render_adjacency(self):
        graph = DiGraph(3, [(0, 1), (0, 2)], name="toy")
        text = render_adjacency(graph)
        assert "toy" in text
        assert "0 -> 1, 2" in text

    def test_render_adjacency_truncates(self):
        graph = DiGraph(30, [(i, i + 1) for i in range(29)])
        text = render_adjacency(graph, max_vertices=5)
        assert "more vertices" in text

    def test_render_result_summary(self, figure1):
        graph, builder = figure1
        result = build_spg(graph, builder.vertex_id("s"), builder.vertex_id("t"), 4)
        text = render_result_summary(result, label=builder.vertex_label)
        assert "SPG_4" in text
        assert "edges in answer" in text
        assert "sample edges" in text

    def test_render_empty_result(self):
        graph = DiGraph(4, [(0, 1), (2, 3)])
        result = build_spg(graph, 0, 3, 4)
        text = render_result_summary(result)
        assert "edges in answer      : 0" in text
