"""Packaging sanity: pyproject metadata stays in sync with the package."""

from __future__ import annotations

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def test_pyproject_exists():
    assert PYPROJECT.is_file(), "setup.py's docstring promises a pyproject.toml"


def test_version_matches_package():
    # Parsed with a regex instead of tomllib so the check also runs on 3.9/3.10.
    text = PYPROJECT.read_text(encoding="utf-8")
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
    assert match, "pyproject.toml must declare a project version"
    assert match.group(1) == repro.__version__


def test_src_layout_declared():
    text = PYPROJECT.read_text(encoding="utf-8")
    assert 'package-dir = { "" = "src" }' in text
    assert 'where = ["src"]' in text
