"""Tests for the graph substrate helpers: builder, subgraph, io, generators, properties."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exceptions import DatasetError, GraphError
from repro.graph.builder import GraphBuilder, build_graph
from repro.graph.digraph import DiGraph
from repro.graph import generators
from repro.graph.io import load_graph, read_edge_list, save_graph, write_edge_list
from repro.graph.properties import (
    degree_histogram,
    largest_scc_size,
    reachable_set,
    strongly_connected_components,
    summarize,
)
from repro.graph.subgraph import edge_induced_subgraph, vertex_induced_subgraph


class TestGraphBuilder:
    def test_relabels_to_dense_ids(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        builder.add_edge("bob", "carol")
        graph = builder.build()
        assert graph.num_vertices == 3
        assert builder.vertex_id("alice") == 0
        assert builder.vertex_label(2) == "carol"

    def test_self_loops_counted_and_dropped(self):
        builder = GraphBuilder()
        builder.add_edge("a", "a")
        builder.add_edge("a", "b")
        assert builder.dropped_self_loops == 1
        assert builder.build().num_edges == 1

    def test_unknown_label_and_id_raise(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        with pytest.raises(GraphError):
            builder.vertex_id("zzz")
        with pytest.raises(GraphError):
            builder.vertex_label(99)

    def test_build_graph_helper(self):
        graph, builder = build_graph([("x", "y"), ("y", "z")], name="labelled")
        assert graph.name == "labelled"
        assert builder.label_mapping() == {"x": 0, "y": 1, "z": 2}

    def test_counts_before_build(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("a", "b"), ("b", "c")])
        assert builder.num_vertices == 3
        assert builder.num_edges == 3  # duplicates collapse at build time
        assert builder.build().num_edges == 2


class TestSubgraphs:
    def test_edge_induced_keeps_vertex_ids(self):
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        subgraph = edge_induced_subgraph(graph, [(1, 2), (2, 3)])
        assert subgraph.num_vertices == graph.num_vertices
        assert set(subgraph.edges()) == {(1, 2), (2, 3)}

    def test_edge_induced_ignores_missing_edges(self):
        graph = DiGraph(3, [(0, 1)])
        subgraph = edge_induced_subgraph(graph, [(0, 1), (1, 2)])
        assert set(subgraph.edges()) == {(0, 1)}

    def test_vertex_induced(self):
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        subgraph = vertex_induced_subgraph(graph, [0, 1, 2])
        assert set(subgraph.edges()) == {(0, 1), (1, 2)}


class TestIO:
    def test_roundtrip_edge_list(self, tmp_path: Path):
        graph = DiGraph(4, [(0, 1), (1, 2), (2, 3)], name="rt")
        path = tmp_path / "graph.txt"
        written = save_graph(path, graph)
        assert written == 3
        loaded, builder = load_graph(path)
        assert loaded.num_edges == 3
        assert loaded.num_vertices == 4

    def test_comments_and_gzip(self, tmp_path: Path):
        path = tmp_path / "edges.txt.gz"
        write_edge_list(path, [(0, 1), (1, 2)], header="demo graph\nsecond line")
        edges = read_edge_list(path)
        assert edges == [("0", "1"), ("1", "2")]

    def test_timestamps(self, tmp_path: Path):
        path = tmp_path / "temporal.txt"
        path.write_text("# comment\n1 2 3.5\n2 3 4.0\n")
        edges = read_edge_list(path, with_timestamps=True)
        assert edges == [("1", "2", 3.5), ("2", "3", 4.0)]

    def test_malformed_line_raises(self, tmp_path: Path):
        path = tmp_path / "bad.txt"
        path.write_text("justone\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_missing_timestamp_raises(self, tmp_path: Path):
        path = tmp_path / "bad2.txt"
        path.write_text("1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path, with_timestamps=True)


class TestGenerators:
    def test_erdos_renyi_density(self):
        graph = generators.erdos_renyi(200, 3.0, seed=1)
        assert graph.num_vertices == 200
        assert abs(graph.num_edges - 600) <= 1

    def test_erdos_renyi_deterministic(self):
        a = generators.erdos_renyi(50, 2.0, seed=9)
        b = generators.erdos_renyi(50, 2.0, seed=9)
        assert a == b

    def test_power_law_has_hubs(self):
        graph = generators.power_law_cluster(300, 2, seed=3)
        histogram = degree_histogram(graph, "in")
        assert max(histogram) > 10  # some vertex attracts many edges

    def test_community_graph_size(self):
        graph = generators.community_graph(3, 5, 0.6, 2, seed=1)
        assert graph.num_vertices == 15
        assert graph.num_edges > 0

    def test_layered_dag_is_acyclic(self):
        graph = generators.layered_dag(4, 3, seed=0)
        assert largest_scc_size(graph) == 1

    def test_grid_graph_shape(self):
        graph = generators.grid_graph(3, 4)
        assert graph.num_vertices == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # right edges + down edges

    def test_cycle_complete_star_path(self):
        assert generators.cycle_graph(5).num_edges == 5
        assert generators.complete_graph(4).num_edges == 12
        assert generators.star_graph(6).num_edges == 6
        assert generators.path_graph(6).num_edges == 5

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi(-1, 2.0)

    def test_regular_out_degree(self):
        graph = generators.random_regular_out(20, 3, seed=2)
        assert all(graph.out_degree(u) == 3 for u in graph.vertices())


class TestProperties:
    def test_summary_row(self):
        graph = DiGraph(4, [(0, 1), (0, 2), (0, 3)], name="starry")
        summary = summarize(graph)
        assert summary.max_out_degree == 3
        assert summary.max_in_degree == 1
        row = summary.as_row()
        assert row["name"] == "starry"
        assert row["|E|"] == 3

    def test_scc_on_cycle_plus_tail(self):
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        components = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 3]
        assert largest_scc_size(graph) == 3

    def test_reachable_set_bounded(self):
        graph = generators.path_graph(6)
        assert reachable_set(graph, 0, max_hops=2) == [0, 1, 2]
        assert len(reachable_set(graph, 0)) == 6

    def test_degree_histogram_validation(self):
        graph = generators.path_graph(3)
        with pytest.raises(ValueError):
            degree_histogram(graph, "sideways")
