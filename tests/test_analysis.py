"""Tests for metrics and the brute-force validation oracle."""

from __future__ import annotations

import pytest

from repro.analysis import (
    aggregate_space,
    average,
    brute_force_spg,
    check_path,
    coverage_ratio,
    is_simple_path,
    redundant_ratio,
    speedup,
    spg_equal,
)
from repro.analysis.validate import brute_force_paths
from repro.graph.digraph import DiGraph


class TestMetrics:
    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert average([]) == 0.0

    def test_coverage_ratio(self):
        assert coverage_ratio(5, 10) == pytest.approx(0.5)
        assert coverage_ratio(5, 0) == 0.0

    def test_redundant_ratio(self):
        assert redundant_ratio(110, 100) == pytest.approx(0.1)
        assert redundant_ratio(0, 0) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")

    def test_aggregate_space(self):
        stats = aggregate_space([5, 1, 9, 3])
        assert stats == {"max": 9.0, "median": 4.0, "min": 1.0}
        assert aggregate_space([]) == {"max": 0.0, "median": 0.0, "min": 0.0}


class TestValidationOracle:
    def test_is_simple_path(self):
        assert is_simple_path([0, 1, 2])
        assert not is_simple_path([0, 1, 0])

    def test_check_path(self):
        graph = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert check_path(graph, [0, 1, 2, 3], 0, 3, 3)
        assert not check_path(graph, [0, 1, 2, 3], 0, 3, 2)       # too long
        assert not check_path(graph, [0, 2, 3], 0, 3, 3)          # missing edge
        assert not check_path(graph, [0, 1, 2], 0, 3, 3)          # wrong endpoint
        assert not check_path(graph, [0], 0, 0, 3)                # too short

    def test_brute_force_paths_diamond(self, diamond_graph):
        paths = brute_force_paths(diamond_graph, 0, 3, 2)
        assert sorted(paths) == [(0, 1, 3), (0, 2, 3), (0, 3)]

    def test_brute_force_spg_diamond(self, diamond_graph):
        assert brute_force_spg(diamond_graph, 0, 3, 1) == {(0, 3)}
        assert brute_force_spg(diamond_graph, 0, 3, 2) == set(diamond_graph.edges())

    def test_spg_equal(self):
        assert spg_equal({(0, 1)}, {(0, 1)})
        assert not spg_equal({(0, 1)}, {(1, 0)})


class TestSpaceMeter:
    def test_allocation_and_release(self):
        from repro.core.space import SpaceMeter

        meter = SpaceMeter()
        meter.allocate(5, "a")
        meter.allocate(3, "b")
        assert meter.current == 8
        assert meter.peak == 8
        meter.release(5, "a")
        assert meter.current == 3
        assert meter.peak == 8
        assert meter.breakdown() == {"a": 0, "b": 3}

    def test_negative_amounts_ignored(self):
        from repro.core.space import SpaceMeter

        meter = SpaceMeter()
        meter.allocate(-3)
        meter.release(-1)
        assert meter.current == 0 and meter.peak == 0

    def test_release_never_goes_negative(self):
        from repro.core.space import SpaceMeter

        meter = SpaceMeter()
        meter.allocate(2)
        meter.release(10)
        assert meter.current == 0

    def test_reset(self):
        from repro.core.space import SpaceMeter

        meter = SpaceMeter()
        meter.allocate(4)
        meter.reset()
        assert meter.current == 0 and meter.peak == 0 and meter.breakdown() == {}
